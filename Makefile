# Convenience targets for the TASTE reproduction workspace.

.PHONY: verify build test clippy crash-resume train-resume repro infer-bench overload-sweep kernel-bench batch-bench swap-bench

# The one gate every change must pass.
verify:
	cargo build --release && cargo test -q && cargo clippy --all-targets -- -D warnings

build:
	cargo build --release

test:
	cargo test -q

clippy:
	cargo clippy --all-targets -- -D warnings

# The release-mode kill-and-resume scenarios (too slow for `verify`).
crash-resume:
	cargo test --release -p taste-framework --test crash_resume -- --ignored

# Release-mode training kill/resume scenario plus the quick-scale
# checkpoint-overhead benchmark (writes results/BENCH_train.json).
train-resume:
	cargo test --release -p taste-model --test train_resume -- --ignored
	TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- train_resume

# Quick-scale reproduction of every table and figure.
repro:
	TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- all

# Quick-scale serving-backend benchmark (tape vs tape-free throughput).
infer-bench:
	TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- infer_bench

# Quick-scale overload sweep (goodput/shedding at 0.5x-4x offered load).
overload-sweep:
	TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- overload_sweep

# Quick-scale compute-kernel benchmark (GFLOP/s per variant + serving deltas).
kernel-bench:
	TASTE_REPRO_SCALE=quick cargo run -p taste-bench --release --bin repro -- kernel_bench

# Quick-scale micro-batched serving benchmark (cols/sec by batch size x
# kernel width, parity-gated; writes results/BENCH_batching.json).
batch-bench:
	cargo run -p taste-bench --release --bin repro -- batch_bench --smoke

# Quick-scale hot-reload benchmark (registry publish/load, swap latency,
# canary overhead; writes results/BENCH_swap.json).
swap-bench:
	cargo run -p taste-bench --release --bin repro -- swap_bench --smoke
