//! Quickstart: the full TASTE flow in one file.
//!
//! 1. Generate a small synthetic corpus (tables + ground-truth types).
//! 2. Build a vocabulary and train the ADTD model (both towers, multi-
//!    task, automatic weighted loss).
//! 3. Load the test split into a simulated cloud database.
//! 4. Run the two-phase engine end-to-end and print, per column, the
//!    detected semantic types alongside the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

/// Builds training inputs whose catalog statistics come from an ANALYZEd
/// database — the same distribution the model will see at serving time.
fn training_inputs(corpus: &Corpus, split: Split) -> Vec<ModelInput> {
    let loaded = load_split(corpus, split, LatencyProfile::zero(), None).expect("load split");
    let conn = loaded.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(split).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("columns");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 20, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    inputs
}

fn main() {
    // 1. A small WikiTable-flavored corpus, reduced to a 12-type
    //    retained set (the paper's S_k mechanism, §6.6) so the model
    //    trains to a demonstrable accuracy within a quickstart's budget.
    println!("generating corpus...");
    let full = Corpus::generate(CorpusSpec::synth_wiki(150, 7));
    let (corpus, _mask) = full.retain_types(12, 7);

    // 2. Vocabulary from the training split.
    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    let tokenizer = Tokenizer::new(vb.build(3000, 2));

    // 3. Train ADTD.
    println!("training ADTD ({} types)...", corpus.ntypes());
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), 7);
    let inputs = training_inputs(&corpus, Split::Train);
    let report = train_adtd(
        &mut model,
        &inputs,
        &TrainConfig { epochs: 10, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() },
    )
    .expect("training");
    println!("epoch losses: {:?}", report.epoch_losses);

    // 4. Load the test split into a simulated cloud database and detect.
    let test = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("load test");
    let engine = TasteEngine::new(Arc::new(model), TasteConfig::default()).expect("engine");
    let detection = engine
        .detect_batch(&test.db, &test.db.table_ids())
        .expect("detection");

    println!(
        "\ndetected {} tables / {} columns in {:?}",
        detection.tables.len(),
        detection.total_columns,
        detection.wall_time
    );
    println!(
        "scanned {:.1}% of columns; latent cache: {} hits / {} misses",
        detection.scanned_ratio() * 100.0,
        detection.cache_hits,
        detection.cache_misses
    );

    let registry = corpus.builtin.registry();
    let name_of = |ls: &LabelSet| -> String {
        if ls.is_empty() {
            "(none)".to_owned()
        } else {
            ls.iter()
                .map(|id| registry.get(id).map(|t| t.name.clone()).unwrap_or_default())
                .collect::<Vec<_>>()
                .join(", ")
        }
    };

    println!("\nfirst table's columns:");
    let first = &detection.tables[0];
    let cols = test.db.columns_view(first.table).expect("columns view");
    for (col, (pred, truth)) in cols
        .iter()
        .zip(first.admitted.iter().zip(&test.truth[first.table.0 as usize]))
    {
        let mark = if pred == truth { "ok " } else { "MISS" };
        println!(
            "  [{mark}] {:<18} predicted: {:<28} truth: {}",
            col.column_name,
            name_of(pred),
            name_of(truth)
        );
    }

    let scores = evaluate_report(&detection, &test.truth, test.ntypes);
    println!(
        "\ntest scores: precision {:.4}, recall {:.4}, F1 {:.4}",
        scores.precision, scores.recall, scores.f1
    );
}
