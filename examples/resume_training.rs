//! Resume training: crash-safe, anomaly-guarded fine-tuning.
//!
//! Training runs die just like serving runs do — preemption, OOM, node
//! reschedule — and a multi-hour fine-tune that restarts from scratch
//! is a real operational cost. This example fine-tunes a tiny ADTD
//! with periodic full-state checkpoints, kills the run deterministically
//! halfway through, resumes it from disk into a freshly constructed
//! model, and verifies the resumed run is **bit-identical** to an
//! uninterrupted one — same per-step losses, same final parameters.
//! It then reruns training with an injected NaN gradient to show the
//! anomaly guard containing the fault instead of poisoning the model.
//!
//! ```text
//! cargo run --release --example resume_training
//! ```

use taste_model::features::NONMETA_DIM;
use taste_model::prepare::{ModelInput, TableChunk};
use taste_model::trainer::train_adtd_resumable;
use taste_model::{Adtd, FaultInjection, ModelConfig, TrainConfig, TrainResilience};
use taste_nn::checkpoint::CheckpointPolicy;
use taste_nn::ParamStore;
use taste_tokenizer::{ColumnContent, Tokenizer, VocabBuilder};

const SEED: u64 = 29;

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["orders", "city", "phone", "alpha", "beta", "text"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

/// Two linearly separable pseudo-types: "city" columns holding "alpha"
/// cells are type 1, "phone" columns holding "beta" cells are type 2.
fn toy_inputs(n: usize) -> Vec<ModelInput> {
    (0..n)
        .map(|i| {
            let (name, word, target) = if i % 2 == 0 {
                ("city", "alpha", vec![0.0, 1.0, 0.0])
            } else {
                ("phone", "beta", vec![0.0, 0.0, 1.0])
            };
            ModelInput {
                chunk: TableChunk {
                    table_text: "orders".into(),
                    col_texts: vec![format!("{name} text")],
                    nonmeta: vec![vec![0.0; NONMETA_DIM]],
                    ordinals: vec![0],
                },
                contents: vec![ColumnContent { cells: vec![word.into(), word.into()] }],
                targets: vec![target],
                labels: vec![Default::default()],
            }
        })
        .collect()
}

fn model() -> Adtd {
    Adtd::new(ModelConfig::tiny(), tokenizer(), 3, SEED)
}

fn param_fingerprint(store: &ParamStore) -> u64 {
    let mut names: Vec<_> = store.ids().map(|id| (store.name(id).to_owned(), id)).collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for (_, id) in names {
        for v in store.value(id).as_slice() {
            h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn main() {
    let inputs = toy_inputs(16);
    let cfg = TrainConfig { epochs: 8, batch_size: 4, lr: 2.5e-3, ..Default::default() };
    let dir = std::env::temp_dir().join("taste-example-train-ckpt");
    let _ = std::fs::remove_dir_all(&dir);

    // Reference: the same run, uninterrupted and without checkpoints.
    let mut reference = model();
    let full = train_adtd_resumable(&mut reference, &inputs, &cfg, &TrainResilience::default())
        .expect("reference run");
    println!(
        "uninterrupted: {} steps, epoch losses {:?}",
        full.health.steps_applied, full.report.epoch_losses
    );

    // Checkpoint every 4 steps, and kill the run after step 17.
    let res = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 4, keep_last_k: 2 },
        halt_after_steps: Some(17),
        ..TrainResilience::default()
    };
    let mut victim = model();
    let halted = train_adtd_resumable(&mut victim, &inputs, &cfg, &res).expect("halted run");
    assert!(halted.halted);
    println!(
        "killed at step 17 ({} checkpoints on disk under {})",
        halted.health.checkpoints_written,
        dir.display()
    );

    // "Process restart": a freshly constructed model resumes from the
    // newest checkpoint and finishes the schedule.
    let res = TrainResilience { halt_after_steps: None, ..res };
    let mut revived = model();
    let resumed = train_adtd_resumable(&mut revived, &inputs, &cfg, &res).expect("resumed run");
    println!(
        "resumed from step {:?}, finished with {} total applied steps",
        resumed.health.resumed_from_step, resumed.health.steps_applied
    );

    let same_losses = full
        .step_losses
        .iter()
        .map(|v| v.to_bits())
        .eq(resumed.step_losses.iter().map(|v| v.to_bits()));
    let same_params = param_fingerprint(&reference.store) == param_fingerprint(&revived.store);
    assert!(same_losses && same_params, "resume must be bit-identical");
    println!("kill + resume reproduced the uninterrupted run bit for bit");

    // Fault containment: poison one step's gradients with NaN; the
    // guard skips that step and the run still completes cleanly.
    let res = TrainResilience {
        inject: FaultInjection { nan_grad_steps: vec![9], ..FaultInjection::default() },
        ..TrainResilience::default()
    };
    let mut guarded = model();
    let report = train_adtd_resumable(&mut guarded, &inputs, &cfg, &res).expect("guarded run");
    println!(
        "injected NaN gradient: {} applied, {} skipped ({} non-finite-grad), rollbacks {}",
        report.health.steps_applied,
        report.health.steps_skipped,
        report.health.non_finite_grad,
        report.health.rollbacks
    );
    assert_eq!(report.health.non_finite_grad, 1);
    assert!(guarded.store.ids().all(|id| guarded.store.value(id).all_finite()));
    println!("model parameters stayed finite; the fault never reached the weights");

    let _ = std::fs::remove_dir_all(&dir);
}
