//! Privacy modes: how `α` and `β` trade accuracy against data exposure.
//!
//! A tenant who forbids the cloud service from reading column content can
//! set `α = β` (Phase 2 never triggers — metadata only); a tenant who
//! wants maximum accuracy widens the `(α, β)` band and accepts more
//! scanning. This example runs the same trained model over the same
//! simulated tenant database under three policies and prints the
//! F1 / scanned-ratio / wall-time trade-off (§3.2, §6.7 of the paper).
//!
//! ```text
//! cargo run --release --example privacy_mode
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

fn main() {
    println!("generating corpus and training (shared by all policies)...");
    let full = Corpus::generate(CorpusSpec::synth_wiki(150, 42));
    // Retained 12-type set (S_k, §6.6): learnable within a demo budget.
    let (corpus, _mask) = full.retain_types(12, 42);

    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    let tokenizer = Tokenizer::new(vb.build(3000, 2));

    let loaded_train = load_split(&corpus, Split::Train, LatencyProfile::zero(), None).expect("train db");
    let conn = loaded_train.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(Split::Train).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("cols");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 20, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, ntypes, 42);
    train_adtd(&mut model, &inputs, &TrainConfig { epochs: 10, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() }).expect("train");
    let model = Arc::new(model);

    let tenant = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("tenant db");

    // Three policies: strict privacy, the paper's default, max accuracy.
    let policies: [(&str, TasteConfig); 3] = [
        (
            "strict privacy (alpha = beta = 0.5, P2 disabled)",
            TasteConfig::default().without_p2(),
        ),
        (
            "balanced (alpha = 0.1, beta = 0.9, paper default)",
            TasteConfig::default(),
        ),
        (
            "max accuracy (alpha = 0.01, beta = 0.99)",
            TasteConfig { alpha: 0.01, beta: 0.99, ..Default::default() },
        ),
    ];

    println!(
        "\n{:<52} {:>8} {:>10} {:>10}",
        "policy", "F1", "scanned", "time"
    );
    for (name, cfg) in policies {
        let engine = TasteEngine::new(Arc::clone(&model), cfg).expect("engine");
        let report = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("detect");
        let scores = evaluate_report(&report, &tenant.truth, tenant.ntypes);
        println!(
            "{:<52} {:>8.4} {:>9.1}% {:>9.0}ms",
            name,
            scores.f1,
            report.scanned_ratio() * 100.0,
            report.wall_time.as_secs_f64() * 1000.0
        );
        if !cfg.p2_possible() {
            assert_eq!(
                report.ledger.columns_scanned, 0,
                "strict privacy must never read content"
            );
        }
    }

    println!(
        "\nUnder strict privacy not a single cell left the tenant database;\n\
         widening the (alpha, beta) band buys accuracy with scans."
    );
}
