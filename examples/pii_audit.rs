//! PII audit: the motivating scenario from the paper's introduction.
//!
//! A cloud data-protection service must find columns holding personally
//! identifiable information (credit card numbers, SSNs, phone numbers,
//! emails, ...) across a tenant's databases — with as little scanning of
//! the tenant's actual data as possible. This example:
//!
//! 1. trains an ADTD model on a synthetic enterprise corpus,
//! 2. audits a fresh "tenant database",
//! 3. reports every PII column found, and how much content the audit
//!    had to read to find it.
//!
//! ```text
//! cargo run --release --example pii_audit
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

/// The semantic types this audit treats as PII.
const PII_TYPES: &[&str] = &[
    "person.email",
    "person.phone_number",
    "person.ssn",
    "person.passport_number",
    "person.birth_date",
    "finance.credit_card_number",
    "finance.iban",
];

fn build_tokenizer(corpus: &Corpus) -> Tokenizer {
    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    Tokenizer::new(vb.build(3000, 2))
}

fn training_inputs(corpus: &Corpus) -> Vec<ModelInput> {
    let loaded = load_split(corpus, Split::Train, LatencyProfile::zero(), None).expect("load");
    let conn = loaded.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(Split::Train).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("columns");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 6, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    inputs
}

fn main() {
    // Enterprise-style corpus: wide tables, a third of columns carry no
    // type of interest — exactly the regime where scanning everything
    // would be wasteful.
    println!("generating enterprise corpus...");
    // Wide enterprise tables are served with l = 6 column chunks — the
    // same capacity-matched split the reproduction harness uses.
    let full = Corpus::generate(CorpusSpec::synth_git(220, 21));

    // The audit only cares about PII (the paper's §6.6 scenario: "users
    // are only concerned about a small set of semantic types, such as
    // PII"): retain exactly those labels; every other column becomes
    // background.
    let mut keep = vec![false; full.ntypes()];
    for name in PII_TYPES {
        let id = full.builtin.registry().by_name(name).expect("registered PII type");
        keep[id.index()] = true;
    }
    let tables = full
        .tables
        .iter()
        .map(|t| {
            let mut t = t.clone();
            for label in &mut t.labels {
                label.retain_in(&keep);
            }
            t
        })
        .collect();
    let corpus = Corpus {
        spec: full.spec.clone(),
        builtin: taste_data::BuiltinRegistry::full(),
        tables,
    };
    let tokenizer = build_tokenizer(&corpus);

    println!("training the audit model...");
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), 21);
    let report = train_adtd(
        &mut model,
        &training_inputs(&corpus),
        &TrainConfig { epochs: 16, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() },
    )
    .expect("training");
    println!("epoch losses: {:?}", report.epoch_losses);

    // The "tenant database" = the held-out test split behind a cloud
    // latency profile.
    let tenant = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("tenant db");
    println!(
        "\nauditing tenant database: {} tables, {} columns",
        tenant.db.table_count(),
        tenant.db.total_columns()
    );

    let cfg = TasteConfig { l: 6, ..TasteConfig::default() };
    let engine = TasteEngine::new(Arc::new(model), cfg).expect("engine");
    let detection = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("audit");

    let registry = corpus.builtin.registry();
    let pii_ids: Vec<TypeId> = PII_TYPES.iter().filter_map(|n| registry.by_name(n)).collect();
    assert_eq!(pii_ids.len(), PII_TYPES.len(), "all PII types registered");

    println!("\n--- PII findings ---");
    let mut findings = 0usize;
    for tr in &detection.tables {
        let cols = tenant.db.columns_view(tr.table).expect("columns");
        for (col, admitted) in cols.iter().zip(&tr.admitted) {
            let hits: Vec<&str> = pii_ids
                .iter()
                .filter(|id| admitted.contains(**id))
                .map(|id| registry.get(*id).expect("registered").name.as_str())
                .collect();
            if !hits.is_empty() {
                findings += 1;
                println!(
                    "  {}.{} -> {}",
                    col.table_name,
                    col.column_name,
                    hits.join(", ")
                );
            }
        }
    }

    // Recall against ground truth, restricted to PII types.
    let mut pii_truth = 0usize;
    let mut pii_found = 0usize;
    for tr in &detection.tables {
        for (pred, truth) in tr.admitted.iter().zip(&tenant.truth[tr.table.0 as usize]) {
            for id in &pii_ids {
                if truth.contains(*id) {
                    pii_truth += 1;
                    if pred.contains(*id) {
                        pii_found += 1;
                    }
                }
            }
        }
    }

    println!("\n--- audit summary ---");
    println!("  PII columns flagged:     {findings}");
    println!("  PII recall:              {pii_found}/{pii_truth}");
    println!("  columns content-scanned: {:.1}% (the rest were resolved from metadata alone)", detection.scanned_ratio() * 100.0);
    println!("  end-to-end time:         {:?}", detection.wall_time);
    println!("  rows read from tenant:   {}", detection.ledger.rows_read);
    println!("  bytes read from tenant:  {}", detection.ledger.bytes_read);
}
