//! Pipelining throughput: Algorithm 1 against sequential execution.
//!
//! Each table needs four stages — two database-bound (metadata fetch,
//! content scan) and two compute-bound (tower inference). Sequential
//! mode leaves the CPU idle during every database wait; the pipelined
//! scheduler overlaps one table's I/O with another's inference. This
//! example measures wall time for a latency-heavy tenant database across
//! pool sizes (§5, §6.3 of the paper).
//!
//! An untrained model is deliberately used here: every column lands in
//! the uncertain band, so every table exercises all four stages — the
//! worst case for the scheduler and the most honest pipelining stress.
//!
//! ```text
//! cargo run --release --example pipeline_throughput
//! ```

use std::sync::Arc;
use std::time::Duration;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_tokenizer::normalize;

fn main() {
    println!("generating tenant corpus...");
    let corpus = Corpus::generate(CorpusSpec::synth_wiki(160, 5));

    let mut vb = VocabBuilder::new();
    for table in &corpus.tables {
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
    }
    let tokenizer = Tokenizer::new(vb.build(2000, 1));
    // Untrained model: probabilities hover mid-band, forcing P2 on every
    // table (see module docs).
    let model = Arc::new(Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), 5));

    // A heavier latency profile than the default: a congested VPC.
    let latency = LatencyProfile {
        connect: Duration::from_millis(15),
        query_rtt: Duration::from_millis(5),
        meta_per_column: Duration::from_micros(200),
        scan_per_row: Duration::from_micros(400),
        transfer_per_kib: Duration::from_micros(300),
        sample_overhead_pct: 25,
    };
    let tenant = load_split(&corpus, Split::Test, latency, None).expect("tenant db");
    println!(
        "tenant database: {} tables, {} columns, congested-VPC latency\n",
        tenant.db.table_count(),
        tenant.db.total_columns()
    );

    let base = TasteConfig { alpha: 0.0001, beta: 0.9999, ..Default::default() };

    let mut sequential_time = Duration::ZERO;
    println!("{:<28} {:>12} {:>10}", "mode", "wall time", "speedup");
    for (name, cfg) in [
        ("sequential", TasteConfig { pipelining: false, ..base }),
        ("pipelined, pool = 1", TasteConfig { pipelining: true, pool_size: 1, ..base }),
        ("pipelined, pool = 2", TasteConfig { pipelining: true, pool_size: 2, ..base }),
        ("pipelined, pool = 4", TasteConfig { pipelining: true, pool_size: 4, ..base }),
    ] {
        let engine = TasteEngine::new(Arc::clone(&model), cfg).expect("engine");
        let report = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("detect");
        if name == "sequential" {
            sequential_time = report.wall_time;
        }
        let speedup = sequential_time.as_secs_f64() / report.wall_time.as_secs_f64();
        println!(
            "{:<28} {:>11.0}ms {:>9.2}x",
            name,
            report.wall_time.as_secs_f64() * 1000.0,
            speedup
        );
    }

    println!(
        "\nStage order per table is preserved by the scheduler's\n\
         eligibility rule; only stages of *different* tables overlap."
    );
}
