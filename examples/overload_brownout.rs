//! Brownout under a throttling tenant: overload control end to end.
//!
//! A cloud RDS being throttled is the canonical overload story: the
//! service rejects a burst of operations out of every window, retries
//! pile up, prep workers stall holding connections, and the stage queue
//! stands. This example runs the TASTE engine against a simulated
//! SynthGit tenant whose database throttles 5 of every 10 operations,
//! with the overload controller enabled, and prints what the controller
//! did about it: the admission ledger, the CoDel → overload → brownout
//! transition timeline, which tables had P2 work shed (and why), the
//! AIMD concurrency limits it converged to, and the latency spread of
//! what survived.
//!
//! ```text
//! cargo run --release --example overload_brownout
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_db::Throttle;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

const SEED: u64 = 29;

fn build_tokenizer(corpus: &Corpus) -> Tokenizer {
    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    Tokenizer::new(vb.build(3000, 2))
}

fn training_inputs(corpus: &Corpus) -> Vec<ModelInput> {
    let loaded = load_split(corpus, Split::Train, LatencyProfile::zero(), None).expect("load");
    let conn = loaded.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(Split::Train).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("columns");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 6, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    inputs
}

fn main() {
    println!("generating corpus and training...");
    let corpus = Corpus::generate(CorpusSpec::synth_git(140, SEED));
    let tokenizer = build_tokenizer(&corpus);
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), SEED);
    train_adtd(
        &mut model,
        &training_inputs(&corpus),
        &TrainConfig { epochs: 8, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() },
    )
    .expect("training");

    // The tenant database, being throttled: of every 10 operations the
    // last 5 are rejected with a transient error. The retry layer eats
    // the rejections (the budget below outlasts the longest rejection
    // run), but each retry holds a prep worker and a connection while it
    // backs off — queueing delay stands, which is exactly the signal the
    // overload controller watches.
    let tenant = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("tenant db");
    tenant.db.set_fault_profile(FaultProfile {
        seed: SEED,
        throttle: Some(Throttle { every: 10, window: 5 }),
        ..FaultProfile::none()
    });
    println!(
        "tenant database: {} tables, {} columns, throttled 5/10 ops (seed {SEED})\n",
        tenant.db.table_count(),
        tenant.db.total_columns()
    );

    let deadline = Duration::from_millis(400);
    let overload = OverloadConfig {
        enabled: true,
        max_in_flight: 4,
        max_queued: 64,
        deadline: Some(deadline),
        queue_target: Duration::from_millis(2),
        queue_window: Duration::from_millis(8),
        brownout_after: Duration::from_millis(20),
        ..OverloadConfig::default()
    };
    // The retry budget must outlast the throttle's 5-rejection runs
    // (retries consume operations, so a stage can eat the whole run),
    // and the breaker threshold sits above it: this demo is about
    // absorbing overload with delay, not failing fast through the
    // breaker.
    let retry = RetryConfig { max_attempts: 8, breaker_threshold: 16, ..RetryConfig::default() };
    // A slightly widened uncertainty band keeps P2 work on the table —
    // literally — so there is something for the controller to shed.
    let cfg =
        TasteConfig { alpha: 0.02, beta: 0.98, l: 6, overload, retry, ..TasteConfig::default() };
    let engine = TasteEngine::new(Arc::new(model), cfg).expect("engine");
    let report = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("detection");

    let s = &report.overload;
    println!("--- admission ledger ---");
    println!("  submitted:   {}", s.submitted);
    println!("  admitted:    {}", s.admitted);
    println!("  rejected:    {}", s.rejected);
    println!("  queue peak:  {} queued stages", s.queue_peak);

    println!("\n--- overload / brownout timeline ---");
    if s.transitions.is_empty() {
        println!("  (no transitions — the batch never sustained a standing queue)");
    }
    for t in &s.transitions {
        println!("  {t}");
    }
    println!("  brownout entries: {}", s.brownout_entries);

    // Group shed tables by reason — the cheapest-first degradation
    // ladder in action.
    let mut by_reason: BTreeMap<String, usize> = BTreeMap::new();
    for tr in &report.tables {
        if let TableOutcome::Shed { reason } = tr.outcome {
            *by_reason.entry(format!("{reason:?}")).or_insert(0) += 1;
        }
    }
    println!("\n--- load shedding ---");
    println!("  tables shed to P1-only verdicts: {}", report.shed_tables());
    for (reason, n) in &by_reason {
        println!("    {reason:<14} {n}");
    }
    println!("  (every shed table keeps its P1 metadata verdicts — columns");
    println!("   settle on the α-band call instead of waiting for a P2 scan)");

    println!("\n--- adaptive concurrency (AIMD) ---");
    println!("  increases: {}  decreases: {}", s.aimd_increases, s.aimd_decreases);
    println!(
        "  final limits: TP1={} TP2={} connections={}",
        s.final_tp1_limit, s.final_tp2_limit, s.final_conn_limit
    );

    let mut lat: Vec<Duration> = report
        .tables
        .iter()
        .filter(|t| t.outcome.is_final() && t.latency > Duration::ZERO)
        .map(|t| t.latency)
        .collect();
    lat.sort();
    println!("\n--- batch summary ---");
    let completed =
        report.tables.iter().filter(|t| t.outcome == TableOutcome::Completed).count();
    println!("  wall time:          {:?}", report.wall_time);
    println!("  completed:          {completed}");
    println!("  shed:               {}", report.shed_tables());
    println!("  rejected:           {}", report.rejected_tables());
    if !lat.is_empty() {
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        println!(
            "  table latency:      p50 {:.1}ms  p99 {:.1}ms",
            pct(0.50).as_secs_f64() * 1000.0,
            pct(0.99).as_secs_f64() * 1000.0
        );
        println!(
            "  within {:?} deadline: {} / {}",
            deadline,
            report.tables_within(deadline),
            lat.len()
        );
    }
    let scores = evaluate_report(&report, &tenant.truth, tenant.ntypes);
    println!("  F1 (after shedding): {:.4}", scores.f1);
    println!(
        "\nUnder throttling the engine degrades *chosen* tables to their\n\
         P1 verdicts and keeps the rest inside the deadline, instead of\n\
         letting queueing delay degrade every table at once."
    );
}
