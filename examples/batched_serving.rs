//! Cross-table micro-batching: many small tables served per fused pass.
//!
//! A cloud catalog is dominated by *narrow* tables — two or three
//! columns each. Served one table at a time, every inference call runs
//! tiny matrices that leave kernels dispatch-bound. With batching
//! enabled, the engine's `BatchPlanner` holds eligible inference stages
//! in per-phase queues and flushes a micro-batch of columns drawn from
//! *many* tables into one fused forward pass — bit-identically to the
//! per-table path.
//!
//! This example runs the same narrow-table tenant at batch sizes 1 and
//! 16 and prints columns/sec plus the planner's fill and flush-reason
//! telemetry from the report.
//!
//! ```text
//! cargo run --release --example batched_serving
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_framework::PhaseBatchingSummary;
use taste_tokenizer::normalize;

fn describe(name: &str, phase: &PhaseBatchingSummary) {
    println!(
        "  {name}: {} batches over {} columns from {} table-stages; \
         fill mean {:.2} / p95 {:.2}; flushes: {} size, {} deadline, {} drain",
        phase.batches,
        phase.batched_columns,
        phase.batched_tables,
        phase.mean_fill,
        phase.p95_fill,
        phase.size_flushes,
        phase.deadline_flushes,
        phase.drain_flushes,
    );
}

fn main() {
    println!("generating a narrow-table tenant corpus...");
    // Small tables: the synthetic generator's wiki tables average a
    // handful of columns, the worst case for per-table serving.
    let corpus = Corpus::generate(CorpusSpec::synth_wiki(240, 3));

    let mut vb = VocabBuilder::new();
    for table in &corpus.tables {
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
    }
    let tokenizer = Tokenizer::new(vb.build(2000, 1));
    // Untrained model with a wide uncertainty band: every column takes
    // the full P1 -> P2 path, so both fused passes carry real load.
    let model = Arc::new(Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), 5));

    let tenant = load_split(&corpus, Split::Test, LatencyProfile::zero(), None).expect("tenant db");
    println!(
        "tenant database: {} tables, {} columns\n",
        tenant.db.table_count(),
        tenant.db.total_columns()
    );

    let base = TasteConfig { pipelining: true, pool_size: 2, alpha: 0.0001, beta: 0.9999, ..Default::default() };

    let mut reference: Option<DetectionReport> = None;
    println!("{:<22} {:>12} {:>12}", "max_batch_columns", "wall time", "cols/sec");
    for max_batch_columns in [1usize, 16] {
        let cfg = TasteConfig {
            batching: BatchingConfig { enabled: true, max_batch_columns, ..Default::default() },
            ..base
        };
        let engine = TasteEngine::new(Arc::clone(&model), cfg).expect("engine");
        let report = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("detect");
        println!(
            "{:<22} {:>11.0}ms {:>12.0}",
            max_batch_columns,
            report.wall_time.as_secs_f64() * 1000.0,
            report.total_columns as f64 / report.wall_time.as_secs_f64(),
        );
        describe("P1", &report.batching.p1);
        describe("P2", &report.batching.p2);

        if let Some(r) = &reference {
            let identical = r
                .tables
                .iter()
                .zip(&report.tables)
                .all(|(a, b)| a.admitted == b.admitted && a.uncertain_columns == b.uncertain_columns);
            println!("  verdicts identical to batch=1: {identical}");
            assert!(identical, "batching must never change verdicts");
        }
        reference = Some(report);
    }

    println!(
        "\nAt batch=1 every flush carries one table and fill hovers at the\n\
         table width; at batch=16 the planner packs columns from many\n\
         tables per pass, so the same verdicts arrive in fewer, fuller\n\
         fused passes."
    );
}
