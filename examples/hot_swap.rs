//! Health-gated hot model reload: publish → canary → promote/rollback.
//!
//! A trainer publishes new model versions into an on-disk registry
//! while the serving engine keeps answering detection batches. Each
//! adopted candidate serves a canary fraction of tables, shadow-scored
//! against the incumbent; the health gates then promote it or roll it
//! back automatically — and a corrupt artifact never serves at all, it
//! is quarantined at load time.
//!
//! This example walks one full episode of each kind: a healthy
//! candidate (promotes), a bit-flipped artifact (quarantined), and a
//! regressing candidate (rolled back by the agreement gate), printing
//! the gate verdicts and the per-version verdict attribution.
//!
//! ```text
//! cargo run --release --example hot_swap
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_tokenizer::normalize;

fn episode_line(report: &DetectionReport) {
    for ep in &report.rollout.episodes {
        println!(
            "  episode: v{} vs incumbent v{} -> {:?} ({})",
            ep.candidate_version,
            ep.incumbent_version,
            ep.outcome,
            ep.cause.as_deref().unwrap_or("all gates green"),
        );
        println!(
            "    gates: {} canary tables, agreement {:.3}, {} sentinel trips, \
             p99 {:.2}ms vs {:.2}ms",
            ep.gates.canary_tables,
            ep.gates.agreement,
            ep.gates.sentinel_trips,
            ep.gates.candidate_p99_ms,
            ep.gates.incumbent_p99_ms,
        );
    }
}

fn served_versions(report: &DetectionReport) {
    let mut counts = std::collections::BTreeMap::new();
    for t in &report.tables {
        *counts.entry(t.model_version).or_insert(0usize) += 1;
    }
    println!("  verdicts by model version: {counts:?}");
}

fn main() {
    println!("generating a tenant corpus...");
    let corpus = Corpus::generate(CorpusSpec::synth_wiki(160, 3));
    let mut vb = VocabBuilder::new();
    for table in &corpus.tables {
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
    }
    let tokenizer = Tokenizer::new(vb.build(2000, 1));
    let ntypes = corpus.ntypes();
    let incumbent = Arc::new(Adtd::new(ModelConfig::small(), tokenizer.clone(), ntypes, 5));
    let tenant = load_split(&corpus, Split::Test, LatencyProfile::zero(), None).expect("tenant db");
    let ids = tenant.db.table_ids();

    // The serving engine: 30% of tables canary a candidate, judged
    // after 12 shadow-scored observations.
    let cfg = TasteConfig {
        pipelining: true,
        rollout: RolloutConfig {
            enabled: true,
            initial_version: 1,
            canary_fraction: 0.3,
            min_canary_tables: 12,
            // Generous: the first canary inference on each worker pays
            // the candidate's one-time weight packing, which dwarfs a
            // micro-benchmark-sized inference.
            max_p99_latency_ratio: 50.0,
            ..RolloutConfig::default()
        },
        ..Default::default()
    };
    let engine = TasteEngine::new(Arc::clone(&incumbent), cfg).expect("engine");
    let rollout = Arc::clone(engine.rollout().expect("rollout enabled"));

    // The registry the trainer publishes into.
    let dir = std::env::temp_dir().join(format!("taste-hot-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = ModelRegistry::new(&dir).expect("registry");

    // --- Episode 1: a healthy retrain (same weights here, so the
    // agreement gate reads 1.0 and the candidate promotes). ---
    println!("\npublishing healthy candidate v2 and serving a batch...");
    registry.publish(&incumbent, 2).expect("publish");
    assert!(rollout.adopt_latest(&registry).expect("adopt"), "v2 enters canary");
    let report = engine.detect_batch(&tenant.db, &ids).expect("detect");
    episode_line(&report);
    served_versions(&report);
    assert_eq!(rollout.current_version(), 2, "healthy candidate promoted");

    // --- Episode 2: a corrupt artifact. A single flipped bit fails the
    // CRC frame at load: the file is quarantined, the incumbent keeps
    // serving, and no canary ever starts. ---
    println!("\npublishing v3 and flipping one bit in the artifact...");
    let path = registry.publish(&incumbent, 3).expect("publish");
    let mut bytes = std::fs::read(&path).expect("read artifact");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite artifact");
    assert!(!rollout.adopt_latest(&registry).expect("adopt"), "corrupt artifact rejected");
    println!(
        "  quarantined: {} (exists: {})",
        path.with_extension("model.corrupt").display(),
        path.with_extension("model.corrupt").exists(),
    );
    assert_eq!(rollout.current_version(), 2, "incumbent untouched");

    // --- Episode 3: a regressing candidate — a retrain whose weights
    // collapsed to a constant, so its probabilities saturate and it
    // admits every type for every column. The agreement gate rolls it
    // back; only its canary fraction ever saw it, and every one of
    // those tables still completed. ---
    println!("\npublishing regressing candidate v4 and serving a batch...");
    let mut regressing = Adtd::new(ModelConfig::small(), tokenizer, ntypes, 77);
    let pids: Vec<_> = regressing.store.ids().collect();
    for id in pids {
        for v in regressing.store.value_mut(id).as_mut_slice() {
            *v = 6.0;
        }
    }
    registry.publish(&regressing, 4).expect("publish");
    assert!(rollout.adopt_latest(&registry).expect("adopt"), "v4 enters canary");
    let report = engine.detect_batch(&tenant.db, &ids).expect("detect");
    episode_line(&report);
    served_versions(&report);
    assert_eq!(rollout.current_version(), 2, "regression rolled back");
    assert!(
        report.tables.iter().all(|t| t.outcome == TableOutcome::Completed),
        "no table is harmed by a rollback"
    );

    let s = rollout.summary();
    println!(
        "\nsummary: {} offered, {} promoted, {} rolled back, {} artifacts quarantined; \
         serving v{}",
        s.candidates_offered, s.promotions, s.rollbacks, s.rejected_artifacts, s.final_version
    );
    let _ = std::fs::remove_dir_all(&dir);
}
