//! Resume run: crash-safe journaled detection on a flaky tenant.
//!
//! Long detection batches die mid-flight in practice — the worker gets
//! preempted, the pod is rescheduled, the process OOMs. This example
//! runs a journaled TASTE batch against a flaky SynthGit tenant, kills
//! it deterministically after half the tables have committed their
//! verdicts to the journal, then resumes from the journal with a fresh
//! engine: finished tables are replayed without touching the tenant
//! database again, unfinished ones are re-run, and the combined report
//! is byte-for-byte identical to an uninterrupted run.
//!
//! ```text
//! cargo run --release --example resume_run
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

const SEED: u64 = 29;
const FAULT_RATE: f64 = 0.10;

fn build_tokenizer(corpus: &Corpus) -> Tokenizer {
    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    Tokenizer::new(vb.build(3000, 2))
}

fn training_inputs(corpus: &Corpus) -> Vec<ModelInput> {
    let loaded = load_split(corpus, Split::Train, LatencyProfile::zero(), None).expect("load");
    let conn = loaded.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(Split::Train).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("columns");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 6, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    inputs
}

fn main() {
    println!("generating corpus and training...");
    let corpus = Corpus::generate(CorpusSpec::synth_git(120, SEED));
    let tokenizer = build_tokenizer(&corpus);
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), SEED);
    train_adtd(
        &mut model,
        &training_inputs(&corpus),
        &TrainConfig { epochs: 8, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() },
    )
    .expect("training");
    let model = Arc::new(model);

    let tenant = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("tenant db");
    let ids = tenant.db.table_ids();
    let journal = std::env::temp_dir().join(format!("taste-resume-run-{}.journal", std::process::id()));
    // Sequential mode so the simulated kill lands at a fixed table; the
    // journal and resume path work identically under pipelining.
    let cfg = TasteConfig { l: 6, pipelining: false, ..TasteConfig::default() };

    // Reference: one uninterrupted journaled run.
    tenant.db.set_fault_profile(FaultProfile::flaky(SEED, FAULT_RATE));
    let reference_journal = journal.with_extension("reference");
    let engine = TasteEngine::new(Arc::clone(&model), cfg).expect("engine");
    let full = engine
        .detect_batch_journaled(&tenant.db, &ids, &reference_journal)
        .expect("reference run");

    // The "crashing" run: `halt_after_tables` cancels the rest of the
    // batch once half the tables have journaled final verdicts — the
    // in-process stand-in for `kill -9`.
    let halt_at = ids.len() / 2;
    let halt_cfg = TasteConfig {
        hardening: HardeningConfig { halt_after_tables: Some(halt_at), ..Default::default() },
        ..cfg
    };
    // Reinstalling the fault profile models the process restart: the
    // fault layer's per-table attempt counters start over.
    tenant.db.set_fault_profile(FaultProfile::flaky(SEED, FAULT_RATE));
    let dying = TasteEngine::new(Arc::clone(&model), halt_cfg).expect("engine");
    let aborted = dying.detect_batch_journaled(&tenant.db, &ids, &journal).expect("aborted run");
    println!(
        "\nrun 1 killed after {halt_at} of {} tables ({} cancelled, journal: {})",
        ids.len(),
        aborted.cancelled_tables(),
        journal.display()
    );

    // A fresh engine resumes from the journal: replayed tables cost zero
    // tenant-database work, the rest are re-run.
    tenant.db.set_fault_profile(FaultProfile::flaky(SEED, FAULT_RATE));
    let revived = TasteEngine::new(Arc::clone(&model), cfg).expect("engine");
    let resumed = revived.resume(&tenant.db, &ids, &journal).expect("resume");
    tenant.db.set_fault_profile(FaultProfile::none());

    println!(
        "run 2 resumed: {} tables replayed from the journal, {} re-run",
        resumed.replayed_tables,
        ids.len() as u64 - resumed.replayed_tables
    );
    if resumed.journal_corrupt_records > 0 || resumed.journal_torn_tail {
        println!(
            "journal damage healed: {} corrupt record(s) quarantined, torn tail: {}",
            resumed.journal_corrupt_records, resumed.journal_torn_tail
        );
    }

    let identical = full.tables.len() == resumed.tables.len()
        && full
            .tables
            .iter()
            .zip(&resumed.tables)
            .all(|(a, b)| a.table == b.table && a.admitted == b.admitted);
    let scores = evaluate_report(&resumed, &tenant.truth, tenant.ntypes);
    println!("\n--- resumed batch ---");
    println!("  tables:               {}", resumed.tables.len());
    println!("  F1:                   {:.4}", scores.f1);
    println!("  total retries:        {}", resumed.total_retries());
    println!("  degraded:             {} tables", resumed.degraded_tables());
    println!(
        "  verdicts identical to uninterrupted run: {}",
        if identical { "yes" } else { "NO (bug!)" }
    );

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_file(&reference_journal);
    assert!(identical, "resume must reproduce the uninterrupted verdicts");
    println!(
        "\nThe journal records each table's final verdicts behind a CRC;\n\
         resume replays clean records, truncates a torn tail, quarantines\n\
         corrupt ones, and re-runs only what is missing — so a killed\n\
         batch converges to the same report as one that never died."
    );
}
