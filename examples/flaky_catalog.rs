//! Flaky catalog: semantic type detection on an unreliable tenant
//! database.
//!
//! Real cloud RDS endpoints throttle, drop connections, and time out.
//! This example runs the TASTE engine against a simulated SynthGit
//! tenant with a seeded 10% transient-fault profile (plus proportional
//! connection drops) and shows what the resilience layer did about it:
//! per-table retries, backoff, reconnects, and graceful degradation,
//! plus the circuit-breaker activity for the whole batch.
//!
//! The fault stream is fully deterministic — rerunning this example
//! replays the exact same faults, retries, and backoff schedule.
//!
//! ```text
//! cargo run --release --example flaky_catalog
//! ```

use std::sync::Arc;
use taste::prelude::*;
use taste_data::load::load_split;
use taste_model::prepare::ModelInput;
use taste_model::trainer::train_adtd;
use taste_tokenizer::normalize;

const SEED: u64 = 13;

fn build_tokenizer(corpus: &Corpus) -> Tokenizer {
    let mut vb = VocabBuilder::new();
    for table in corpus.split_tables(Split::Train) {
        for w in normalize(&table.meta.textual()) {
            vb.add_word(&w);
        }
        for col in &table.columns {
            for w in normalize(&col.textual()) {
                vb.add_word(&w);
            }
        }
        for row in table.rows.iter().take(6) {
            for cell in row {
                for w in normalize(&cell.render()) {
                    vb.add_word(&w);
                }
            }
        }
    }
    Tokenizer::new(vb.build(3000, 2))
}

fn training_inputs(corpus: &Corpus) -> Vec<ModelInput> {
    let loaded = load_split(corpus, Split::Train, LatencyProfile::zero(), None).expect("load");
    let conn = loaded.db.connect();
    let ntypes = corpus.ntypes();
    let mut inputs = Vec::new();
    for (idx, table) in corpus.split_tables(Split::Train).iter().enumerate() {
        let tid = TableId(idx as u32);
        let meta = conn.fetch_table_meta(tid).expect("meta");
        let columns = conn.fetch_columns_meta(tid).expect("columns");
        let cells = taste_model::prepare::select_cells(&table.rows, table.width(), 50, 10);
        for chunk in taste_model::prepare::build_chunks(&meta, &columns, 6, false) {
            let contents = chunk.ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
            let labels: Vec<LabelSet> =
                chunk.ordinals.iter().map(|&o| table.labels[o as usize].clone()).collect();
            let targets = labels.iter().map(|l| l.to_multi_hot(ntypes)).collect();
            inputs.push(ModelInput { chunk, contents, targets, labels });
        }
    }
    inputs
}

fn main() {
    println!("generating corpus and training...");
    let corpus = Corpus::generate(CorpusSpec::synth_git(140, SEED));
    let tokenizer = build_tokenizer(&corpus);
    let mut model = Adtd::new(ModelConfig::small(), tokenizer, corpus.ntypes(), SEED);
    train_adtd(
        &mut model,
        &training_inputs(&corpus),
        &TrainConfig { epochs: 8, lr: 2.5e-3, pos_weight: 8.0, ..Default::default() },
    )
    .expect("training");

    // The tenant database behind a cloud latency profile — made flaky:
    // 10% of content scans fail transiently, a quarter of that rate also
    // drops the connection.
    let tenant = load_split(&corpus, Split::Test, LatencyProfile::cloud(), None).expect("tenant db");
    tenant.db.set_fault_profile(FaultProfile::flaky(SEED, 0.10));
    println!(
        "tenant database: {} tables, {} columns, 10% scan-fault profile (seed {SEED})\n",
        tenant.db.table_count(),
        tenant.db.total_columns()
    );

    let cfg = TasteConfig { l: 6, ..TasteConfig::default() };
    let engine = TasteEngine::new(Arc::new(model), cfg).expect("engine");
    let report = engine.detect_batch(&tenant.db, &tenant.db.table_ids()).expect("detection");

    // Heal the database before the read-only reporting pass below.
    tenant.db.set_fault_profile(FaultProfile::none());
    let conn = tenant.db.connect();

    println!(
        "{:<24} {:>8} {:>8} {:>11} {:>10} {:>10}",
        "table", "attempts", "retries", "backoff", "reconnects", "status"
    );
    for tr in &report.tables {
        let r: &ResilienceSummary = &tr.resilience;
        if r.retries == 0 && !r.degraded && !r.failed {
            continue; // clean table — nothing to report
        }
        let name = conn.fetch_table_meta(tr.table).expect("meta").name;
        let status = if r.failed {
            "FAILED".to_owned()
        } else if r.degraded {
            format!("degraded ({} cols on P1-only verdicts)", r.degraded_columns)
        } else {
            "recovered".to_owned()
        };
        println!(
            "{:<24} {:>8} {:>8} {:>10.1}ms {:>10} {:>10}",
            name,
            r.attempts,
            r.retries,
            r.backoff.as_secs_f64() * 1000.0,
            r.reconnects,
            status
        );
    }

    let scores = evaluate_report(&report, &tenant.truth, tenant.ntypes);
    println!("\n--- batch summary ---");
    println!("  wall time:            {:?}", report.wall_time);
    println!("  F1:                   {:.4}", scores.f1);
    println!("  total retries:        {}", report.total_retries());
    println!(
        "  total backoff:        {:.1}ms",
        report.total_backoff().as_secs_f64() * 1000.0
    );
    println!(
        "  degraded:             {} tables / {} columns",
        report.degraded_tables(),
        report.degraded_columns()
    );
    println!("  failed queries:       {}", report.ledger.failed_queries);
    println!("  dropped connections:  {}", report.ledger.dropped_connections);
    println!("  reconnects:           {}", report.ledger.reconnects);
    println!("  breaker trips:        {}", report.breaker_trips);
    if !report.breaker_transitions.is_empty() {
        println!("  breaker transitions:  {}", report.breaker_transitions.join(", "));
    }
    println!(
        "\nEvery retry, backoff sleep, and degradation above replays\n\
         identically on rerun: faults and jitter are drawn from seeded\n\
         streams, never from the wall clock."
    );
}
