//! # taste
//!
//! Umbrella crate for the TASTE reproduction: re-exports every workspace
//! crate under one roof plus a [`prelude`] for examples and downstream
//! experiments.
//!
//! The workspace reproduces *TASTE: Towards Practical Deep Learning-based
//! Approaches for Semantic Type Detection in the Cloud* (EDBT 2025):
//!
//! * [`taste_core`] — ids, errors, label sets, evaluation, seeded RNG.
//! * [`taste_nn`] — the minimal CPU tensor/autograd kit.
//! * [`taste_tokenizer`] — normalization, vocabulary, input packing.
//! * [`taste_data`] — synthetic corpora (SynthWiki / SynthGit) + splits.
//! * [`taste_db`] — the simulated cloud RDS: latency model, intrusiveness
//!   ledger, connection pool, and the seeded fault-injection layer.
//! * [`taste_model`] — the two-tower ADTD model and baselines.
//! * [`taste_framework`] — the two-phase engine, Algorithm 1 scheduler,
//!   and the retry / circuit-breaker / graceful-degradation stack.

#![warn(missing_docs)]

pub use taste_core;
pub use taste_core as core;
pub use taste_data;
pub use taste_db;
pub use taste_framework;
pub use taste_model;
pub use taste_nn;
pub use taste_tokenizer;

/// The names almost every example and experiment needs.
pub mod prelude {
    pub use taste_core::{
        Cell, ColumnId, ColumnMeta, LabelSet, RawType, Result, ShedReason, Table, TableId,
        TableMeta, TableOutcome, TasteError, TypeId,
    };
    pub use taste_data::corpus::{Corpus, CorpusSpec};
    pub use taste_data::splits::Split;
    pub use taste_data::BuiltinRegistry;
    pub use taste_db::{
        Connection, ConnectionPool, Database, FaultProfile, LatencyProfile, ScanMethod,
    };
    pub use taste_framework::{
        evaluate_report, BatchingConfig, BatchingSummary, DetectionReport, ExecBackend,
        ExecutionConfig, HardeningConfig, LoadController, OverloadConfig, OverloadSummary,
        ResilienceSummary, RetryConfig, RolloutConfig, RolloutSummary, TasteConfig, TasteEngine,
    };
    pub use taste_model::registry::{ModelRegistry, VersionedModel};
    pub use taste_model::{Adtd, Inferencer, ModelConfig, TrainConfig};
    pub use taste_tokenizer::{Tokenizer, Vocab, VocabBuilder};
}
