//! Versioned on-disk model artifacts for hot reload.
//!
//! A [`ModelRegistry`] is a directory of serving candidates: each file
//! holds one full [`Adtd`] model stamped with a monotonically increasing
//! *model version*. The rollout controller in `taste-framework` polls
//! the registry for a version newer than the incumbent, canaries it, and
//! promotes or rolls back — so the integrity bar here is absolute: a
//! truncated, bit-flipped, or non-finite artifact must decode to
//! [`TasteError::Corrupt`], get quarantined on disk, and never reach a
//! serving thread.
//!
//! # On-disk format
//!
//! Two [`taste_core::checksum`] CRC32C-framed records, back to back,
//! mirroring `taste_nn::checkpoint`:
//!
//! 1. a JSON *manifest* — format tag, format version, model version;
//! 2. the [`Adtd::to_json`] payload — config, ntypes, parameters, and
//!    tokenizer vocabulary.
//!
//! Decoding reuses [`Adtd::from_json`], which routes parameter values
//! through `ParamStore::from_json` — shape mismatches, missing
//! parameters, and non-finite values are all rejected there, so a
//! poisoned artifact fails closed long before anyone serves it.
//!
//! # Atomicity
//!
//! [`ModelRegistry::publish`] writes a sibling temp file, fsyncs it,
//! renames it over the versioned name, and fsyncs the directory (best
//! effort): a crash mid-publish leaves either no artifact or a whole
//! one, never a torn file under a live name.

use crate::adtd::Adtd;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use taste_core::checksum::{decode_record, encode_record, DecodeStep};
use taste_core::TasteError;

/// Bumped whenever the artifact layout changes incompatibly.
pub const REGISTRY_FORMAT_VERSION: u32 = 1;

const FORMAT_TAG: &str = "taste-model-artifact";
/// Extension of live artifact files (`model-<version>.model`).
pub const FILE_EXT: &str = "model";
const TEMP_EXT: &str = "model.tmp";
/// Extension corrupt artifacts are renamed to when quarantined.
pub const QUARANTINE_EXT: &str = "model.corrupt";

#[derive(Serialize, Deserialize)]
struct ArtifactManifest {
    format: String,
    format_version: u32,
    model_version: u64,
}

/// A model pinned to the registry version it was published under.
///
/// The `Arc` is the unit of epoch-style serving: a table that starts on
/// one version finishes on it even if the incumbent changes mid-run.
#[derive(Clone)]
pub struct VersionedModel {
    /// The registry version this model was published as.
    pub version: u64,
    /// The model itself, shared across serving threads.
    pub model: Arc<Adtd>,
}

impl std::fmt::Debug for VersionedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedModel").field("version", &self.version).finish_non_exhaustive()
    }
}

/// Serializes a model into the framed artifact bytes for `version`.
pub fn encode_artifact(model: &Adtd, version: u64) -> Vec<u8> {
    let manifest = ArtifactManifest {
        format: FORMAT_TAG.to_owned(),
        format_version: REGISTRY_FORMAT_VERSION,
        model_version: version,
    };
    let manifest_json = serde_json::to_vec(&manifest).expect("manifest is always serializable");
    let mut out = encode_record(&manifest_json);
    out.extend_from_slice(&encode_record(model.to_json().as_bytes()));
    out
}

/// Decodes artifact bytes into a [`VersionedModel`].
///
/// # Errors
/// [`TasteError::Corrupt`] on any torn tail, checksum failure, unknown
/// format tag or version, or model-payload validation failure (shape
/// mismatch, missing parameter, non-finite value). Never panics on
/// malformed input.
pub fn decode_artifact(bytes: &[u8]) -> Result<VersionedModel, TasteError> {
    let (manifest_bytes, used) = take_record(bytes, "manifest")?;
    let manifest: ArtifactManifest = serde_json::from_slice(manifest_bytes)
        .map_err(|e| TasteError::corrupt(format!("model artifact manifest: {e}")))?;
    if manifest.format != FORMAT_TAG {
        return Err(TasteError::corrupt(format!(
            "not a model artifact (format tag {:?})",
            manifest.format
        )));
    }
    if manifest.format_version != REGISTRY_FORMAT_VERSION {
        return Err(TasteError::corrupt(format!(
            "unsupported artifact format {} (this build reads {})",
            manifest.format_version, REGISTRY_FORMAT_VERSION
        )));
    }
    let (payload, payload_used) = take_record(&bytes[used..], "payload")?;
    if used + payload_used != bytes.len() {
        return Err(TasteError::corrupt(format!(
            "{} trailing bytes after artifact records",
            bytes.len() - used - payload_used
        )));
    }
    let json = std::str::from_utf8(payload)
        .map_err(|e| TasteError::corrupt(format!("model artifact payload: {e}")))?;
    let model = Adtd::from_json(json)
        .map_err(|e| TasteError::corrupt(format!("model artifact payload: {e}")))?;
    Ok(VersionedModel { version: manifest.model_version, model: Arc::new(model) })
}

fn take_record<'a>(bytes: &'a [u8], what: &str) -> Result<(&'a [u8], usize), TasteError> {
    match decode_record(bytes) {
        DecodeStep::Record { payload, consumed } => Ok((payload, consumed)),
        DecodeStep::CorruptPayload { .. } => {
            Err(TasteError::corrupt(format!("model artifact {what} failed its checksum")))
        }
        DecodeStep::TornTail => Err(TasteError::corrupt(format!("torn model artifact {what} record"))),
    }
}

/// What [`ModelRegistry::load_latest`] found.
pub struct RegistryLoadOutcome {
    /// The newest artifact that decoded cleanly.
    pub loaded: Option<VersionedModel>,
    /// Corrupt files quarantined while searching.
    pub quarantined: u64,
}

/// A directory of versioned model artifacts with corrupt-file
/// quarantine: files are named by version, publishes are atomic, and
/// loads walk newest-first, renaming any file that fails to decode to
/// `*.model.corrupt` and falling back to the next intact version.
#[derive(Debug, Clone)]
pub struct ModelRegistry {
    dir: PathBuf,
}

impl ModelRegistry {
    /// Opens (creating if needed) a registry directory.
    ///
    /// # Errors
    /// [`TasteError::Serde`] when the directory cannot be created.
    pub fn new(dir: &Path) -> Result<ModelRegistry, TasteError> {
        fs::create_dir_all(dir)
            .map_err(|e| TasteError::Serde(format!("model registry dir {}: {e}", dir.display())))?;
        Ok(ModelRegistry { dir: dir.to_owned() })
    }

    /// The directory this registry lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an artifact at `version` is stored under.
    pub fn path_for(&self, version: u64) -> PathBuf {
        self.dir.join(format!("model-{version:012}.{FILE_EXT}"))
    }

    /// Artifact files present, as `(version, path)` sorted by version.
    pub fn list(&self) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(&self.dir) else { return Vec::new() };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let name = path.file_name()?.to_str()?;
                let version: u64 = name
                    .strip_prefix("model-")?
                    .strip_suffix(&format!(".{FILE_EXT}"))?
                    .parse()
                    .ok()?;
                Some((version, path))
            })
            .collect();
        found.sort_unstable_by_key(|(version, _)| *version);
        found
    }

    /// The highest version with a live (non-quarantined) file, if any.
    pub fn latest_version(&self) -> Option<u64> {
        self.list().last().map(|(v, _)| *v)
    }

    /// Publishes `model` as `version`, durably: temp file, fsync,
    /// rename over the versioned name, best-effort directory fsync.
    ///
    /// # Errors
    /// [`TasteError::Serde`] wrapping the underlying I/O failure.
    pub fn publish(&self, model: &Adtd, version: u64) -> Result<PathBuf, TasteError> {
        let path = self.path_for(version);
        let tmp = path.with_extension(TEMP_EXT);
        let io = |e: std::io::Error| {
            TasteError::Serde(format!("model artifact {}: {e}", path.display()))
        };
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&encode_artifact(model, version)).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, &path).map_err(io)?;
        if let Some(parent) = path.parent() {
            if let Ok(d) = fs::File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(path)
    }

    /// Reads and decodes the artifact at `version`, verifying the file
    /// name agrees with the embedded manifest version.
    ///
    /// # Errors
    /// [`TasteError::Serde`] on I/O failure, [`TasteError::Corrupt`] on
    /// a damaged or misnamed artifact.
    pub fn load(&self, version: u64) -> Result<VersionedModel, TasteError> {
        let path = self.path_for(version);
        let bytes = fs::read(&path)
            .map_err(|e| TasteError::Serde(format!("model artifact {}: {e}", path.display())))?;
        let loaded = decode_artifact(&bytes)?;
        if loaded.version != version {
            return Err(TasteError::corrupt(format!(
                "artifact {} claims version {} inside",
                path.display(),
                loaded.version
            )));
        }
        Ok(loaded)
    }

    /// Loads the newest intact artifact, quarantining corrupt files
    /// encountered on the way (renamed to `*.{QUARANTINE_EXT}` so they
    /// are kept for inspection but never retried).
    ///
    /// # Errors
    /// Never fails on corrupt *contents* — that is the fallback path —
    /// only surfaces nothing when no intact artifact exists.
    pub fn load_latest(&self) -> Result<RegistryLoadOutcome, TasteError> {
        let mut quarantined = 0;
        for (version, path) in self.list().into_iter().rev() {
            match self.load(version) {
                Ok(loaded) => return Ok(RegistryLoadOutcome { loaded: Some(loaded), quarantined }),
                Err(_) => {
                    let _ = fs::rename(&path, path.with_extension(QUARANTINE_EXT));
                    quarantined += 1;
                }
            }
        }
        Ok(RegistryLoadOutcome { loaded: None, quarantined })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn model(seed: u64) -> Adtd {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        Adtd::new(ModelConfig::tiny(), Tokenizer::new(b.build(100, 1)), 4, seed)
    }

    fn temp_registry(tag: &str) -> ModelRegistry {
        let dir = std::env::temp_dir().join(format!("taste-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ModelRegistry::new(&dir).unwrap()
    }

    fn params_bits(m: &Adtd) -> Vec<Vec<u32>> {
        m.store
            .ids()
            .map(|id| m.store.value(id).as_slice().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn publish_load_roundtrip_is_bit_exact() {
        let reg = temp_registry("roundtrip");
        let m = model(7);
        reg.publish(&m, 3).unwrap();
        let back = reg.load(3).unwrap();
        assert_eq!(back.version, 3);
        assert_eq!(params_bits(&m), params_bits(&back.model));
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn wrong_tag_and_format_version_are_corrupt() {
        let mut bytes = encode_record(br#"{"format":"not-a-model","format_version":1,"model_version":1}"#);
        bytes.extend_from_slice(&encode_record(b"{}"));
        assert!(matches!(decode_artifact(&bytes), Err(TasteError::Corrupt(_))));

        let mut bytes =
            encode_record(br#"{"format":"taste-model-artifact","format_version":99,"model_version":1}"#);
        bytes.extend_from_slice(&encode_record(b"{}"));
        assert!(matches!(decode_artifact(&bytes), Err(TasteError::Corrupt(_))));
    }

    #[test]
    fn truncated_artifact_is_corrupt() {
        let bytes = encode_artifact(&model(1), 5);
        for cut in [bytes.len() - 1, bytes.len() / 2, 7] {
            assert!(
                matches!(decode_artifact(&bytes[..cut]), Err(TasteError::Corrupt(_))),
                "cut at {cut} must be corrupt"
            );
        }
    }

    #[test]
    fn non_finite_parameter_is_rejected() {
        let mut m = model(2);
        let id = m.store.ids().next().unwrap();
        m.store.value_mut(id).as_mut_slice()[0] = f32::NAN;
        let bytes = encode_artifact(&m, 4);
        assert!(matches!(decode_artifact(&bytes), Err(TasteError::Corrupt(_))));
    }

    #[test]
    fn corrupt_newest_falls_back_and_quarantines() {
        let reg = temp_registry("quarantine");
        reg.publish(&model(1), 10).unwrap();
        reg.publish(&model(2), 20).unwrap();
        // Flip one bit in the newest artifact.
        let newest = reg.path_for(20);
        let mut bytes = fs::read(&newest).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x10;
        fs::write(&newest, &bytes).unwrap();

        let outcome = reg.load_latest().unwrap();
        let loaded = outcome.loaded.unwrap();
        assert_eq!(loaded.version, 10, "fell back to the previous intact artifact");
        assert_eq!(outcome.quarantined, 1);
        assert!(!newest.exists(), "corrupt file renamed away");
        assert!(newest.with_extension(QUARANTINE_EXT).exists());
        // A second load does not retry the quarantined file.
        let again = reg.load_latest().unwrap();
        assert_eq!(again.quarantined, 0);
        assert_eq!(again.loaded.unwrap().version, 10);
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn misnamed_artifact_is_corrupt() {
        let reg = temp_registry("misname");
        let src = reg.publish(&model(3), 2).unwrap();
        fs::rename(&src, reg.path_for(9)).unwrap();
        assert!(matches!(reg.load(9), Err(TasteError::Corrupt(_))));
        let _ = fs::remove_dir_all(reg.dir());
    }

    #[test]
    fn list_and_latest_version_sort_numerically() {
        let reg = temp_registry("list");
        assert!(reg.latest_version().is_none());
        for v in [7, 2, 100] {
            reg.publish(&model(v), v).unwrap();
        }
        let versions: Vec<u64> = reg.list().into_iter().map(|(v, _)| v).collect();
        assert_eq!(versions, vec![2, 7, 100]);
        assert_eq!(reg.latest_version(), Some(100));
        let _ = fs::remove_dir_all(reg.dir());
    }
}
