//! The Asymmetric Double-Tower Detection model (§4).
//!
//! One [`Adtd`] owns a single parameter store holding: the shared
//! encoder (both towers reuse its [`taste_nn::ParamId`]s), the metadata
//! classifier head (`f1(c) = Classify_meta(Encode_L^M ⊕ M_n^c)`), the
//! content classifier head
//! (`f2(c) = Classify_cont(Encode_L^D ⊕ Encode_L^M ⊕ M_n^c)`), and the
//! learnable automatic-weighted-loss weights. P1 serves with only the
//! metadata tower ([`Adtd::encode_meta`] + [`Adtd::predict_meta`]); P2
//! serves with the full model, feeding cached metadata latents into the
//! content tower ([`Adtd::predict_content`]).
//!
//! Training and serving run on different execution backends. The
//! `predict_*` entry points are tape-free: they evaluate on a
//! [`taste_nn::InferExec`] (no autodiff DAG, recycled buffers), either a
//! throwaway one (the plain methods) or a caller-pooled one (the `_in`
//! variants used by the framework's worker threads). The `_ex` bodies are
//! generic over [`Forward`], so A/B parity runs can force the recording
//! [`Tape`] through the exact same code.

use crate::cache::CachedMeta;
use crate::config::ModelConfig;
use crate::encoder::Encoder;
use crate::features::NONMETA_DIM;
use crate::prepare::{ModelInput, TableChunk};
use taste_nn::losses::AutomaticWeightedLoss;
use taste_nn::modules::{dropout_mask, Linear};
use taste_nn::{Act, Forward, InferExec, Matrix, NodeId, ParamStore, Tape};
use taste_tokenizer::{ColumnContent, PackedContent, PackedMeta, Packer, Tokenizer};

/// Alias: the output of a metadata-tower pass is exactly what the latent
/// cache stores.
pub type MetaEncoding = CachedMeta;

/// One chunk's entry in a P2 micro-batch: its cached metadata encoding,
/// per-column content (`None` = metadata-only column), and non-meta
/// feature rows.
pub type ContentBatchItem<'a> = (&'a MetaEncoding, &'a [Option<ColumnContent>], &'a [Vec<f32>]);

/// A two-layer classifier head: `sigmoid(W2 · ReLU(W1 x + b1) + b2)`
/// (probabilities are produced by the caller; the head emits logits).
#[derive(Debug, Clone, Copy)]
pub struct Head {
    l1: Linear,
    l2: Linear,
}

impl Head {
    pub(crate) fn new(store: &mut ParamStore, name: &str, in_dim: usize, hidden: usize, out_dim: usize) -> Head {
        Head {
            l1: Linear::new(store, &format!("{name}.h1"), in_dim, hidden),
            l2: Linear::new(store, &format!("{name}.h2"), hidden, out_dim),
        }
    }

    pub(crate) fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, x: NodeId) -> NodeId {
        let h = self.l1.forward_act(ex, store, x, Act::Relu);
        self.l2.forward(ex, store, h)
    }

    /// The two affine layers `(hidden, output)` of the head.
    pub fn layers(&self) -> (Linear, Linear) {
        (self.l1, self.l2)
    }

    /// Rebuilds a head from explicit layers (type-set extension).
    pub fn from_parts(l1: Linear, l2: Linear) -> Head {
        Head { l1, l2 }
    }
}

/// Everything the training loop needs from one forward pass.
pub struct TrainForward {
    /// Metadata-tower logits, `[ncols, ntypes]`.
    pub meta_logits: NodeId,
    /// Content-tower logits, `[k, ntypes]` over `content_cols`.
    pub content_logits: Option<NodeId>,
    /// Column indices (within the chunk) covered by `content_logits`.
    pub content_cols: Vec<usize>,
}

/// The ADTD model.
pub struct Adtd {
    /// Hyperparameters.
    pub cfg: ModelConfig,
    /// Classifier output width (number of semantic types incl. `null`).
    pub ntypes: usize,
    /// All trainable parameters.
    pub store: ParamStore,
    /// Shared two-tower encoder.
    pub encoder: Encoder,
    /// The automatic weighted loss combiner (§4.4).
    pub awl: AutomaticWeightedLoss,
    meta_head: Head,
    content_head: Head,
    tokenizer: Tokenizer,
    packer: Packer,
}

impl Adtd {
    /// Builds a fresh (untrained) model around a frozen tokenizer.
    pub fn new(cfg: ModelConfig, tokenizer: Tokenizer, ntypes: usize, seed: u64) -> Adtd {
        let mut store = ParamStore::new(seed);
        let encoder = Encoder::new(&mut store, "enc", &cfg, tokenizer.vocab().len());
        let meta_head = Head::new(&mut store, "meta_head", cfg.hidden + NONMETA_DIM, cfg.meta_head_hidden, ntypes);
        let content_head = Head::new(
            &mut store,
            "content_head",
            2 * cfg.hidden + NONMETA_DIM,
            cfg.content_head_hidden,
            ntypes,
        );
        let awl = AutomaticWeightedLoss::new(&mut store, "awl", 2);
        let packer = Packer::new(cfg.budget);
        Adtd { cfg, ntypes, store, encoder, awl, meta_head, content_head, tokenizer, packer }
    }

    /// The model's tokenizer (vocabulary is part of the model artifact).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Packs a chunk's metadata sequence.
    pub fn pack_meta(&self, chunk: &TableChunk) -> PackedMeta {
        self.packer.pack_meta(&self.tokenizer, &chunk.table_text, &chunk.col_texts)
    }

    /// Packs column contents (columns to scan are `Some`).
    pub fn pack_content(&self, contents: &[Option<ColumnContent>]) -> PackedContent {
        self.packer.pack_content(&self.tokenizer, contents)
    }

    /// P1 inference, step 1: run the metadata tower over a chunk and
    /// return the per-layer latents + marker positions (cacheable).
    ///
    /// Runs tape-free on a throwaway executor; use
    /// [`Adtd::encode_meta_in`] from a worker that owns a pooled one.
    pub fn encode_meta(&self, chunk: &TableChunk) -> MetaEncoding {
        self.encode_meta_in(&mut InferExec::new(), chunk)
    }

    /// [`Adtd::encode_meta`] on a caller-pooled executor, reusing its
    /// scratch buffers.
    pub fn encode_meta_in(&self, exec: &mut InferExec, chunk: &TableChunk) -> MetaEncoding {
        let mut sess = exec.session(&self.store);
        self.encode_meta_ex(&mut sess, chunk)
    }

    /// Backend-generic body of [`Adtd::encode_meta`]. The latents are
    /// copied out of the executor because the encoding must outlive it
    /// (that copy *is* the cacheable artifact).
    pub fn encode_meta_ex<E: Forward + ?Sized>(&self, ex: &mut E, chunk: &TableChunk) -> MetaEncoding {
        let packed = self.pack_meta(chunk);
        let tokens: Vec<usize> = packed.tokens.iter().map(|&t| t as usize).collect();
        let latents = self.encoder.forward_meta(ex, &self.store, &tokens);
        MetaEncoding {
            layer_latents: latents.into_iter().map(|id| ex.value(id).clone()).collect(),
            col_marker_pos: packed.col_marker_pos,
        }
    }

    /// P1 inference, step 2: per-column type probabilities from the
    /// metadata encoding — the matrix `p_{c,s}` of §3.2. Tape-free.
    pub fn predict_meta(&self, enc: &MetaEncoding, nonmeta: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.predict_meta_in(&mut InferExec::new(), enc, nonmeta)
    }

    /// [`Adtd::predict_meta`] on a caller-pooled executor.
    pub fn predict_meta_in(
        &self,
        exec: &mut InferExec,
        enc: &MetaEncoding,
        nonmeta: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        let mut sess = exec.session(&self.store);
        self.predict_meta_ex(&mut sess, enc, nonmeta)
    }

    /// Backend-generic body of [`Adtd::predict_meta`]. The marker-row
    /// gather and the feature stacking go straight into backend leaves —
    /// no intermediate owned matrices on the hot path.
    pub fn predict_meta_ex<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        enc: &MetaEncoding,
        nonmeta: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        assert_eq!(enc.col_marker_pos.len(), nonmeta.len(), "column count mismatch");
        if nonmeta.is_empty() {
            return Vec::new();
        }
        let final_latent = enc.layer_latents.last().expect("encoder has layers");
        let latent_node = ex.leaf_gather(final_latent, &enc.col_marker_pos);
        let feat_refs: Vec<&[f32]> = nonmeta.iter().map(Vec::as_slice).collect();
        let feat_node = ex.leaf_rows(&feat_refs);
        let x = ex.hcat(latent_node, feat_node);
        let logits = self.meta_head.forward(ex, &self.store, x);
        let probs = ex.sigmoid(logits);
        matrix_rows(ex.value(probs))
    }

    /// P2 inference: content-tower pass reusing the cached metadata
    /// latents. `contents[j]` is `Some` exactly for scanned columns;
    /// returns `Some(probs)` for those columns (unless the sequence cap
    /// dropped them) and `None` elsewhere.
    pub fn predict_content(
        &self,
        enc: &MetaEncoding,
        contents: &[Option<ColumnContent>],
        nonmeta: &[Vec<f32>],
    ) -> Vec<Option<Vec<f32>>> {
        self.predict_content_in(&mut InferExec::new(), enc, contents, nonmeta)
    }

    /// [`Adtd::predict_content`] on a caller-pooled executor.
    pub fn predict_content_in(
        &self,
        exec: &mut InferExec,
        enc: &MetaEncoding,
        contents: &[Option<ColumnContent>],
        nonmeta: &[Vec<f32>],
    ) -> Vec<Option<Vec<f32>>> {
        let mut sess = exec.session(&self.store);
        self.predict_content_ex(&mut sess, enc, contents, nonmeta)
    }

    /// Backend-generic body of [`Adtd::predict_content`]. Cached latents
    /// enter as leaves, the marker gathers stay inside the backend (one
    /// pass, no clone-out/re-leaf round trip), and features are stacked
    /// directly from `nonmeta` row slices.
    pub fn predict_content_ex<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        enc: &MetaEncoding,
        contents: &[Option<ColumnContent>],
        nonmeta: &[Vec<f32>],
    ) -> Vec<Option<Vec<f32>>> {
        assert_eq!(contents.len(), nonmeta.len(), "column count mismatch");
        assert_eq!(contents.len(), enc.col_marker_pos.len(), "column count mismatch");
        let packed = self.pack_content(contents);
        if packed.tokens.is_empty() {
            return vec![None; contents.len()];
        }
        let mut included: Vec<usize> = Vec::new();
        let mut content_rows: Vec<usize> = Vec::new();
        for (j, pos) in packed.val_marker_pos.iter().enumerate() {
            if let Some(p) = pos {
                included.push(j);
                content_rows.push(*p);
            }
        }
        if included.is_empty() {
            return vec![None; contents.len()];
        }

        let meta_nodes: Vec<NodeId> = enc.layer_latents.iter().map(|m| ex.leaf_copy(m)).collect();
        let tokens: Vec<usize> = packed.tokens.iter().map(|&t| t as usize).collect();
        let content_latent = self.encoder.forward_content(ex, &self.store, &tokens, &meta_nodes);
        let meta_final = enc.layer_latents.last().expect("encoder has layers");

        let c = ex.gather_rows(content_latent, &content_rows);
        let m = ex.leaf_gather(
            meta_final,
            &included.iter().map(|&j| enc.col_marker_pos[j]).collect::<Vec<_>>(),
        );
        let feat_refs: Vec<&[f32]> = included.iter().map(|&j| nonmeta[j].as_slice()).collect();
        let f = ex.leaf_rows(&feat_refs);
        let cm = ex.hcat(c, m);
        let x = ex.hcat(cm, f);
        let logits = self.content_head.forward(ex, &self.store, x);
        let probs = ex.sigmoid(logits);
        let prob_rows = matrix_rows(ex.value(probs));

        let mut out = vec![None; contents.len()];
        for (row, j) in prob_rows.into_iter().zip(&included) {
            out[*j] = Some(row);
        }
        out
    }

    // ---- micro-batched serving entry points --------------------------
    //
    // The unit of inference here is a micro-batch of chunks drawn from
    // many tables. Encoder passes row-stack every chunk's packed
    // sequence — lengths may differ freely, since attention is
    // block-diagonal per sequence and every other op is row-wise — so
    // one ragged fused forward serves the whole batch with no padding
    // ever introduced. Classifier heads are purely row-wise, so every
    // column in the batch goes through a single fused head pass. All
    // outputs are bit-identical to the per-chunk entry points above.

    /// Batched [`Adtd::encode_meta`]: one ragged fused metadata-tower
    /// pass over the whole batch, scattering the stacked per-layer
    /// latents back into one cacheable [`MetaEncoding`] per chunk.
    /// Tape-free on a throwaway executor.
    pub fn encode_meta_batched(&self, chunks: &[&TableChunk]) -> Vec<MetaEncoding> {
        self.encode_meta_batched_in(&mut InferExec::new(), chunks)
    }

    /// [`Adtd::encode_meta_batched`] on a caller-pooled executor.
    pub fn encode_meta_batched_in(
        &self,
        exec: &mut InferExec,
        chunks: &[&TableChunk],
    ) -> Vec<MetaEncoding> {
        if chunks.is_empty() {
            return Vec::new();
        }
        let mut sess = exec.session(&self.store);
        self.encode_meta_batched_ex(&mut sess, chunks)
    }

    /// Backend-generic body of [`Adtd::encode_meta_batched`].
    pub fn encode_meta_batched_ex<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        chunks: &[&TableChunk],
    ) -> Vec<MetaEncoding> {
        let packed: Vec<PackedMeta> = chunks.iter().map(|c| self.pack_meta(c)).collect();
        let tokens: Vec<Vec<usize>> =
            packed.iter().map(|p| p.tokens.iter().map(|&t| t as usize).collect()).collect();
        let seqs: Vec<&[usize]> = tokens.iter().map(Vec::as_slice).collect();
        let latents = self.encoder.forward_meta_batched(ex, &self.store, &seqs);
        let mut out = Vec::with_capacity(chunks.len());
        let mut off = 0;
        for (i, seq) in seqs.iter().enumerate() {
            out.push(MetaEncoding {
                layer_latents: latents
                    .iter()
                    .map(|&l| {
                        // Copy the chunk's row range straight out of the
                        // stacked latent — no slice node, one copy.
                        let m = ex.value(l);
                        let cols = m.cols();
                        let rows = &m.as_slice()[off * cols..(off + seq.len()) * cols];
                        Matrix::from_vec(seq.len(), cols, rows.to_vec())
                    })
                    .collect(),
                col_marker_pos: packed[i].col_marker_pos.clone(),
            });
            off += seq.len();
        }
        out
    }

    /// Batched [`Adtd::predict_meta`]: classifies every column of every
    /// chunk in one fused head pass (the head is row-wise, so ragged
    /// stacking is free). `items[i]` pairs chunk `i`'s encoding with
    /// its per-column non-metadata features; returns one probability
    /// matrix per chunk, bit-identical to per-chunk [`Adtd::predict_meta`].
    pub fn predict_meta_batched(
        &self,
        items: &[(&MetaEncoding, &[Vec<f32>])],
    ) -> Vec<Vec<Vec<f32>>> {
        self.predict_meta_batched_in(&mut InferExec::new(), items)
    }

    /// [`Adtd::predict_meta_batched`] on a caller-pooled executor.
    pub fn predict_meta_batched_in(
        &self,
        exec: &mut InferExec,
        items: &[(&MetaEncoding, &[Vec<f32>])],
    ) -> Vec<Vec<Vec<f32>>> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut sess = exec.session(&self.store);
        self.predict_meta_batched_ex(&mut sess, items)
    }

    /// Backend-generic body of [`Adtd::predict_meta_batched`].
    pub fn predict_meta_batched_ex<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        items: &[(&MetaEncoding, &[Vec<f32>])],
    ) -> Vec<Vec<Vec<f32>>> {
        let mut latent_rows: Vec<&[f32]> = Vec::new();
        let mut feat_rows: Vec<&[f32]> = Vec::new();
        for (enc, nonmeta) in items {
            assert_eq!(enc.col_marker_pos.len(), nonmeta.len(), "column count mismatch");
            let final_latent = enc.layer_latents.last().expect("encoder has layers");
            for (&pos, feats) in enc.col_marker_pos.iter().zip(nonmeta.iter()) {
                latent_rows.push(final_latent.row_slice(pos));
                feat_rows.push(feats.as_slice());
            }
        }
        if latent_rows.is_empty() {
            return items.iter().map(|_| Vec::new()).collect();
        }
        let latent_node = ex.leaf_rows(&latent_rows);
        let feat_node = ex.leaf_rows(&feat_rows);
        let x = ex.hcat(latent_node, feat_node);
        let logits = self.meta_head.forward(ex, &self.store, x);
        let probs = ex.sigmoid(logits);
        let mut rows = matrix_rows(ex.value(probs)).into_iter();
        items
            .iter()
            .map(|(_, nonmeta)| (0..nonmeta.len()).map(|_| rows.next().expect("row per column")).collect())
            .collect()
    }

    /// Batched [`Adtd::predict_content`]: gathers each chunk's cached
    /// metadata latents, runs the content tower once over the whole
    /// ragged batch (each sequence keeps its *own* per-layer key/value
    /// stack), and classifies every scanned column of the batch in one
    /// fused head pass. Returns per chunk what [`Adtd::predict_content`]
    /// returns, bit-identically.
    pub fn predict_content_batched(
        &self,
        items: &[ContentBatchItem<'_>],
    ) -> Vec<Vec<Option<Vec<f32>>>> {
        self.predict_content_batched_in(&mut InferExec::new(), items)
    }

    /// [`Adtd::predict_content_batched`] on a caller-pooled executor.
    pub fn predict_content_batched_in(
        &self,
        exec: &mut InferExec,
        items: &[ContentBatchItem<'_>],
    ) -> Vec<Vec<Option<Vec<f32>>>> {
        if items.is_empty() {
            return Vec::new();
        }
        let mut sess = exec.session(&self.store);
        self.predict_content_batched_ex(&mut sess, items)
    }

    /// Backend-generic body of [`Adtd::predict_content_batched`].
    pub fn predict_content_batched_ex<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        items: &[ContentBatchItem<'_>],
    ) -> Vec<Vec<Option<Vec<f32>>>> {
        // Pack every chunk; chunks whose packed sequence is empty (or
        // whose columns were all dropped by the cap) short-circuit to
        // all-`None`, exactly as the unbatched path does.
        struct Prep {
            item: usize,
            tokens: Vec<usize>,
            included: Vec<usize>,
            content_rows: Vec<usize>,
        }
        let mut out: Vec<Vec<Option<Vec<f32>>>> = Vec::with_capacity(items.len());
        let mut preps: Vec<Prep> = Vec::new();
        for (i, (enc, contents, nonmeta)) in items.iter().enumerate() {
            assert_eq!(contents.len(), nonmeta.len(), "column count mismatch");
            assert_eq!(contents.len(), enc.col_marker_pos.len(), "column count mismatch");
            out.push(vec![None; contents.len()]);
            let packed = self.pack_content(contents);
            if packed.tokens.is_empty() {
                continue;
            }
            let mut included = Vec::new();
            let mut content_rows = Vec::new();
            for (j, pos) in packed.val_marker_pos.iter().enumerate() {
                if let Some(p) = pos {
                    included.push(j);
                    content_rows.push(*p);
                }
            }
            if included.is_empty() {
                continue;
            }
            preps.push(Prep {
                item: i,
                tokens: packed.tokens.iter().map(|&t| t as usize).collect(),
                included,
                content_rows,
            });
        }
        if preps.is_empty() {
            return out;
        }

        let seqs: Vec<&[usize]> = preps.iter().map(|p| p.tokens.as_slice()).collect();
        let meta_nodes: Vec<Vec<NodeId>> = preps
            .iter()
            .map(|p| items[p.item].0.layer_latents.iter().map(|m| ex.leaf_copy(m)).collect())
            .collect();
        let content_latent = self.encoder.forward_content_batched(ex, &self.store, &seqs, &meta_nodes);

        // One head pass over every scanned column in the batch.
        let mut gather_rows: Vec<usize> = Vec::new();
        let mut meta_rows: Vec<&[f32]> = Vec::new();
        let mut feat_rows: Vec<&[f32]> = Vec::new();
        let mut off = 0;
        for p in &preps {
            let (enc, _, nonmeta) = &items[p.item];
            let meta_final = enc.layer_latents.last().expect("encoder has layers");
            for (&j, &row) in p.included.iter().zip(&p.content_rows) {
                gather_rows.push(off + row);
                meta_rows.push(meta_final.row_slice(enc.col_marker_pos[j]));
                feat_rows.push(nonmeta[j].as_slice());
            }
            off += p.tokens.len();
        }
        let c = ex.gather_rows(content_latent, &gather_rows);
        let m = ex.leaf_rows(&meta_rows);
        let f = ex.leaf_rows(&feat_rows);
        let cm = ex.hcat(c, m);
        let x = ex.hcat(cm, f);
        let logits = self.content_head.forward(ex, &self.store, x);
        let probs = ex.sigmoid(logits);
        let mut rows = matrix_rows(ex.value(probs)).into_iter();
        for p in &preps {
            for &j in &p.included {
                out[p.item][j] = Some(rows.next().expect("row per scanned column"));
            }
        }
        out
    }

    /// Training forward pass: both towers in one tape (so the shared
    /// encoder receives gradients from both tasks), with dropout on the
    /// classifier inputs when `dropout_rng` is provided. The RNG is
    /// taken as a trait object so both the default `StdRng` and the
    /// checkpointable `SplitMix64Rng` of resumable training drive it.
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        input: &ModelInput,
        dropout_rng: Option<&mut dyn rand::RngCore>,
    ) -> TrainForward {
        let packed_meta = self.pack_meta(&input.chunk);
        let meta_tokens: Vec<usize> = packed_meta.tokens.iter().map(|&t| t as usize).collect();
        let meta_latents = self.encoder.forward_meta(tape, &self.store, &meta_tokens);
        let meta_final = *meta_latents.last().expect("layers");

        let ncols = input.chunk.col_texts.len();
        let meta_rows = gather_node_rows(tape, meta_final, &packed_meta.col_marker_pos);
        let feat_dim = input.chunk.nonmeta.first().map_or(0, Vec::len);
        let mut feats = tape.leaf(rows_matrix(&input.chunk.nonmeta));

        // Optional inverted dropout on the latent rows, and a *stronger*
        // dropout on the non-textual features: catalog statistics (NDV,
        // min/max, average length) nearly fingerprint individual columns,
        // and the classifier will happily memorize them instead of
        // reading the metadata text unless they are made unreliable
        // during training.
        let meta_rows = match dropout_rng {
            Some(mut rng) if self.cfg.dropout > 0.0 => {
                if let Some(mask) = dropout_mask(&mut rng, ncols, feat_dim, (3.0 * self.cfg.dropout).min(0.6)) {
                    feats = tape.mul_const_mask(feats, mask);
                }
                match dropout_mask(&mut rng, ncols, self.cfg.hidden, self.cfg.dropout) {
                    Some(mask) => tape.mul_const_mask(meta_rows, mask),
                    None => meta_rows,
                }
            }
            _ => meta_rows,
        };

        let meta_in = tape.hcat(meta_rows, feats);
        let meta_logits = self.meta_head.forward(tape, &self.store, meta_in);

        // Content tower over all columns' contents.
        let contents: Vec<Option<ColumnContent>> =
            input.contents.iter().cloned().map(Some).collect();
        let packed_content = self.pack_content(&contents);
        let mut content_cols = Vec::new();
        let mut marker_rows = Vec::new();
        for (j, pos) in packed_content.val_marker_pos.iter().enumerate() {
            if let Some(p) = pos {
                content_cols.push(j);
                marker_rows.push(*p);
            }
        }
        let content_logits = if content_cols.is_empty() {
            None
        } else {
            let content_tokens: Vec<usize> = packed_content.tokens.iter().map(|&t| t as usize).collect();
            let content_latent = self.encoder.forward_content(tape, &self.store, &content_tokens, &meta_latents);
            let c_rows = gather_node_rows(tape, content_latent, &marker_rows);
            let m_positions: Vec<usize> = content_cols.iter().map(|&j| packed_meta.col_marker_pos[j]).collect();
            let m_rows = gather_node_rows(tape, meta_final, &m_positions);
            let f_rows = tape.leaf(rows_matrix(
                &content_cols.iter().map(|&j| input.chunk.nonmeta[j].clone()).collect::<Vec<_>>(),
            ));
            let cm = tape.hcat(c_rows, m_rows);
            let x = tape.hcat(cm, f_rows);
            Some(self.content_head.forward(tape, &self.store, x))
        };

        TrainForward { meta_logits, content_logits, content_cols }
    }

    /// The metadata classifier head.
    pub fn meta_head(&self) -> Head {
        self.meta_head
    }

    /// The content classifier head.
    pub fn content_head(&self) -> Head {
        self.content_head
    }

    /// Replaces both heads and the domain width (type-set extension).
    pub fn set_heads(&mut self, meta: Head, content: Head, ntypes: usize) {
        self.meta_head = meta;
        self.content_head = content;
        self.ntypes = ntypes;
    }

    /// Parameter ids of the classifier heads plus the AWL weights — the
    /// trainable subset for head-only fine-tuning.
    pub fn head_param_ids(&self) -> Vec<taste_nn::ParamId> {
        let mut ids = Vec::with_capacity(9);
        for head in [self.meta_head, self.content_head] {
            let (l1, l2) = head.layers();
            ids.extend([l1.w, l1.b, l2.w, l2.b]);
        }
        ids.push(self.awl.weights);
        ids
    }

    /// Serializes the model (parameters + config + tokenizer vocabulary)
    /// to a JSON checkpoint.
    pub fn to_json(&self) -> String {
        let obj = serde_json::json!({
            "cfg": self.cfg,
            "ntypes": self.ntypes,
            "store": serde_json::from_str::<serde_json::Value>(&self.store.to_json()).expect("valid"),
            "vocab": self.tokenizer.vocab(),
        });
        obj.to_string()
    }

    /// Restores a model from [`Adtd::to_json`] output.
    pub fn from_json(json: &str) -> Result<Adtd, String> {
        let v: serde_json::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let cfg: ModelConfig = serde_json::from_value(v["cfg"].clone()).map_err(|e| e.to_string())?;
        let ntypes = v["ntypes"].as_u64().ok_or("missing ntypes")? as usize;
        let mut vocab: taste_tokenizer::Vocab =
            serde_json::from_value(v["vocab"].clone()).map_err(|e| e.to_string())?;
        vocab.rebuild_index();
        let tokenizer = Tokenizer::new(vocab);
        let mut model = Adtd::new(cfg, tokenizer, ntypes, 0);
        let source = ParamStore::from_json(&v["store"].to_string()).map_err(|e| e.to_string())?;
        let copied = model.store.load_matching(&source);
        if copied != model.store.len() {
            return Err(format!("checkpoint restored only {copied}/{} params", model.store.len()));
        }
        Ok(model)
    }
}

/// Collects `positions` rows of a node into a `[positions.len(), H]` node.
pub(crate) fn gather_node_rows(tape: &mut Tape, node: NodeId, positions: &[usize]) -> NodeId {
    assert!(!positions.is_empty(), "cannot gather zero rows");
    let mut acc: Option<NodeId> = None;
    for &p in positions {
        let row = tape.slice_rows(node, p, 1);
        acc = Some(match acc {
            Some(prev) => tape.vcat(prev, row),
            None => row,
        });
    }
    acc.expect("non-empty positions")
}

/// Stacks per-column feature vectors into a matrix.
pub(crate) fn rows_matrix(rows: &[Vec<f32>]) -> Matrix {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let cols = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        assert_eq!(r.len(), cols, "ragged feature rows");
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

/// Splits a matrix back into per-row vectors.
pub(crate) fn matrix_rows(m: &Matrix) -> Vec<Vec<f32>> {
    (0..m.rows()).map(|r| m.row_slice(r).to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_tokenizer::VocabBuilder;

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "city", "name", "phone", "int", "text", "demo"]);
        b.add_words(["orders", "city", "name", "phone", "int", "text", "demo"]);
        Tokenizer::new(b.build(100, 1))
    }

    fn chunk(ncols: usize) -> TableChunk {
        TableChunk {
            table_text: "orders demo".into(),
            col_texts: (0..ncols).map(|i| format!("city{i} text")).collect(),
            nonmeta: (0..ncols).map(|_| vec![0.5; NONMETA_DIM]).collect(),
            ordinals: (0..ncols as u16).collect(),
        }
    }

    fn model(ntypes: usize) -> Adtd {
        Adtd::new(ModelConfig::tiny(), tokenizer(), ntypes, 3)
    }

    #[test]
    fn predict_meta_shapes_and_probability_range() {
        let m = model(6);
        let c = chunk(3);
        let enc = m.encode_meta(&c);
        assert_eq!(enc.layer_latents.len(), m.cfg.layers + 1);
        assert_eq!(enc.col_marker_pos.len(), 3);
        let probs = m.predict_meta(&enc, &c.nonmeta);
        assert_eq!(probs.len(), 3);
        for row in &probs {
            assert_eq!(row.len(), 6);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn predict_content_only_for_scanned_columns() {
        let m = model(5);
        let c = chunk(3);
        let enc = m.encode_meta(&c);
        let contents = vec![
            None,
            Some(ColumnContent { cells: vec!["city".into(), "name".into()] }),
            None,
        ];
        let out = m.predict_content(&enc, &contents, &c.nonmeta);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_none() && out[2].is_none());
        let probs = out[1].as_ref().unwrap();
        assert_eq!(probs.len(), 5);
    }

    #[test]
    fn predict_content_all_none_short_circuits() {
        let m = model(5);
        let c = chunk(2);
        let enc = m.encode_meta(&c);
        let out = m.predict_content(&enc, &[None, None], &c.nonmeta);
        assert_eq!(out, vec![None, None]);
    }

    #[test]
    fn encode_meta_is_deterministic() {
        let m = model(4);
        let c = chunk(2);
        let e1 = m.encode_meta(&c);
        let e2 = m.encode_meta(&c);
        assert_eq!(e1.layer_latents.last(), e2.layer_latents.last());
    }

    #[test]
    fn cached_and_live_content_predictions_agree() {
        // The latent-cache contract: P2 probabilities computed from the
        // stored encoding equal those computed from a fresh P1 pass.
        let m = model(4);
        let c = chunk(2);
        let enc_live = m.encode_meta(&c);
        let cached = MetaEncoding {
            layer_latents: enc_live.layer_latents.clone(),
            col_marker_pos: enc_live.col_marker_pos.clone(),
        };
        let contents = vec![Some(ColumnContent { cells: vec!["phone".into()] }), None];
        let a = m.predict_content(&enc_live, &contents, &c.nonmeta);
        let b = m.predict_content(&cached, &contents, &c.nonmeta);
        assert_eq!(a, b);
    }

    #[test]
    fn forward_train_covers_all_columns() {
        let m = model(4);
        let c = chunk(3);
        let input = ModelInput {
            contents: (0..3).map(|_| ColumnContent { cells: vec!["city".into()] }).collect(),
            targets: (0..3).map(|_| vec![0.0, 1.0, 0.0, 0.0]).collect(),
            labels: vec![Default::default(); 3],
            chunk: c,
        };
        let mut tape = Tape::new();
        let fwd = m.forward_train(&mut tape, &input, None);
        assert_eq!(tape.value(fwd.meta_logits).shape(), (3, 4));
        assert_eq!(fwd.content_cols, vec![0, 1, 2]);
        assert_eq!(tape.value(fwd.content_logits.unwrap()).shape(), (3, 4));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let m = model(4);
        let c = chunk(2);
        let enc = m.encode_meta(&c);
        let probs = m.predict_meta(&enc, &c.nonmeta);
        let json = m.to_json();
        let restored = Adtd::from_json(&json).unwrap();
        let enc2 = restored.encode_meta(&c);
        let probs2 = restored.predict_meta(&enc2, &c.nonmeta);
        assert_eq!(probs, probs2);
    }

    /// A chunk with a distinct shape per index so batched tests mix
    /// sequence lengths (different column counts pack to different
    /// lengths).
    fn varied_chunk(i: usize) -> TableChunk {
        let ncols = 1 + (i % 3);
        TableChunk {
            table_text: "orders demo".into(),
            col_texts: (0..ncols).map(|c| format!("city{c} name{i}")).collect(),
            nonmeta: (0..ncols).map(|c| vec![0.1 * (i + c) as f32; NONMETA_DIM]).collect(),
            ordinals: (0..ncols as u16).collect(),
        }
    }

    #[test]
    fn batched_encode_meta_is_bit_identical_to_per_chunk() {
        let m = model(4);
        let chunks: Vec<TableChunk> = (0..7).map(varied_chunk).collect();
        let refs: Vec<&TableChunk> = chunks.iter().collect();
        let batched = m.encode_meta_batched(&refs);
        for (c, b) in chunks.iter().zip(&batched) {
            let solo = m.encode_meta(c);
            assert_eq!(solo.layer_latents, b.layer_latents, "latent bytes diverged");
            assert_eq!(solo.col_marker_pos, b.col_marker_pos);
        }
    }

    #[test]
    fn batched_predict_meta_is_bit_identical_to_per_chunk() {
        let m = model(5);
        let chunks: Vec<TableChunk> = (0..5).map(varied_chunk).collect();
        let encs: Vec<MetaEncoding> = chunks.iter().map(|c| m.encode_meta(c)).collect();
        let items: Vec<(&MetaEncoding, &[Vec<f32>])> =
            encs.iter().zip(&chunks).map(|(e, c)| (e, c.nonmeta.as_slice())).collect();
        let batched = m.predict_meta_batched(&items);
        for ((enc, c), b) in encs.iter().zip(&chunks).zip(&batched) {
            assert_eq!(&m.predict_meta(enc, &c.nonmeta), b);
        }
    }

    #[test]
    fn batched_predict_content_is_bit_identical_to_per_chunk() {
        let m = model(4);
        let chunks: Vec<TableChunk> = (0..6).map(varied_chunk).collect();
        let encs: Vec<MetaEncoding> = chunks.iter().map(|c| m.encode_meta(c)).collect();
        // Mixed scan patterns, including an all-None chunk.
        let contents: Vec<Vec<Option<ColumnContent>>> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (0..c.col_texts.len())
                    .map(|j| {
                        if i == 2 || (i + j) % 2 == 0 {
                            None
                        } else {
                            Some(ColumnContent { cells: vec![format!("phone{i}"), "city".into()] })
                        }
                    })
                    .collect()
            })
            .collect();
        let items: Vec<ContentBatchItem<'_>> = encs
            .iter()
            .zip(&contents)
            .zip(&chunks)
            .map(|((e, ct), c)| (e, ct.as_slice(), c.nonmeta.as_slice()))
            .collect();
        let batched = m.predict_content_batched(&items);
        for (((enc, ct), c), b) in encs.iter().zip(&contents).zip(&chunks).zip(&batched) {
            assert_eq!(&m.predict_content(enc, ct, &c.nonmeta), b);
        }
    }

    #[test]
    fn batched_entry_points_accept_empty_and_singleton_batches() {
        let m = model(4);
        assert!(m.encode_meta_batched(&[]).is_empty());
        assert!(m.predict_meta_batched(&[]).is_empty());
        assert!(m.predict_content_batched(&[]).is_empty());
        let c = chunk(2);
        let enc = m.encode_meta_batched(&[&c]);
        assert_eq!(enc.len(), 1);
        assert_eq!(enc[0].layer_latents, m.encode_meta(&c).layer_latents);
    }

    #[test]
    fn paper_scale_model_constructs_with_correct_shapes() {
        // Shape-checks the full published configuration (L=4, A=12,
        // H=312, I=1200) without training it.
        let cfg = ModelConfig::paper();
        let m = Adtd::new(cfg, tokenizer(), 10, 0);
        let c = chunk(2);
        let enc = m.encode_meta(&c);
        assert_eq!(enc.layer_latents.len(), 5);
        assert_eq!(enc.layer_latents[0].cols(), 312);
        let probs = m.predict_meta(&enc, &c.nonmeta);
        assert_eq!(probs[0].len(), 10);
    }
}
