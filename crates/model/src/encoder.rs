//! The shared transformer stack and the two tower forward passes (§4.2).
//!
//! Both towers run the *same* [`TransformerLayer`]s (shared parameters —
//! constructing the encoder once and calling both forwards reuses the
//! same [`taste_nn::ParamId`]s). The metadata tower is plain self-attention; the
//! content tower's layer `i` asymmetrically cross-attends with
//! `Q = content_{i-1}` and `K = V = meta_{i-1} ⊕ content_{i-1}`, where
//! `meta_{i-1}` is the metadata tower's layer-`(i-1)` latent — served
//! from the latent cache at inference time.

use crate::config::ModelConfig;
use taste_nn::modules::{Embedding, TransformerLayer};
use taste_nn::{Forward, NodeId, ParamStore};

/// Shared embedding + transformer layers.
pub struct Encoder {
    /// Token + position embeddings.
    pub emb: Embedding,
    /// Encoder blocks, applied in order by both towers.
    pub layers: Vec<TransformerLayer>,
}

impl Encoder {
    /// Registers encoder parameters under `name.*`.
    ///
    /// # Panics
    /// Panics when `cfg.heads` does not divide `cfg.hidden`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: &ModelConfig, vocab_size: usize) -> Encoder {
        let emb = Embedding::new(store, &format!("{name}.emb"), vocab_size, cfg.hidden, cfg.budget.max_len);
        let layers = (0..cfg.layers)
            .map(|i| TransformerLayer::new(store, &format!("{name}.layer{i}"), cfg.hidden, cfg.heads, cfg.intermediate))
            .collect();
        Encoder { emb, layers }
    }

    /// Metadata-tower forward: returns the per-layer latents
    /// `[Encode_0 (embedding), Encode_1, ..., Encode_L]` — all of which
    /// the latent cache stores, because content-tower layer `i` consumes
    /// `Encode_{i-1}`.
    pub fn forward_meta<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        tokens: &[usize],
    ) -> Vec<NodeId> {
        let mut latents = Vec::with_capacity(self.layers.len() + 1);
        let mut x = self.emb.forward(ex, store, tokens);
        latents.push(x);
        for layer in &self.layers {
            x = layer.forward(ex, store, x, x);
            latents.push(x);
        }
        latents
    }

    /// Content-tower forward with the asymmetric dependency: layer `i`
    /// takes `Q = content`, `K = V = meta_latents[i] ⊕ content` (where
    /// `meta_latents` is the full `[Encode_0..Encode_L]` vector from
    /// [`Encoder::forward_meta`] or the cache). Returns the final content
    /// latent `Encode_L^D` (`[len(tokens), hidden]`).
    ///
    /// # Panics
    /// Panics when `meta_latents.len() != layers + 1`.
    pub fn forward_content<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        tokens: &[usize],
        meta_latents: &[NodeId],
    ) -> NodeId {
        assert_eq!(
            meta_latents.len(),
            self.layers.len() + 1,
            "need one metadata latent per layer input"
        );
        let mut x = self.emb.forward(ex, store, tokens);
        for (i, layer) in self.layers.iter().enumerate() {
            let kv = ex.vcat(meta_latents[i], x);
            x = layer.forward(ex, store, x, kv);
        }
        x
    }

    /// Batched metadata-tower forward over B row-stacked sequences: one
    /// embedding gather and one set of fused projection/FFN/LN passes
    /// serve the whole micro-batch, with attention kept block-diagonal
    /// per sequence. Returns the per-layer *stacked* latents
    /// `[Σ len_b, hidden]`; sequence `b` occupies the row range starting
    /// at `Σ_{a<b} len_a`. Every row is bit-identical to the unbatched
    /// [`Encoder::forward_meta`] row for that sequence.
    pub fn forward_meta_batched<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        seqs: &[&[usize]],
    ) -> Vec<NodeId> {
        let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
        let mut latents = Vec::with_capacity(self.layers.len() + 1);
        let mut x = self.emb.forward_batched(ex, store, seqs);
        latents.push(x);
        for layer in &self.layers {
            x = layer.forward_batched(ex, store, x, x, &lens, &lens);
            latents.push(x);
        }
        latents
    }

    /// Batched content-tower forward: `seqs[b]` is sequence `b`'s content
    /// tokens and `meta_latents[b]` its full `[Encode_0..Encode_L]`
    /// metadata latents (cached or live — each sequence brings its own,
    /// which is why the per-layer key/value stack is assembled per
    /// sequence: `kv_b = meta_latents[b][i] ⊕ x_b`). Returns the stacked
    /// final content latent `[Σ len_b, hidden]` with the same row layout
    /// as [`Encoder::forward_meta_batched`].
    ///
    /// # Panics
    /// Panics when the batch is empty or any `meta_latents[b]` does not
    /// hold `layers + 1` latents.
    pub fn forward_content_batched<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        seqs: &[&[usize]],
        meta_latents: &[Vec<NodeId>],
    ) -> NodeId {
        assert_eq!(seqs.len(), meta_latents.len(), "one latent vector per sequence");
        assert!(!seqs.is_empty(), "cannot encode an empty batch");
        for m in meta_latents {
            assert_eq!(m.len(), self.layers.len() + 1, "need one metadata latent per layer input");
        }
        let lens: Vec<usize> = seqs.iter().map(|s| s.len()).collect();
        let mut x = self.emb.forward_batched(ex, store, seqs);
        let mut kv_ranges = Vec::with_capacity(2 * seqs.len());
        let mut kv_lens = Vec::with_capacity(seqs.len());
        for (i, layer) in self.layers.iter().enumerate() {
            kv_ranges.clear();
            kv_lens.clear();
            let mut off = 0;
            for (b, &l) in lens.iter().enumerate() {
                let mb = meta_latents[b][i];
                let mrows = ex.value(mb).rows();
                kv_lens.push(mrows + l);
                kv_ranges.push((mb, 0, mrows));
                kv_ranges.push((x, off, l));
                off += l;
            }
            // One copy assembles every sequence's meta ⊕ content stack
            // straight from the source buffers.
            let kv = ex.vcat_rows(&kv_ranges);
            x = layer.forward_batched(ex, store, x, kv, &lens, &kv_lens);
        }
        x
    }

    /// Plain self-attention forward returning only the final latent —
    /// the path used by the single-tower baselines and MLM pre-training.
    pub fn forward_self<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, tokens: &[usize]) -> NodeId {
        *self
            .forward_meta(ex, store, tokens)
            .last()
            .expect("at least the embedding latent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_nn::{InferExec, Matrix, Tape};

    fn setup() -> (ParamStore, Encoder, ModelConfig) {
        let cfg = ModelConfig::tiny();
        let mut store = ParamStore::new(5);
        let enc = Encoder::new(&mut store, "enc", &cfg, 50);
        (store, enc, cfg)
    }

    #[test]
    fn meta_forward_produces_layers_plus_one_latents() {
        let (store, enc, cfg) = setup();
        let mut tape = Tape::new();
        let latents = enc.forward_meta(&mut tape, &store, &[1, 2, 3, 4]);
        assert_eq!(latents.len(), cfg.layers + 1);
        for &l in &latents {
            assert_eq!(tape.value(l).shape(), (4, cfg.hidden));
        }
    }

    #[test]
    fn content_forward_keeps_content_length() {
        let (store, enc, cfg) = setup();
        let mut tape = Tape::new();
        let meta = enc.forward_meta(&mut tape, &store, &[1, 2, 3, 4, 5]);
        let out = enc.forward_content(&mut tape, &store, &[6, 7, 8], &meta);
        assert_eq!(tape.value(out).shape(), (3, cfg.hidden));
    }

    #[test]
    fn content_forward_accepts_cached_latents_as_leaves() {
        // Simulates P2 with the latent cache: meta latents enter a fresh
        // tape as constants and produce identical content latents.
        let (store, enc, _) = setup();
        let mut tape1 = Tape::new();
        let meta = enc.forward_meta(&mut tape1, &store, &[1, 2, 3]);
        let out_live = enc.forward_content(&mut tape1, &store, &[4, 5], &meta);
        let live = tape1.value(out_live).clone();

        let cached: Vec<Matrix> = meta.iter().map(|&id| tape1.value(id).clone()).collect();
        let mut tape2 = Tape::new();
        let leaves: Vec<NodeId> = cached.into_iter().map(|m| tape2.leaf(m)).collect();
        let out_cached = enc.forward_content(&mut tape2, &store, &[4, 5], &leaves);
        let replayed = tape2.value(out_cached).clone();
        assert_eq!(live, replayed, "cache replay must be bit-identical");
    }

    #[test]
    fn towers_agree_across_backends() {
        // Full two-tower forward: tape vs tape-free executor, identical.
        let (store, enc, _) = setup();
        let mut tape = Tape::new();
        let meta_t = enc.forward_meta(&mut tape, &store, &[1, 2, 3]);
        let out_t = enc.forward_content(&mut tape, &store, &[4, 5], &meta_t);
        let metas: Vec<Matrix> = meta_t.iter().map(|&id| tape.value(id).clone()).collect();
        let taped = tape.value(out_t).clone();

        let mut exec = InferExec::new();
        let mut s = exec.session(&store);
        let meta_e = enc.forward_meta(&mut s, &store, &[1, 2, 3]);
        let out_e = enc.forward_content(&mut s, &store, &[4, 5], &meta_e);
        for (node, want) in meta_e.iter().zip(&metas) {
            assert_eq!(s.value(*node), want);
        }
        assert_eq!(s.value(out_e), &taped);
    }

    #[test]
    #[should_panic(expected = "metadata latent")]
    fn content_forward_rejects_wrong_latent_count() {
        let (store, enc, _) = setup();
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 16));
        let _ = enc.forward_content(&mut tape, &store, &[1], &[x]);
    }

    #[test]
    fn towers_share_parameters() {
        // Parameter count must not grow when using both towers: a second
        // encoder would double it; the shared one must not.
        let cfg = ModelConfig::tiny();
        let mut store = ParamStore::new(5);
        let before = store.len();
        let _enc = Encoder::new(&mut store, "enc", &cfg, 50);
        let per_encoder = store.len() - before;
        // forward passes register nothing new.
        assert!(per_encoder > 0);
        assert_eq!(store.len(), before + per_encoder);
    }

    #[test]
    fn forward_self_equals_last_meta_latent() {
        let (store, enc, _) = setup();
        let mut tape = Tape::new();
        let latents = enc.forward_meta(&mut tape, &store, &[9, 8, 7]);
        let mut tape2 = Tape::new();
        let out = enc.forward_self(&mut tape2, &store, &[9, 8, 7]);
        assert_eq!(tape.value(*latents.last().unwrap()), tape2.value(out));
    }
}
