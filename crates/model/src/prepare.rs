//! Turning tables into model inputs.
//!
//! Responsibilities (§6.1.2):
//!
//! * **Column splitting** — tables wider than the threshold `l` are split
//!   into chunks of at most `l` columns so inter-column attention fits
//!   the compute budget.
//! * **Metadata text assembly** — per-column text is the column name,
//!   comment, and raw-type token; per-table text is the table name and
//!   comment.
//! * **Content selection** — retrieve `m` rows, keep each column's first
//!   `n` non-empty cell renderings.
//! * **Targets** — multi-hot label rows (background at index 0).

use crate::features::nonmeta_features;
use taste_core::{Cell, ColumnMeta, LabelSet, Table, TableMeta};
use taste_tokenizer::ColumnContent;

/// One ≤`l`-column slice of a table, with everything the metadata tower
/// needs. Chunks are the unit of model invocation throughout the system.
#[derive(Debug, Clone)]
pub struct TableChunk {
    /// Concatenated table-level text.
    pub table_text: String,
    /// Per-column metadata text, in chunk order.
    pub col_texts: Vec<String>,
    /// Per-column non-textual features, in chunk order.
    pub nonmeta: Vec<Vec<f32>>,
    /// Original ordinals of the chunk's columns within their table.
    pub ordinals: Vec<u16>,
}

/// A full training/evaluation input: a chunk plus its column contents and
/// (for labeled corpora) multi-hot targets.
#[derive(Debug, Clone)]
pub struct ModelInput {
    /// The metadata chunk.
    pub chunk: TableChunk,
    /// Per-column content (always present at training time; at serving
    /// time only the uncertain columns are filled by P2).
    pub contents: Vec<ColumnContent>,
    /// Per-column multi-hot targets of width `ntypes`.
    pub targets: Vec<Vec<f32>>,
    /// Per-column ground-truth label sets (for evaluation).
    pub labels: Vec<LabelSet>,
}

impl ModelInput {
    /// A copy with columns in a random order — training-time
    /// augmentation. Without it, a model trained on small corpora keys
    /// on each column's absolute position in the packed sequence instead
    /// of its tokens; column order carries no semantic information, so
    /// shuffling is loss-free.
    pub fn shuffled(&self, rng: &mut impl rand::Rng) -> ModelInput {
        use rand::seq::SliceRandom;
        let mut perm: Vec<usize> = (0..self.chunk.col_texts.len()).collect();
        perm.shuffle(rng);
        ModelInput {
            chunk: TableChunk {
                table_text: self.chunk.table_text.clone(),
                col_texts: perm.iter().map(|&i| self.chunk.col_texts[i].clone()).collect(),
                nonmeta: perm.iter().map(|&i| self.chunk.nonmeta[i].clone()).collect(),
                ordinals: perm.iter().map(|&i| self.chunk.ordinals[i]).collect(),
            },
            contents: perm.iter().map(|&i| self.contents[i].clone()).collect(),
            targets: perm.iter().map(|&i| self.targets[i].clone()).collect(),
            labels: perm.iter().map(|&i| self.labels[i].clone()).collect(),
        }
    }
}

/// The metadata text of one column: name, comment, raw-type token.
pub fn column_text(col: &ColumnMeta) -> String {
    format!("{} {}", col.textual(), col.raw_type.token())
}

/// The metadata text of a table.
pub fn table_text(meta: &TableMeta) -> String {
    meta.textual()
}

/// Splits `ncols` columns into contiguous chunks of at most `l`.
///
/// # Panics
/// Panics when `l == 0`.
pub fn chunk_ranges(ncols: usize, l: usize) -> Vec<std::ops::Range<usize>> {
    assert!(l > 0, "column split threshold must be positive");
    let mut out = Vec::with_capacity(ncols.div_ceil(l));
    let mut start = 0;
    while start < ncols {
        let end = (start + l).min(ncols);
        out.push(start..end);
        start = end;
    }
    out
}

/// Builds metadata chunks from catalog metadata (the Phase 1 path: no
/// content involved).
pub fn build_chunks(
    meta: &TableMeta,
    columns: &[ColumnMeta],
    l: usize,
    use_histograms: bool,
) -> Vec<TableChunk> {
    let ttext = table_text(meta);
    chunk_ranges(columns.len(), l)
        .into_iter()
        .map(|range| {
            let cols = &columns[range.clone()];
            TableChunk {
                table_text: ttext.clone(),
                col_texts: cols.iter().map(column_text).collect(),
                nonmeta: cols.iter().map(|c| nonmeta_features(c, use_histograms)).collect(),
                ordinals: cols.iter().map(|c| c.id.ordinal).collect(),
            }
        })
        .collect()
}

/// Extracts the first `n` non-empty cell renderings per column, looking
/// at the first `m` rows only.
pub fn select_cells(rows: &[Vec<Cell>], ncols: usize, m: usize, n: usize) -> Vec<ColumnContent> {
    let scan = &rows[..rows.len().min(m)];
    (0..ncols)
        .map(|c| {
            let mut cells = Vec::with_capacity(n);
            for row in scan {
                let cell = &row[c];
                if !cell.is_empty() {
                    cells.push(cell.render());
                    if cells.len() == n {
                        break;
                    }
                }
            }
            ColumnContent { cells }
        })
        .collect()
}

/// Builds full training inputs from a labeled table: chunked metadata,
/// first-`n`-of-`m` content, and multi-hot targets of width `ntypes`.
pub fn training_inputs(
    table: &Table,
    ntypes: usize,
    l: usize,
    m: usize,
    n: usize,
    use_histograms: bool,
) -> Vec<ModelInput> {
    let all_contents = select_cells(&table.rows, table.width(), m, n);
    build_chunks(&table.meta, &table.columns, l, use_histograms)
        .into_iter()
        .map(|chunk| {
            let contents: Vec<ColumnContent> = chunk
                .ordinals
                .iter()
                .map(|&o| all_contents[o as usize].clone())
                .collect();
            let labels: Vec<LabelSet> = chunk
                .ordinals
                .iter()
                .map(|&o| table.labels[o as usize].clone())
                .collect();
            let targets = labels.iter().map(|ls| ls.to_multi_hot(ntypes)).collect();
            ModelInput { chunk, contents, targets, labels }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{ColumnId, RawType, TableId, TypeId};

    fn table(ncols: usize, nrows: usize) -> Table {
        let tid = TableId(0);
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|i| ColumnMeta {
                id: ColumnId::new(tid, i as u16),
                name: format!("col{i}"),
                comment: (i == 0).then(|| "primary key".to_string()),
                raw_type: RawType::Integer,
                nullable: true,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows: Vec<Vec<Cell>> = (0..nrows)
            .map(|r| {
                (0..ncols)
                    .map(|c| if r % 3 == 0 { Cell::Null } else { Cell::Int((r * ncols + c) as i64) })
                    .collect()
            })
            .collect();
        let labels = (0..ncols)
            .map(|i| {
                if i % 2 == 0 {
                    LabelSet::from_iter([TypeId(1 + (i % 5) as u32)])
                } else {
                    LabelSet::empty()
                }
            })
            .collect();
        Table {
            meta: TableMeta { id: tid, name: "t".into(), comment: Some("demo".into()), row_count: nrows as u64 },
            columns,
            rows,
            labels,
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(chunk_ranges(4, 4), vec![0..4]);
        assert_eq!(chunk_ranges(0, 4), Vec::<std::ops::Range<usize>>::new());
        assert_eq!(chunk_ranges(3, 20), vec![0..3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn chunk_ranges_rejects_zero_l() {
        let _ = chunk_ranges(5, 0);
    }

    #[test]
    fn column_text_includes_name_comment_and_type() {
        let t = table(2, 1);
        let text = column_text(&t.columns[0]);
        assert!(text.contains("col0") && text.contains("primary key") && text.contains("int"));
        let text1 = column_text(&t.columns[1]);
        assert_eq!(text1, "col1 int");
    }

    #[test]
    fn build_chunks_respects_split_threshold() {
        let t = table(9, 5);
        let chunks = build_chunks(&t.meta, &t.columns, 4, false);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].ordinals, vec![0, 1, 2, 3]);
        assert_eq!(chunks[2].ordinals, vec![8]);
        for c in &chunks {
            assert_eq!(c.col_texts.len(), c.nonmeta.len());
            assert_eq!(c.table_text, "t demo");
        }
    }

    #[test]
    fn select_cells_skips_nulls_and_caps_n() {
        let t = table(2, 12);
        // Rows 0,3,6,9 are NULL; first 6 rows hold non-null rows 1,2,4,5.
        let contents = select_cells(&t.rows, 2, 6, 3);
        assert_eq!(contents[0].cells.len(), 3);
        assert_eq!(contents[0].cells[0], "2"); // row1 col0 = 1*2+0
        // Fewer rows than n available.
        let contents = select_cells(&t.rows, 2, 2, 5);
        assert_eq!(contents[0].cells.len(), 1);
    }

    #[test]
    fn training_inputs_align_targets_with_chunks() {
        let t = table(7, 10);
        let inputs = training_inputs(&t, 8, 3, 10, 2, false);
        assert_eq!(inputs.len(), 3);
        for input in &inputs {
            assert_eq!(input.contents.len(), input.chunk.ordinals.len());
            assert_eq!(input.targets.len(), input.chunk.ordinals.len());
            for (target, label) in input.targets.iter().zip(&input.labels) {
                assert_eq!(target.len(), 8);
                if label.is_empty() {
                    assert_eq!(target[0], 1.0, "background column marks index 0");
                } else {
                    assert_eq!(target[0], 0.0);
                }
            }
        }
        // Ordinals map back to original labels.
        let last = &inputs[2];
        assert_eq!(last.chunk.ordinals, vec![6]);
        assert_eq!(last.labels[0], t.labels[6]);
    }
}
