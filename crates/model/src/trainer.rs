//! Fine-tuning loops (§6.1.3: 20 epochs of full fine-tuning per dataset).
//!
//! ADTD trains with per-tower multi-label BCE combined by the automatic
//! weighted loss; gradients from both towers flow into the shared
//! encoder. Baselines train with a single BCE.

use crate::adtd::{rows_matrix, Adtd};
use crate::baselines::SingleTower;
use crate::prepare::ModelInput;
use crate::resilience::{ResilienceDriver, ResumableReport, StepOutcome, TrainResilience};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taste_core::TasteError;
use taste_nn::checkpoint::TrainProgress;
use taste_nn::losses::multilabel_bce;
use taste_nn::{Adam, AdamConfig, LrSchedule, Tape};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Chunks per optimizer step.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Gradient clip (global norm); 0 disables.
    pub clip_norm: f32,
    /// Shuffle / dropout seed.
    pub seed: u64,
    /// Warmup fraction of total steps.
    pub warmup_frac: f32,
    /// Positive-decision weight in the multi-label BCE. With a domain of
    /// dozens of types and one or two positives per column, an
    /// unweighted BCE spends most of its gradient pushing negatives
    /// down; a moderate positive weight restores the signal.
    pub pos_weight: f32,
    /// Freeze the automatic-weighted-loss weights at their (unit
    /// effective weight) initialization. In the paper's regime the AWL
    /// weights converge gracefully over 20 epochs on 628K columns; in
    /// the reproduction's short-training regime they run away from the
    /// harder (higher-loss) task and starve it of gradient — freezing
    /// keeps the two towers' multi-task balance fixed at 1:1.
    pub freeze_awl: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 8,
            lr: 1e-3,
            clip_norm: 1.0,
            seed: 0,
            warmup_frac: 0.1,
            pos_weight: 4.0,
            freeze_awl: false,
        }
    }
}

/// Per-epoch mean losses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Whether the loss decreased from the first epoch to the last.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

fn make_optimizer(cfg: &TrainConfig, total_steps: usize) -> Adam {
    Adam::new(
        AdamConfig { lr: cfg.lr, clip_norm: cfg.clip_norm, weight_decay: 0.02, ..Default::default() },
        LrSchedule::LinearWarmupDecay {
            warmup: ((total_steps as f32 * cfg.warmup_frac) as usize).max(1),
            total: total_steps.max(2),
        },
    )
}

/// Fine-tunes an [`Adtd`] on prepared inputs.
///
/// # Errors
/// Returns [`TasteError::Training`] if a non-finite loss appears.
pub fn train_adtd(model: &mut Adtd, inputs: &[ModelInput], cfg: &TrainConfig) -> Result<TrainReport, TasteError> {
    if inputs.is_empty() {
        return Err(TasteError::invalid("no training inputs"));
    }
    let steps_per_epoch = inputs.len().div_ceil(cfg.batch_size);
    let mut opt = make_optimizer(cfg, steps_per_epoch * cfg.epochs);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut steps = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let mut tape = Tape::new();
            let mut meta_losses = Vec::new();
            let mut content_losses = Vec::new();
            let mut meta_cols = 0usize;
            let mut content_cols_total = 0usize;
            for &i in batch {
                let input = inputs[i].shuffled(&mut rng);
                let input = &input;
                let fwd = model.forward_train(&mut tape, input, Some(&mut rng));
                let targets = rows_matrix(&input.targets);
                meta_cols += input.targets.len();
                meta_losses.push(tape.bce_with_logits_weighted_sum(fwd.meta_logits, targets, cfg.pos_weight));
                if let Some(logits) = fwd.content_logits {
                    let sub: Vec<Vec<f32>> = fwd
                        .content_cols
                        .iter()
                        .map(|&j| input.targets[j].clone())
                        .collect();
                    content_cols_total += sub.len();
                    content_losses.push(tape.bce_with_logits_weighted_sum(logits, rows_matrix(&sub), cfg.pos_weight));
                }
            }
            let meta_sum = sum_nodes(&mut tape, &meta_losses);
            let meta_loss = tape.scale(meta_sum, 1.0 / meta_cols.max(1) as f32);
            let content_loss = if content_losses.is_empty() {
                tape.leaf(taste_nn::Matrix::scalar(0.0))
            } else {
                let s = sum_nodes(&mut tape, &content_losses);
                tape.scale(s, 1.0 / content_cols_total.max(1) as f32)
            };
            let total = model.awl.combine(&mut tape, &model.store, &[meta_loss, content_loss]);
            let loss_val = tape.value(total).item();
            if !loss_val.is_finite() {
                return Err(TasteError::Training(format!("non-finite loss {loss_val}")));
            }
            tape.backward(total);
            tape.accumulate_param_grads(&mut model.store);
            if cfg.freeze_awl {
                model.store.grad_mut(model.awl.weights).fill_zero();
            }
            opt.step(&mut model.store);
            epoch_loss += f64::from(loss_val);
            steps += 1;
        }
        epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
    }
    Ok(TrainReport { epoch_losses })
}

/// Crash-safe variant of [`train_adtd`]: periodic full-state
/// checkpoints, resume-on-start, and numerical-fault containment, all
/// configured by `res`.
///
/// With a checkpoint directory set, killing the process at any point
/// and calling this again with a freshly constructed model (same
/// constructor seed) and the same configs resumes from the last
/// checkpoint and produces **bit-identical** final parameters and
/// per-step losses to an uninterrupted run: the loop's shuffle order,
/// input subsampling, and dropout all draw from a checkpointable RNG
/// carried in [`TrainProgress`], and parameter/moment values travel
/// through the checkpoint as raw bits.
///
/// # Errors
/// [`TasteError::InvalidArgument`] on empty input;
/// [`TasteError::Training`] when the anomaly rollback budget is
/// exhausted; [`TasteError::Serde`] on checkpoint I/O failure.
pub fn train_adtd_resumable(
    model: &mut Adtd,
    inputs: &[ModelInput],
    cfg: &TrainConfig,
    res: &TrainResilience,
) -> Result<ResumableReport, TasteError> {
    if inputs.is_empty() {
        return Err(TasteError::invalid("no training inputs"));
    }
    let steps_per_epoch = inputs.len().div_ceil(cfg.batch_size);
    let mut opt = make_optimizer(cfg, steps_per_epoch * cfg.epochs);
    let mut driver = ResilienceDriver::new(res)?;
    let mut st = match driver.resume(&mut model.store, &mut opt)? {
        Some(progress) => progress,
        None => TrainProgress::fresh(inputs.len(), cfg.seed),
    };
    let batches_per_epoch = steps_per_epoch as u64;
    let mut halted = false;

    while (st.epoch as usize) < cfg.epochs {
        if driver.should_halt(&st) {
            halted = true;
            break;
        }
        // `batch == 0` always means "epoch not started": the cursor
        // never rests at 0 mid-epoch, so shuffling here replays
        // identically whether the epoch boundary was crossed live or
        // restored from a checkpoint.
        if st.batch == 0 {
            st.order.shuffle(&mut st.rng);
        }
        let lo = st.batch as usize * cfg.batch_size;
        let hi = (lo + cfg.batch_size).min(inputs.len());
        let batch: Vec<usize> = st.order[lo..hi].iter().map(|&i| i as usize).collect();

        let mut tape = Tape::new();
        let mut meta_losses = Vec::new();
        let mut content_losses = Vec::new();
        let mut meta_cols = 0usize;
        let mut content_cols_total = 0usize;
        for &i in &batch {
            let input = inputs[i].shuffled(&mut st.rng);
            let input = &input;
            let fwd = model.forward_train(&mut tape, input, Some(&mut st.rng));
            let targets = rows_matrix(&input.targets);
            meta_cols += input.targets.len();
            meta_losses.push(tape.bce_with_logits_weighted_sum(fwd.meta_logits, targets, cfg.pos_weight));
            if let Some(logits) = fwd.content_logits {
                let sub: Vec<Vec<f32>> = fwd
                    .content_cols
                    .iter()
                    .map(|&j| input.targets[j].clone())
                    .collect();
                content_cols_total += sub.len();
                content_losses.push(tape.bce_with_logits_weighted_sum(logits, rows_matrix(&sub), cfg.pos_weight));
            }
        }
        let meta_sum = sum_nodes(&mut tape, &meta_losses);
        let meta_loss = tape.scale(meta_sum, 1.0 / meta_cols.max(1) as f32);
        let content_loss = if content_losses.is_empty() {
            tape.leaf(taste_nn::Matrix::scalar(0.0))
        } else {
            let s = sum_nodes(&mut tape, &content_losses);
            tape.scale(s, 1.0 / content_cols_total.max(1) as f32)
        };
        let total = model.awl.combine(&mut tape, &model.store, &[meta_loss, content_loss]);
        let loss_val = tape.value(total).item();
        // Unlike `train_adtd`, a non-finite loss is not fatal here: it
        // flows to the detector, which skips (or rolls back) the step.
        tape.backward(total);
        tape.accumulate_param_grads(&mut model.store);
        if cfg.freeze_awl {
            model.store.grad_mut(model.awl.weights).fill_zero();
        }
        match driver.after_backward(&mut model.store, &mut opt, &mut st, loss_val)? {
            StepOutcome::Applied => {
                st.record_loss(loss_val);
                st.advance(batches_per_epoch);
                driver.maybe_checkpoint(&model.store, &opt, &mut st)?;
            }
            StepOutcome::Skipped(_) => st.advance(batches_per_epoch),
            StepOutcome::RolledBack => {} // cursor rewound; just loop
        }
    }
    Ok(ResilienceDriver::finish(st, &opt, halted))
}

/// Fine-tunes a [`SingleTower`] baseline on prepared inputs.
///
/// # Errors
/// Returns [`TasteError::Training`] if a non-finite loss appears.
pub fn train_single_tower(
    model: &mut SingleTower,
    inputs: &[ModelInput],
    cfg: &TrainConfig,
) -> Result<TrainReport, TasteError> {
    if inputs.is_empty() {
        return Err(TasteError::invalid("no training inputs"));
    }
    let steps_per_epoch = inputs.len().div_ceil(cfg.batch_size);
    let mut opt = make_optimizer(cfg, steps_per_epoch * cfg.epochs);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    for _epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut steps = 0usize;
        for batch in order.chunks(cfg.batch_size) {
            let mut tape = Tape::new();
            let mut losses = Vec::new();
            let mut cols = 0usize;
            for &i in batch {
                let input = inputs[i].shuffled(&mut rng);
                let input = &input;
                let logits = model.forward_train(&mut tape, input);
                cols += input.targets.len();
                losses.push(tape.bce_with_logits_weighted_sum(logits, rows_matrix(&input.targets), cfg.pos_weight));
            }
            let sum = sum_nodes(&mut tape, &losses);
            let loss = tape.scale(sum, 1.0 / cols.max(1) as f32);
            let loss_val = tape.value(loss).item();
            if !loss_val.is_finite() {
                return Err(TasteError::Training(format!("non-finite loss {loss_val}")));
            }
            tape.backward(loss);
            tape.accumulate_param_grads(&mut model.store);
            opt.step(&mut model.store);
            epoch_loss += f64::from(loss_val);
            steps += 1;
        }
        epoch_losses.push((epoch_loss / steps.max(1) as f64) as f32);
    }
    Ok(TrainReport { epoch_losses })
}

fn sum_nodes(tape: &mut Tape, nodes: &[taste_nn::NodeId]) -> taste_nn::NodeId {
    let mut acc = nodes[0];
    for &n in &nodes[1..] {
        acc = tape.add(acc, n);
    }
    acc
}

/// Equivalent of [`multilabel_bce`] exposed for tests that need the same
/// normalization the trainer applies.
pub fn eval_bce(tape: &mut Tape, logits: taste_nn::NodeId, targets: taste_nn::Matrix, batch: usize) -> taste_nn::NodeId {
    multilabel_bce(tape, logits, targets, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::BaselineKind;
    use crate::config::ModelConfig;
    use crate::features::NONMETA_DIM;
    use crate::prepare::TableChunk;
    use taste_tokenizer::{ColumnContent, Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["orders", "city", "phone", "alpha", "beta", "text", "int"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    /// Two linearly separable pseudo-types: columns named "city…" hold
    /// "alpha" content and type 1; "phone…" hold "beta" and type 2.
    fn toy_inputs(n: usize) -> Vec<ModelInput> {
        (0..n)
            .map(|i| {
                let is_city = i % 2 == 0;
                let (name, word, target) = if is_city {
                    ("city", "alpha", vec![0.0, 1.0, 0.0])
                } else {
                    ("phone", "beta", vec![0.0, 0.0, 1.0])
                };
                ModelInput {
                    chunk: TableChunk {
                        table_text: "orders".into(),
                        col_texts: vec![format!("{name} text")],
                        nonmeta: vec![vec![0.0; NONMETA_DIM]],
                        ordinals: vec![0],
                    },
                    contents: vec![ColumnContent { cells: vec![word.into(), word.into()] }],
                    targets: vec![target],
                    labels: vec![Default::default()],
                }
            })
            .collect()
    }

    fn quick_cfg() -> TrainConfig {
        TrainConfig { epochs: 16, batch_size: 4, lr: 2.5e-3, ..Default::default() }
    }

    #[test]
    fn adtd_learns_separable_toy_task() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        let inputs = toy_inputs(16);
        let report = train_adtd(&mut model, &inputs, &quick_cfg()).unwrap();
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        // Both towers should now classify the toy task.
        let input = &inputs[0];
        let enc = model.encode_meta(&input.chunk);
        let probs = model.predict_meta(&enc, &input.chunk.nonmeta);
        assert!(
            probs[0][1] > probs[0][2],
            "metadata tower should prefer type 1 for city: {:?}",
            probs[0]
        );
        let contents: Vec<_> = input.contents.iter().cloned().map(Some).collect();
        let cprobs = model.predict_content(&enc, &contents, &input.chunk.nonmeta);
        let row = cprobs[0].as_ref().unwrap();
        assert!(row[1] > row[2], "content tower should prefer type 1: {row:?}");
    }

    #[test]
    fn baselines_learn_separable_toy_task() {
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            let mut model = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 3, 0);
            let inputs = toy_inputs(16);
            let report = train_single_tower(&mut model, &inputs, &quick_cfg()).unwrap();
            assert!(report.improved(), "{kind:?} losses: {:?}", report.epoch_losses);
            let probs = model.predict(&inputs[1].chunk, &inputs[1].contents);
            assert!(probs[0][2] > probs[0][1], "{kind:?} should prefer type 2: {:?}", probs[0]);
        }
    }

    #[test]
    fn empty_inputs_error() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        assert!(train_adtd(&mut model, &[], &quick_cfg()).is_err());
        let mut st = SingleTower::new(BaselineKind::Turl, &ModelConfig::tiny(), tokenizer(), 3, 0);
        assert!(train_single_tower(&mut st, &[], &quick_cfg()).is_err());
    }

    #[test]
    fn training_is_seed_deterministic() {
        let run = |seed| {
            let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 7);
            let cfg = TrainConfig { seed, epochs: 2, ..quick_cfg() };
            train_adtd(&mut model, &toy_inputs(8), &cfg).unwrap().epoch_losses
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn awl_weights_move_during_training() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        let w_before = model.store.value(model.awl.weights).clone();
        train_adtd(&mut model, &toy_inputs(8), &quick_cfg()).unwrap();
        let w_after = model.store.value(model.awl.weights).clone();
        assert_ne!(w_before, w_after, "AWL weights should be learnable");
    }
}
