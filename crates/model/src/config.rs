//! Model hyperparameters.

use serde::{Deserialize, Serialize};
use taste_tokenizer::PackingBudget;

/// Hyperparameters of the ADTD model (and, by reuse, the baselines).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Number of transformer layers `L`.
    pub layers: usize,
    /// Number of attention heads `A`.
    pub heads: usize,
    /// Hidden size `H`.
    pub hidden: usize,
    /// Feed-forward intermediate size `I`.
    pub intermediate: usize,
    /// Sequence packing budgets (caps `W_max`).
    pub budget: PackingBudget,
    /// Hidden units of the metadata classifier head (paper: 500).
    pub meta_head_hidden: usize,
    /// Hidden units of the content classifier head (paper: 1000).
    pub content_head_hidden: usize,
    /// Dropout probability applied to encoder outputs during training.
    pub dropout: f32,
    /// Whether histogram features are included in `M_n^c`. The feature
    /// slots are always reserved (fixed model shape); this flag controls
    /// whether they are populated.
    pub use_histograms: bool,
}

impl ModelConfig {
    /// Reduced-scale configuration used by the reproduction's default
    /// experiments: small enough to train on CPU in minutes while keeping
    /// every architectural mechanism intact.
    pub fn small() -> ModelConfig {
        ModelConfig {
            layers: 2,
            heads: 4,
            hidden: 64,
            intermediate: 256,
            budget: PackingBudget::default(),
            meta_head_hidden: 128,
            content_head_hidden: 256,
            dropout: 0.1,
            use_histograms: false,
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny() -> ModelConfig {
        ModelConfig {
            layers: 1,
            heads: 2,
            hidden: 16,
            intermediate: 32,
            budget: PackingBudget { table: 8, column: 4, cell: 3, max_len: 96 },
            meta_head_hidden: 24,
            content_head_hidden: 32,
            dropout: 0.0,
            use_histograms: false,
        }
    }

    /// The paper's TinyBERT-sized configuration (§4.2.1, §6.2): L=4,
    /// A=12, H=312, I=1200, W_max=512, heads 500/1000. Constructible and
    /// shape-tested; too slow to *train* on CPU at full corpus scale.
    pub fn paper() -> ModelConfig {
        ModelConfig {
            layers: 4,
            heads: 12,
            hidden: 312,
            intermediate: 1200,
            budget: PackingBudget::paper(),
            meta_head_hidden: 500,
            content_head_hidden: 1000,
            dropout: 0.1,
            use_histograms: false,
        }
    }

    /// Same config with histogram features enabled.
    pub fn with_histograms(mut self) -> ModelConfig {
        self.use_histograms = true;
        self
    }

    /// Head dimension; [`crate::encoder::Encoder`] requires divisibility.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_divisible_by_heads() {
        for cfg in [ModelConfig::small(), ModelConfig::tiny(), ModelConfig::paper()] {
            assert_eq!(cfg.hidden % cfg.heads, 0);
            assert!(cfg.head_dim() > 0);
        }
    }

    #[test]
    fn paper_config_matches_published_numbers() {
        let p = ModelConfig::paper();
        assert_eq!(p.layers, 4);
        assert_eq!(p.heads, 12);
        assert_eq!(p.hidden, 312);
        assert_eq!(p.intermediate, 1200);
        assert_eq!(p.budget.max_len, 512);
        assert_eq!(p.meta_head_hidden, 500);
        assert_eq!(p.content_head_hidden, 1000);
    }

    #[test]
    fn with_histograms_flips_only_the_flag() {
        let a = ModelConfig::small();
        let b = ModelConfig::small().with_histograms();
        assert!(!a.use_histograms);
        assert!(b.use_histograms);
        assert_eq!(a.hidden, b.hidden);
    }
}
