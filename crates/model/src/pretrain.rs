//! Masked Language Model pre-training (§4.2.1).
//!
//! The paper initializes its encoder from a checkpoint pre-trained on an
//! unlabeled Wikipedia table corpus with MLM objectives. The reproduction
//! pre-trains on the synthetic corpus's packed sequences: 15% of
//! non-reserved tokens are selected; of those, 80% become `[MASK]`, 10% a
//! random token, 10% stay, and the model predicts the originals. The
//! resulting `enc.*` parameters are copied into ADTD / baseline stores by
//! name via [`taste_nn::ParamStore::load_matching`].

use crate::config::ModelConfig;
use crate::encoder::Encoder;
use crate::prepare::ModelInput;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use taste_core::TasteError;
use taste_nn::losses::mlm_cross_entropy;
use taste_nn::modules::Linear;
use taste_nn::{Adam, AdamConfig, LrSchedule, ParamStore, Tape};
use taste_tokenizer::vocab::Special;
use taste_tokenizer::{Packer, Tokenizer};

/// Pre-training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Pre-training epochs over the sequence set.
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Fraction of maskable tokens selected per sequence.
    pub mask_prob: f32,
    /// Masking / shuffling seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig { epochs: 2, batch_size: 8, lr: 1e-3, mask_prob: 0.15, seed: 0 }
    }
}

/// Builds the pre-training sequence set from prepared inputs: each
/// chunk's metadata sequence and content sequence become separate
/// unlabeled sequences.
pub fn sequences_from_inputs(
    tokenizer: &Tokenizer,
    budget: taste_tokenizer::PackingBudget,
    inputs: &[ModelInput],
) -> Vec<Vec<u32>> {
    let packer = Packer::new(budget);
    let mut out = Vec::with_capacity(inputs.len() * 2);
    for input in inputs {
        let meta = packer.pack_meta(tokenizer, &input.chunk.table_text, &input.chunk.col_texts);
        if meta.tokens.len() >= 4 {
            out.push(meta.tokens);
        }
        let contents: Vec<_> = input.contents.iter().cloned().map(Some).collect();
        let content = packer.pack_content(tokenizer, &contents);
        if content.tokens.len() >= 4 {
            out.push(content.tokens);
        }
    }
    out
}

/// Applies BERT-style masking; returns `(masked tokens, positions,
/// original ids at those positions)`. Generic over the RNG so the
/// classic loop (StdRng) and the resumable loop (the checkpointable
/// `SplitMix64Rng`) share it.
fn mask_sequence(
    tokens: &[u32],
    tokenizer: &Tokenizer,
    mask_prob: f32,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let vocab = tokenizer.vocab();
    let mask_id = vocab.special(Special::Mask) as usize;
    let vocab_len = vocab.len();
    let mut masked: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
    let mut positions = Vec::new();
    let mut originals = Vec::new();
    for (i, &t) in tokens.iter().enumerate() {
        if vocab.is_reserved(t) || !rng.gen_bool(f64::from(mask_prob)) {
            continue;
        }
        positions.push(i);
        originals.push(t as usize);
        let roll: f32 = rng.gen();
        if roll < 0.8 {
            masked[i] = mask_id;
        } else if roll < 0.9 {
            masked[i] = rng.gen_range(taste_tokenizer::Vocab::special_len()..vocab_len);
        } // else: keep original
    }
    (masked, positions, originals)
}

/// Pre-trains an encoder of the given configuration with MLM and returns
/// its parameter store (`enc.*` parameters plus the discarded MLM head).
///
/// # Errors
/// Returns [`TasteError::Training`] on non-finite loss or an empty
/// sequence set.
pub fn pretrain_encoder(
    cfg: &ModelConfig,
    tokenizer: &Tokenizer,
    sequences: &[Vec<u32>],
    pcfg: &PretrainConfig,
) -> Result<ParamStore, TasteError> {
    if sequences.is_empty() {
        return Err(TasteError::invalid("no pre-training sequences"));
    }
    let mut store = ParamStore::new(pcfg.seed ^ 0x9E37);
    let encoder = Encoder::new(&mut store, "enc", cfg, tokenizer.vocab().len());
    let mlm_head = Linear::new(&mut store, "mlm", cfg.hidden, tokenizer.vocab().len());

    let steps = sequences.len().div_ceil(pcfg.batch_size) * pcfg.epochs;
    let mut opt = Adam::new(
        AdamConfig { lr: pcfg.lr, clip_norm: 1.0, ..Default::default() },
        LrSchedule::LinearWarmupDecay { warmup: (steps / 10).max(1), total: steps.max(2) },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(pcfg.seed);
    let mut order: Vec<usize> = (0..sequences.len()).collect();

    for _ in 0..pcfg.epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(pcfg.batch_size) {
            let mut tape = Tape::new();
            let mut losses = Vec::new();
            for &i in batch {
                let (masked, positions, originals) =
                    mask_sequence(&sequences[i], tokenizer, pcfg.mask_prob, &mut rng);
                if positions.is_empty() {
                    continue;
                }
                let latent = encoder.forward_self(&mut tape, &store, &masked);
                let rows = crate::adtd::gather_node_rows(&mut tape, latent, &positions);
                let logits = mlm_head.forward(&mut tape, &store, rows);
                losses.push(mlm_cross_entropy(&mut tape, logits, originals));
            }
            if losses.is_empty() {
                continue;
            }
            let mut total = losses[0];
            for &l in &losses[1..] {
                total = tape.add(total, l);
            }
            let total = tape.scale(total, 1.0 / losses.len() as f32);
            let v = tape.value(total).item();
            if !v.is_finite() {
                return Err(TasteError::Training(format!("non-finite MLM loss {v}")));
            }
            tape.backward(total);
            tape.accumulate_param_grads(&mut store);
            opt.step(&mut store);
        }
    }
    Ok(store)
}

/// Crash-safe variant of [`pretrain_encoder`]: periodic full-state
/// checkpoints, resume-on-start, and numerical-fault containment. The
/// same bit-identical-resume guarantee as
/// [`crate::trainer::train_adtd_resumable`] applies: masking and
/// shuffling draw from the checkpointable RNG carried in the
/// checkpoint, so a killed-and-resumed pre-training run reproduces the
/// uninterrupted run exactly.
///
/// # Errors
/// [`TasteError::InvalidArgument`] on an empty sequence set;
/// [`TasteError::Training`] when the rollback budget is exhausted;
/// [`TasteError::Serde`] on checkpoint I/O failure.
pub fn pretrain_encoder_resumable(
    cfg: &ModelConfig,
    tokenizer: &Tokenizer,
    sequences: &[Vec<u32>],
    pcfg: &PretrainConfig,
    res: &crate::resilience::TrainResilience,
) -> Result<(ParamStore, crate::resilience::ResumableReport), TasteError> {
    use crate::resilience::{ResilienceDriver, StepOutcome};
    use taste_nn::checkpoint::TrainProgress;

    if sequences.is_empty() {
        return Err(TasteError::invalid("no pre-training sequences"));
    }
    let mut store = ParamStore::new(pcfg.seed ^ 0x9E37);
    let encoder = Encoder::new(&mut store, "enc", cfg, tokenizer.vocab().len());
    let mlm_head = Linear::new(&mut store, "mlm", cfg.hidden, tokenizer.vocab().len());

    let steps = sequences.len().div_ceil(pcfg.batch_size) * pcfg.epochs;
    let mut opt = Adam::new(
        AdamConfig { lr: pcfg.lr, clip_norm: 1.0, ..Default::default() },
        LrSchedule::LinearWarmupDecay { warmup: (steps / 10).max(1), total: steps.max(2) },
    );
    let mut driver = ResilienceDriver::new(res)?;
    let mut st = match driver.resume(&mut store, &mut opt)? {
        Some(progress) => progress,
        None => TrainProgress::fresh(sequences.len(), pcfg.seed),
    };
    let batches_per_epoch = st.batches_per_epoch(pcfg.batch_size);
    let mut halted = false;

    while (st.epoch as usize) < pcfg.epochs {
        if driver.should_halt(&st) {
            halted = true;
            break;
        }
        if st.batch == 0 {
            st.order.shuffle(&mut st.rng);
        }
        let lo = st.batch as usize * pcfg.batch_size;
        let hi = (lo + pcfg.batch_size).min(sequences.len());
        let batch: Vec<usize> = st.order[lo..hi].iter().map(|&i| i as usize).collect();

        let mut tape = Tape::new();
        let mut losses = Vec::new();
        for &i in &batch {
            let (masked, positions, originals) =
                mask_sequence(&sequences[i], tokenizer, pcfg.mask_prob, &mut st.rng);
            if positions.is_empty() {
                continue;
            }
            let latent = encoder.forward_self(&mut tape, &store, &masked);
            let rows = crate::adtd::gather_node_rows(&mut tape, latent, &positions);
            let logits = mlm_head.forward(&mut tape, &store, rows);
            losses.push(mlm_cross_entropy(&mut tape, logits, originals));
        }
        if losses.is_empty() {
            // No maskable positions in this batch: the RNG draws above
            // still happened (so replay stays aligned); just move on.
            st.advance(batches_per_epoch);
            continue;
        }
        let mut total = losses[0];
        for &l in &losses[1..] {
            total = tape.add(total, l);
        }
        let total = tape.scale(total, 1.0 / losses.len() as f32);
        let v = tape.value(total).item();
        tape.backward(total);
        tape.accumulate_param_grads(&mut store);
        match driver.after_backward(&mut store, &mut opt, &mut st, v)? {
            StepOutcome::Applied => {
                st.record_loss(v);
                st.advance(batches_per_epoch);
                driver.maybe_checkpoint(&store, &opt, &mut st)?;
            }
            StepOutcome::Skipped(_) => st.advance(batches_per_epoch),
            StepOutcome::RolledBack => {}
        }
    }
    let report = ResilienceDriver::finish(st, &opt, halted);
    Ok((store, report))
}

/// Measures the mean MLM loss of a store over a sequence sample —
/// used to verify pre-training actually learned something.
pub fn mlm_eval_loss(
    cfg: &ModelConfig,
    store: &ParamStore,
    tokenizer: &Tokenizer,
    sequences: &[Vec<u32>],
    seed: u64,
) -> f32 {
    // Rebuild module handles over the same (by-construction) param ids.
    let mut probe = ParamStore::new(0);
    let encoder = Encoder::new(&mut probe, "enc", cfg, tokenizer.vocab().len());
    let mlm_head = Linear::new(&mut probe, "mlm", cfg.hidden, tokenizer.vocab().len());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut total = 0.0f64;
    let mut n = 0usize;
    for seq in sequences {
        let (masked, positions, originals) = mask_sequence(seq, tokenizer, 0.15, &mut rng);
        if positions.is_empty() {
            continue;
        }
        let mut tape = Tape::new();
        let latent = encoder.forward_self(&mut tape, store, &masked);
        let rows = crate::adtd::gather_node_rows(&mut tape, latent, &positions);
        let logits = mlm_head.forward(&mut tape, store, rows);
        let loss = mlm_cross_entropy(&mut tape, logits, originals);
        total += f64::from(tape.value(loss).item());
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (total / n as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NONMETA_DIM;
    use crate::prepare::TableChunk;
    use taste_tokenizer::{ColumnContent, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["orders", "city", "phone", "alpha", "beta", "gamma", "delta", "text"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn inputs() -> Vec<ModelInput> {
        (0..12)
            .map(|i| ModelInput {
                chunk: TableChunk {
                    table_text: "orders city".into(),
                    col_texts: vec![format!("{} text", if i % 2 == 0 { "city" } else { "phone" })],
                    nonmeta: vec![vec![0.0; NONMETA_DIM]],
                    ordinals: vec![0],
                },
                contents: vec![ColumnContent {
                    cells: vec!["alpha beta".into(), "gamma delta".into()],
                }],
                targets: vec![vec![1.0, 0.0]],
                labels: vec![Default::default()],
            })
            .collect()
    }

    #[test]
    fn sequences_include_meta_and_content() {
        let tok = tokenizer();
        let seqs = sequences_from_inputs(&tok, ModelConfig::tiny().budget, &inputs());
        assert_eq!(seqs.len(), 24, "one meta + one content sequence per input");
        assert!(seqs.iter().all(|s| s.len() >= 4));
    }

    #[test]
    fn masking_never_touches_reserved_tokens() {
        let tok = tokenizer();
        let seqs = sequences_from_inputs(&tok, ModelConfig::tiny().budget, &inputs());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for seq in &seqs {
            let (_, positions, originals) = mask_sequence(seq, &tok, 0.5, &mut rng);
            for (&p, &orig) in positions.iter().zip(&originals) {
                assert_eq!(seq[p] as usize, orig);
                assert!(!tok.vocab().is_reserved(seq[p]));
            }
        }
    }

    #[test]
    fn masking_rate_is_approximately_requested() {
        let tok = tokenizer();
        // A long artificial sequence of maskable tokens.
        let word_id = tok.vocab().id("alpha").unwrap();
        let seq = vec![word_id; 2000];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (_, positions, _) = mask_sequence(&seq, &tok, 0.15, &mut rng);
        let rate = positions.len() as f64 / 2000.0;
        assert!((rate - 0.15).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let tok = tokenizer();
        let cfg = ModelConfig::tiny();
        let seqs = sequences_from_inputs(&tok, cfg.budget, &inputs());
        let pcfg = PretrainConfig { epochs: 5, lr: 3e-3, ..Default::default() };
        let trained = pretrain_encoder(&cfg, &tok, &seqs, &pcfg).unwrap();
        // Fresh random encoder as the baseline.
        let fresh = {
            let mut s = ParamStore::new(123);
            let _ = Encoder::new(&mut s, "enc", &cfg, tok.vocab().len());
            let _ = Linear::new(&mut s, "mlm", cfg.hidden, tok.vocab().len());
            s
        };
        let loss_fresh = mlm_eval_loss(&cfg, &fresh, &tok, &seqs, 9);
        let loss_trained = mlm_eval_loss(&cfg, &trained, &tok, &seqs, 9);
        assert!(
            loss_trained < loss_fresh,
            "pretraining did not help: {loss_trained} vs {loss_fresh}"
        );
    }

    #[test]
    fn pretrained_params_transfer_by_name() {
        let tok = tokenizer();
        let cfg = ModelConfig::tiny();
        let seqs = sequences_from_inputs(&tok, cfg.budget, &inputs());
        let trained = pretrain_encoder(&cfg, &tok, &seqs, &PretrainConfig::default()).unwrap();
        let mut model = crate::adtd::Adtd::new(cfg, tok, 4, 0);
        let copied = model.store.load_matching(&trained);
        assert!(copied > 0, "encoder parameters should transfer");
        // The MLM head must not transfer (no matching name in ADTD).
        assert!(model.store.id_by_name("mlm.w").is_none());
    }

    #[test]
    fn empty_sequences_error() {
        let tok = tokenizer();
        assert!(pretrain_encoder(&ModelConfig::tiny(), &tok, &[], &PretrainConfig::default()).is_err());
    }
}
