//! Incremental semantic-type extension (the paper's first future-work
//! direction, §8): accommodate *new* semantic types without retraining
//! the encoder.
//!
//! The encoder's latents are type-agnostic; only the classifier heads
//! have per-type output units. [`extend_types`] widens both heads,
//! copying the trained weights for existing types and freshly
//! initializing the new units; [`train_heads_only`] then fine-tunes the
//! heads (encoder frozen) on examples of the new types — orders of
//! magnitude cheaper than full retraining, and existing types keep their
//! exact representations.

use crate::adtd::{rows_matrix, Adtd, Head};
use crate::prepare::ModelInput;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use taste_core::TasteError;
use taste_nn::guard::{AnomalyDetector, AnomalyPolicy, StepVerdict};
use taste_nn::{Adam, AdamConfig, LrSchedule, Matrix, ParamId, Tape};

/// Widens the model's type domain from `model.ntypes` to `new_ntypes`.
///
/// Existing output units keep their trained weights; new units are
/// zero-initialized (predicting ~0.5 before head fine-tuning, i.e.
/// "uncertain", which is exactly right for a type the model has never
/// seen).
///
/// # Errors
/// Returns an error when `new_ntypes` does not exceed the current width.
pub fn extend_types(model: &mut Adtd, new_ntypes: usize) -> Result<(), TasteError> {
    if new_ntypes <= model.ntypes {
        return Err(TasteError::invalid(format!(
            "new domain width {new_ntypes} must exceed current {}",
            model.ntypes
        )));
    }
    let old = model.ntypes;
    let gen = generation_suffix(model);
    let meta = widen_head(model, model.meta_head(), "meta_head", &gen, old, new_ntypes);
    let content = widen_head(model, model.content_head(), "content_head", &gen, old, new_ntypes);
    model.set_heads(meta, content, new_ntypes);
    Ok(())
}

fn generation_suffix(model: &Adtd) -> String {
    // Unique suffix per widening so parameter names never collide.
    format!("g{}", model.store.len())
}

fn widen_head(model: &mut Adtd, head: Head, name: &str, gen: &str, old: usize, new: usize) -> Head {
    let (l1, l2) = head.layers();
    // Hidden layer is untouched; reuse its parameters as-is.
    let hidden_dim = model.store.value(l2.w).rows();
    let mut w = Matrix::zeros(hidden_dim, new);
    let mut b = Matrix::zeros(1, new);
    {
        let old_w = model.store.value(l2.w);
        for r in 0..hidden_dim {
            w.row_slice_mut(r)[..old].copy_from_slice(old_w.row_slice(r));
        }
        let old_b = model.store.value(l2.b);
        b.row_slice_mut(0)[..old].copy_from_slice(old_b.row_slice(0));
    }
    let w_id = model.store.with_value(&format!("{name}.h2.{gen}.w"), w);
    let b_id = model.store.with_value(&format!("{name}.h2.{gen}.b"), b);
    Head::from_parts(l1, taste_nn::modules::Linear { w: w_id, b: b_id })
}

/// Fine-tunes *only* the classifier heads (and the AWL weights) on the
/// given inputs; every encoder parameter is frozen. Returns per-epoch
/// losses.
///
/// Anomalous steps (non-finite loss or gradients, loss spikes) are
/// contained rather than fatal: the step's gradients are dropped and
/// training continues, same as the resumable loops. Only a *persistent*
/// anomaly — the detector escalating past its consecutive-step limit,
/// with no checkpoint to roll back to in this lightweight path — aborts.
///
/// # Errors
/// Returns [`TasteError::Training`] on persistent anomalies, or
/// [`TasteError::InvalidArgument`] on empty input.
pub fn train_heads_only(
    model: &mut Adtd,
    inputs: &[ModelInput],
    epochs: usize,
    lr: f32,
    pos_weight: f32,
    seed: u64,
) -> Result<Vec<f32>, TasteError> {
    if inputs.is_empty() {
        return Err(TasteError::invalid("no inputs"));
    }
    let trainable: Vec<ParamId> = model.head_param_ids();
    // Stale Adam momentum from the original full training would keep
    // nudging frozen parameters even with zeroed gradients.
    model.store.reset_optimizer_state();
    let steps = inputs.len().div_ceil(4) * epochs;
    let mut opt = Adam::new(
        AdamConfig { lr, clip_norm: 1.0, ..Default::default() },
        LrSchedule::LinearWarmupDecay { warmup: (steps / 10).max(1), total: steps.max(2) },
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut losses = Vec::with_capacity(epochs);
    let guard_policy = AnomalyPolicy::default();
    let mut detector = AnomalyDetector::default();
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut steps_done = 0usize;
        for batch in order.chunks(4) {
            let mut tape = Tape::new();
            let mut batch_losses = Vec::new();
            let mut cols = 0usize;
            for &i in batch {
                let input = &inputs[i];
                let fwd = model.forward_train(&mut tape, input, None);
                cols += input.targets.len();
                let targets = rows_matrix(&input.targets);
                batch_losses.push(tape.bce_with_logits_weighted_sum(fwd.meta_logits, targets, pos_weight));
                if let Some(logits) = fwd.content_logits {
                    let sub: Vec<Vec<f32>> =
                        fwd.content_cols.iter().map(|&j| input.targets[j].clone()).collect();
                    batch_losses.push(tape.bce_with_logits_weighted_sum(logits, rows_matrix(&sub), pos_weight));
                }
            }
            let mut total = batch_losses[0];
            for &l in &batch_losses[1..] {
                total = tape.add(total, l);
            }
            let total = tape.scale(total, 1.0 / cols.max(1) as f32);
            let v = tape.value(total).item();
            tape.backward(total);
            tape.accumulate_param_grads(&mut model.store);
            // Freeze everything that is not a head parameter.
            let frozen: Vec<ParamId> = model
                .store
                .ids()
                .filter(|id| !trainable.contains(id))
                .collect();
            for id in frozen {
                model.store.grad_mut(id).fill_zero();
            }
            // The detector observes the *effective* (post-freeze)
            // gradient norm, after backward and before the update.
            match detector.observe(&guard_policy, v, model.store.grad_global_norm()) {
                StepVerdict::Apply => {
                    opt.step(&mut model.store);
                    epoch_loss += f64::from(v);
                    steps_done += 1;
                }
                StepVerdict::Skip(_) => model.store.zero_grads(),
                StepVerdict::Rollback(anomaly) => {
                    // Head-only training keeps no checkpoints; a
                    // persistent anomaly has nowhere to roll back to.
                    return Err(TasteError::Training(format!(
                        "persistent anomaly in head fine-tuning: {anomaly:?} (loss {v})"
                    )));
                }
            }
        }
        losses.push((epoch_loss / steps_done.max(1) as f64) as f32);
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::NONMETA_DIM;
    use crate::prepare::TableChunk;
    use crate::trainer::{train_adtd, TrainConfig};
    use taste_tokenizer::{ColumnContent, Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["orders", "city", "phone", "iban", "alpha", "beta", "gamma", "text"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn input(name: &str, word: &str, target: Vec<f32>) -> ModelInput {
        ModelInput {
            chunk: TableChunk {
                table_text: "orders".into(),
                col_texts: vec![format!("{name} text")],
                nonmeta: vec![vec![0.0; NONMETA_DIM]],
                ordinals: vec![0],
            },
            contents: vec![ColumnContent { cells: vec![word.into(), word.into()] }],
            targets: vec![target],
            labels: vec![Default::default()],
        }
    }

    fn base_inputs() -> Vec<ModelInput> {
        (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    input("city", "alpha", vec![0.0, 1.0, 0.0])
                } else {
                    input("phone", "beta", vec![0.0, 0.0, 1.0])
                }
            })
            .collect()
    }

    #[test]
    fn extend_widens_heads_and_preserves_old_predictions() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        train_adtd(&mut model, &base_inputs(), &TrainConfig { epochs: 16, batch_size: 4, lr: 2.5e-3, ..Default::default() })
            .unwrap();
        let probe = base_inputs()[0].clone();
        let enc = model.encode_meta(&probe.chunk);
        let before = model.predict_meta(&enc, &probe.chunk.nonmeta);

        extend_types(&mut model, 5).unwrap();
        assert_eq!(model.ntypes, 5);
        let enc2 = model.encode_meta(&probe.chunk);
        let after = model.predict_meta(&enc2, &probe.chunk.nonmeta);
        assert_eq!(after[0].len(), 5);
        for s in 0..3 {
            assert!(
                (after[0][s] - before[0][s]).abs() < 1e-5,
                "existing type {s} changed: {} -> {}",
                before[0][s],
                after[0][s]
            );
        }
        // New units start at logit 0 => probability 0.5 ("uncertain").
        assert!((after[0][3] - 0.5).abs() < 1e-5);
        assert!((after[0][4] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn extend_rejects_non_growth() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        assert!(extend_types(&mut model, 3).is_err());
        assert!(extend_types(&mut model, 2).is_err());
    }

    #[test]
    fn head_only_training_learns_new_type_without_touching_encoder() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        train_adtd(&mut model, &base_inputs(), &TrainConfig { epochs: 16, batch_size: 4, lr: 2.5e-3, ..Default::default() })
            .unwrap();
        extend_types(&mut model, 4).unwrap();

        // Snapshot an encoder parameter.
        let enc_param = model.store.id_by_name("enc.layer0.attn.q.w").expect("encoder param");
        let enc_before = model.store.value(enc_param).clone();

        // New type 3: columns named "iban" holding "gamma". Old-type
        // replay inputs get their targets padded to the new width.
        let mut new_inputs: Vec<ModelInput> = base_inputs()
            .into_iter()
            .map(|mut i| {
                for t in &mut i.targets {
                    t.resize(4, 0.0);
                }
                i
            })
            .collect();
        for _ in 0..8 {
            new_inputs.push(input("iban", "gamma", vec![0.0, 0.0, 0.0, 1.0]));
        }
        let losses = train_heads_only(&mut model, &new_inputs, 14, 4e-3, 4.0, 1).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap(), "{losses:?}");

        // Encoder untouched.
        assert_eq!(model.store.value(enc_param), &enc_before);

        // The new type is now detected for iban columns.
        let probe = input("iban", "gamma", vec![0.0; 4]);
        let enc = model.encode_meta(&probe.chunk);
        let probs = model.predict_meta(&enc, &probe.chunk.nonmeta);
        let row = &probs[0];
        assert!(
            row[3] > row[1] && row[3] > row[2],
            "new type should win for iban: {row:?}"
        );
    }

    #[test]
    fn multiple_extensions_compose() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 3, 0);
        extend_types(&mut model, 5).unwrap();
        extend_types(&mut model, 8).unwrap();
        assert_eq!(model.ntypes, 8);
        let probe = input("city", "alpha", vec![0.0; 8]);
        let enc = model.encode_meta(&probe.chunk);
        let probs = model.predict_meta(&enc, &probe.chunk.nonmeta);
        assert_eq!(probs[0].len(), 8);
    }
}
