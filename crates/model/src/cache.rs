//! The latent cache (§4.2.2).
//!
//! P1 computes the metadata tower's per-layer latents; P2's content tower
//! needs exactly those latents as its cross-attention keys/values. The
//! cache stores them between phases so P2 never recomputes the metadata
//! tower — the mechanism behind the *TASTE without caching* ablation's
//! slowdown (§6.3). Keys are `(table, chunk)` pairs; capacity is bounded
//! with FIFO eviction (entries are written once and read at most once in
//! a normal two-phase pass). Cached latents are plain matrices, not tape
//! nodes: P2 re-enters whichever execution backend serves the request
//! (see [`taste_nn::Forward`]) by loading them as leaves.
//!
//! ## Persistence
//!
//! A resumed detection run ([`save`](LatentCache::save) /
//! [`restore`](LatentCache::restore)) can keep its P1 latents across a
//! process death: entries are written as length-prefixed, CRC32C-framed
//! records (see [`taste_core::checksum`]), so a torn write at process
//! kill truncates cleanly and a bit-rotted entry is detected, skipped,
//! and counted instead of silently skewing P2 inference.

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use taste_core::checksum::{decode_record, encode_record, DecodeStep};
use taste_core::{Result, TableId, TasteError};
use taste_nn::Matrix;

/// Cached output of one metadata-tower pass over one chunk.
#[derive(Debug, Clone)]
pub struct CachedMeta {
    /// Per-layer latents `[Encode_0, ..., Encode_L]`.
    pub layer_latents: Vec<Matrix>,
    /// `[COL]` marker positions within the chunk's metadata sequence.
    pub col_marker_pos: Vec<usize>,
}

/// Cache key: table id plus chunk index within the table.
pub type CacheKey = (TableId, u32);

struct Inner {
    map: FxHashMap<CacheKey, Arc<CachedMeta>>,
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

/// Bounded, thread-safe latent cache.
pub struct LatentCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl LatentCache {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> LatentCache {
        assert!(capacity > 0, "cache capacity must be positive");
        LatentCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Stores a chunk's metadata latents.
    pub fn put(&self, key: CacheKey, value: Arc<CachedMeta>) {
        let mut inner = self.inner.lock();
        if inner.map.insert(key, value).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Fetches a chunk's latents, counting hit/miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedMeta>> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Clears entries and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
    }

    /// Persists every cached entry to `path` as checksummed records,
    /// writing to a temporary sibling file first and renaming into place
    /// so a crash mid-save never leaves a half-written cache under the
    /// real name. Returns the number of entries written.
    pub fn save(&self, path: &Path) -> Result<usize> {
        let mut buf = Vec::new();
        let mut written = 0usize;
        {
            let inner = self.inner.lock();
            // Insertion order keeps the file deterministic for a given
            // run and preserves FIFO age across a save/restore cycle.
            for key in &inner.order {
                let Some(value) = inner.map.get(key) else { continue };
                let entry = PersistedEntry {
                    table: key.0 .0,
                    chunk: key.1,
                    layer_latents: value.layer_latents.clone(),
                    col_marker_pos: value.col_marker_pos.clone(),
                };
                let payload = serde_json::to_vec(&entry)
                    .map_err(|e| TasteError::Serde(format!("cache entry encode: {e}")))?;
                buf.extend_from_slice(&encode_record(&payload));
                written += 1;
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &buf)
            .map_err(|e| TasteError::Serde(format!("cache write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| TasteError::Serde(format!("cache rename {}: {e}", path.display())))?;
        Ok(written)
    }

    /// Restores entries persisted by [`save`](LatentCache::save) into
    /// this cache (on top of whatever it already holds, subject to the
    /// capacity bound).
    ///
    /// Records that fail their checksum are quarantined — skipped and
    /// counted in [`CacheRestoreStats::corrupt`] — and a torn tail stops
    /// the restore at the last whole record. Neither is an error: a
    /// restored cache is an optimization, and P2 recomputes any latent
    /// that did not survive.
    pub fn restore(&self, path: &Path) -> Result<CacheRestoreStats> {
        let bytes = std::fs::read(path)
            .map_err(|e| TasteError::Serde(format!("cache read {}: {e}", path.display())))?;
        let mut stats = CacheRestoreStats::default();
        let mut at = 0usize;
        while at < bytes.len() {
            match decode_record(&bytes[at..]) {
                DecodeStep::Record { payload, consumed } => {
                    at += consumed;
                    match serde_json::from_slice::<PersistedEntry>(payload) {
                        Ok(entry) => {
                            self.put(
                                (TableId(entry.table), entry.chunk),
                                Arc::new(CachedMeta {
                                    layer_latents: entry.layer_latents,
                                    col_marker_pos: entry.col_marker_pos,
                                }),
                            );
                            stats.loaded += 1;
                        }
                        // Checksum-valid but undecodable: written by an
                        // incompatible version. Quarantine it too.
                        Err(_) => stats.corrupt += 1,
                    }
                }
                DecodeStep::CorruptPayload { consumed } => {
                    at += consumed;
                    stats.corrupt += 1;
                }
                DecodeStep::TornTail => {
                    stats.torn_tail = true;
                    break;
                }
            }
        }
        Ok(stats)
    }
}

/// One cache entry as persisted on disk.
#[derive(Serialize, Deserialize)]
struct PersistedEntry {
    table: u32,
    chunk: u32,
    layer_latents: Vec<Matrix>,
    col_marker_pos: Vec<usize>,
}

/// What [`LatentCache::restore`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheRestoreStats {
    /// Entries restored intact.
    pub loaded: usize,
    /// Records quarantined for a checksum or decode failure.
    pub corrupt: usize,
    /// Whether the file ended in a torn (partially written) record.
    pub torn_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> Arc<CachedMeta> {
        Arc::new(CachedMeta {
            layer_latents: vec![Matrix::zeros(n, 4)],
            col_marker_pos: vec![0],
        })
    }

    #[test]
    fn put_get_roundtrip_counts_hits() {
        let cache = LatentCache::new(4);
        let key = (TableId(1), 0);
        assert!(cache.get(&key).is_none());
        cache.put(key, entry(3));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.layer_latents[0].rows(), 3);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        cache.put((TableId(1), 0), entry(1));
        cache.put((TableId(2), 0), entry(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(TableId(0), 0)).is_none(), "oldest evicted");
        assert!(cache.get(&(TableId(2), 0)).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        cache.put((TableId(0), 0), entry(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&(TableId(0), 0)).unwrap().layer_latents[0].rows(), 2);
    }

    #[test]
    fn clear_resets_state() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        let _ = cache.get(&(TableId(0), 0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LatentCache::new(0);
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "taste-cache-{tag}-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn filled_cache(n: u32) -> LatentCache {
        let cache = LatentCache::new(64);
        for i in 0..n {
            cache.put((TableId(i), i % 3), entry(1 + i as usize));
        }
        cache
    }

    #[test]
    fn save_restore_roundtrip_preserves_entries() {
        let path = temp_path("roundtrip");
        let cache = filled_cache(5);
        assert_eq!(cache.save(&path).unwrap(), 5);
        let restored = LatentCache::new(64);
        let stats = restored.restore(&path).unwrap();
        assert_eq!(stats, CacheRestoreStats { loaded: 5, corrupt: 0, torn_tail: false });
        assert_eq!(restored.len(), 5);
        for i in 0..5u32 {
            let got = restored.get(&(TableId(i), i % 3)).expect("entry survives");
            let want = cache.get(&(TableId(i), i % 3)).unwrap();
            assert_eq!(got.layer_latents, want.layer_latents);
            assert_eq!(got.col_marker_pos, want.col_marker_pos);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_is_quarantined_not_fatal() {
        let path = temp_path("corrupt");
        filled_cache(4).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte of the first record (header is 16 bytes).
        bytes[20] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let restored = LatentCache::new(64);
        let stats = restored.restore(&path).unwrap();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.loaded, 3);
        assert!(!stats.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_stops_at_last_whole_record() {
        let path = temp_path("torn");
        filled_cache(4).save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-way through the final record.
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let restored = LatentCache::new(64);
        let stats = restored.restore(&path).unwrap();
        assert_eq!(stats.loaded, 3);
        assert!(stats.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_of_missing_file_errors() {
        let restored = LatentCache::new(4);
        assert!(restored.restore(std::path::Path::new("/nonexistent/cache.bin")).is_err());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(LatentCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = (TableId(t), i);
                    cache.put(key, entry(1));
                    assert!(cache.get(&key).is_some() || cache.len() == 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
