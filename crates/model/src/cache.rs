//! The latent cache (§4.2.2).
//!
//! P1 computes the metadata tower's per-layer latents; P2's content tower
//! needs exactly those latents as its cross-attention keys/values. The
//! cache stores them between phases so P2 never recomputes the metadata
//! tower — the mechanism behind the *TASTE without caching* ablation's
//! slowdown (§6.3). Keys are `(table, chunk)` pairs; capacity is bounded
//! with FIFO eviction (entries are written once and read at most once in
//! a normal two-phase pass).

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use taste_core::TableId;
use taste_nn::Matrix;

/// Cached output of one metadata-tower pass over one chunk.
#[derive(Debug, Clone)]
pub struct CachedMeta {
    /// Per-layer latents `[Encode_0, ..., Encode_L]`.
    pub layer_latents: Vec<Matrix>,
    /// `[COL]` marker positions within the chunk's metadata sequence.
    pub col_marker_pos: Vec<usize>,
}

/// Cache key: table id plus chunk index within the table.
pub type CacheKey = (TableId, u32);

struct Inner {
    map: FxHashMap<CacheKey, Arc<CachedMeta>>,
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

/// Bounded, thread-safe latent cache.
pub struct LatentCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl LatentCache {
    /// Creates a cache bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> LatentCache {
        assert!(capacity > 0, "cache capacity must be positive");
        LatentCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Stores a chunk's metadata latents.
    pub fn put(&self, key: CacheKey, value: Arc<CachedMeta>) {
        let mut inner = self.inner.lock();
        if inner.map.insert(key, value).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                }
            }
        }
    }

    /// Fetches a chunk's latents, counting hit/miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedMeta>> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Clears entries and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> Arc<CachedMeta> {
        Arc::new(CachedMeta {
            layer_latents: vec![Matrix::zeros(n, 4)],
            col_marker_pos: vec![0],
        })
    }

    #[test]
    fn put_get_roundtrip_counts_hits() {
        let cache = LatentCache::new(4);
        let key = (TableId(1), 0);
        assert!(cache.get(&key).is_none());
        cache.put(key, entry(3));
        let got = cache.get(&key).unwrap();
        assert_eq!(got.layer_latents[0].rows(), 3);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        cache.put((TableId(1), 0), entry(1));
        cache.put((TableId(2), 0), entry(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&(TableId(0), 0)).is_none(), "oldest evicted");
        assert!(cache.get(&(TableId(2), 0)).is_some());
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        cache.put((TableId(0), 0), entry(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&(TableId(0), 0)).unwrap().layer_latents[0].rows(), 2);
    }

    #[test]
    fn clear_resets_state() {
        let cache = LatentCache::new(2);
        cache.put((TableId(0), 0), entry(1));
        let _ = cache.get(&(TableId(0), 0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = LatentCache::new(0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = Arc::new(LatentCache::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = (TableId(t), i);
                    cache.put(key, entry(1));
                    assert!(cache.get(&key).is_some() || cache.len() == 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 64);
    }
}
