//! # taste-model
//!
//! The paper's DL models, built on `taste-nn`:
//!
//! * [`config`] — model hyperparameters, with the reduced-scale default
//!   used by the reproduction's experiments and the paper-scale TinyBERT
//!   configuration (L=4, A=12, H=312, I=1200, W_max=512).
//! * [`features`] — featurization of non-textual metadata `M_n^c` (raw
//!   type, nullability, catalog statistics, histogram summary).
//! * [`prepare`] — turning a [`taste_core::Table`] into model inputs:
//!   column splitting under the threshold `l`, metadata text assembly,
//!   first-`n` non-empty cell selection, and multi-hot targets.
//! * [`encoder`] — the shared transformer stack with both tower forward
//!   passes: self-attention for the metadata tower, and the asymmetric
//!   cross-attention (`Q = content`, `K = V = meta ⊕ content`) for the
//!   content tower (§4.2).
//! * [`cache`] — the latent cache storing per-layer metadata latents from
//!   P1 for reuse by P2 (§4.2.2).
//! * [`adtd`] — the Asymmetric Double-Tower Detection model: two
//!   classifier heads over shared towers, trained with multi-label BCE
//!   under the automatic weighted multi-task loss (§4.3–4.4).
//! * [`infer`] — the serving-side [`infer::Inferencer`]: a per-worker
//!   handle owning a tape-free executor (or, for A/B runs, routing the
//!   same forwards through the recording tape).
//! * [`baselines`] — the TURL and Doduo analogs (single-tower,
//!   content-dependent; §6.2) used for every comparison.
//! * [`pretrain`] — Masked Language Model pre-training on the unlabeled
//!   table corpus, standing in for the TURL pre-trained checkpoint.
//! * [`trainer`] — mini-batch fine-tuning loops for ADTD and baselines.
//! * [`registry`] — versioned on-disk model artifacts for hot reload:
//!   CRC32C-framed, atomically published, quarantined on corruption —
//!   the source the serving-side rollout controller promotes from.
//! * [`resilience`] — crash-safe training: the driver behind
//!   [`trainer::train_adtd_resumable`] and
//!   [`pretrain::pretrain_encoder_resumable`] (periodic full-state
//!   checkpoints, bit-identical resume, anomaly skip/rollback, and the
//!   [`taste_nn::guard::TrainingHealth`] report).

#![warn(missing_docs)]

pub mod adtd;
pub mod baselines;
pub mod cache;
pub mod config;
pub mod encoder;
pub mod extend;
pub mod feedback;
pub mod features;
pub mod infer;
pub mod prepare;
pub mod pretrain;
pub mod registry;
pub mod resilience;
pub mod trainer;

pub use adtd::{Adtd, ContentBatchItem, MetaEncoding};
pub use baselines::{BaselineKind, SingleTower};
pub use cache::{CacheRestoreStats, LatentCache};
pub use config::ModelConfig;
pub use infer::{ExecMode, Inferencer};
pub use prepare::{ModelInput, TableChunk};
pub use registry::{ModelRegistry, RegistryLoadOutcome, VersionedModel};
pub use resilience::{FaultInjection, ResumableReport, TrainResilience};
pub use trainer::TrainConfig;
