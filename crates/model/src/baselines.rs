//! Single-tower baseline analogs of TURL and Doduo (§6.2).
//!
//! Both baselines *require* column content for every prediction — at
//! serving time the framework must scan 100% of columns for them, which
//! is what Figs. 4 and 5 measure. Architecturally:
//!
//! * **TURL analog** — one encoder of the same size as TASTE's; each
//!   column is encoded *independently* with its own sequence
//!   `[CLS] table-meta [SEP] [COL] column-meta [SEP] cells…`, so
//!   cross-attention only sees the current column's metadata (the paper's
//!   §6.4 description of TURL's attention restriction).
//! * **Doduo analog** — a larger encoder; column metadata is mixed
//!   *into* the cell values (`[COL] name cells…` per column, concatenated
//!   table-wise), so metadata and content are not architecturally
//!   separated — again per §6.4.

use crate::adtd::{gather_node_rows, matrix_rows, rows_matrix, Head};
use crate::config::ModelConfig;
use crate::encoder::Encoder;
use crate::features::NONMETA_DIM;
use crate::prepare::{ModelInput, TableChunk};
use serde::{Deserialize, Serialize};
use taste_nn::{NodeId, ParamStore, Tape};
use taste_tokenizer::vocab::Special;
use taste_tokenizer::{ColumnContent, Tokenizer};

/// Which baseline an instance implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// TURL analog: per-column sequences, TASTE-sized encoder.
    Turl,
    /// Doduo analog: table-wise sequences with metadata folded into
    /// content, larger encoder.
    Doduo,
}

impl BaselineKind {
    /// Display name used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BaselineKind::Turl => "TURL",
            BaselineKind::Doduo => "Doduo",
        }
    }

    /// Derives this baseline's encoder configuration from TASTE's.
    /// TURL matches TASTE's size exactly (the paper gives both 14.5M
    /// parameters); Doduo is ~1.5× wider and one layer deeper (standing
    /// in for its BERT-base, 108M vs 14.5M).
    pub fn derive_config(self, base: &ModelConfig) -> ModelConfig {
        match self {
            BaselineKind::Turl => *base,
            BaselineKind::Doduo => {
                let mut cfg = *base;
                cfg.hidden = base.hidden * 3 / 2;
                cfg.heads = base.heads; // keep divisibility: 96 = 4 * 24
                cfg.intermediate = base.intermediate * 3 / 2;
                cfg.layers = base.layers + 1;
                cfg
            }
        }
    }
}

/// A single-tower content-dependent baseline model.
pub struct SingleTower {
    /// Which baseline this is.
    pub kind: BaselineKind,
    /// Encoder configuration (already derived for the kind).
    pub cfg: ModelConfig,
    /// Classifier output width.
    pub ntypes: usize,
    /// All trainable parameters.
    pub store: ParamStore,
    /// The (single) encoder stack.
    pub encoder: Encoder,
    head: Head,
    tokenizer: Tokenizer,
}

impl SingleTower {
    /// Builds a fresh baseline from TASTE's base configuration.
    pub fn new(kind: BaselineKind, base_cfg: &ModelConfig, tokenizer: Tokenizer, ntypes: usize, seed: u64) -> SingleTower {
        let cfg = kind.derive_config(base_cfg);
        let mut store = ParamStore::new(seed);
        let encoder = Encoder::new(&mut store, "enc", &cfg, tokenizer.vocab().len());
        let head = Head::new(&mut store, "head", cfg.hidden + NONMETA_DIM, cfg.content_head_hidden, ntypes);
        SingleTower { kind, cfg, ntypes, store, encoder, head, tokenizer }
    }

    /// The model's tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// TURL-style sequence for one column.
    fn turl_tokens(&self, chunk: &TableChunk, j: usize, content: &ColumnContent) -> Vec<u32> {
        let v = self.tokenizer.vocab();
        let b = &self.cfg.budget;
        let mut toks = Vec::with_capacity(b.max_len.min(64));
        toks.push(v.special(Special::Cls));
        toks.extend(self.tokenizer.encode_budgeted(&chunk.table_text, b.table));
        toks.push(v.special(Special::Sep));
        toks.push(v.special(Special::Col));
        toks.extend(self.tokenizer.encode_budgeted(&chunk.col_texts[j], b.column));
        toks.push(v.special(Special::Sep));
        for cell in &content.cells {
            let body = self.tokenizer.encode_budgeted(cell, b.cell);
            if toks.len() + body.len() + 1 > b.max_len {
                break;
            }
            toks.extend(body);
            toks.push(v.special(Special::Sep));
        }
        toks
    }

    /// Doduo-style table-wise sequence; returns tokens and per-column
    /// `[COL]` marker positions (columns dropped by the cap keep the last
    /// marker so shapes stay aligned).
    fn doduo_tokens(&self, chunk: &TableChunk, contents: &[ColumnContent]) -> (Vec<u32>, Vec<usize>) {
        let v = self.tokenizer.vocab();
        let b = &self.cfg.budget;
        let mut toks = Vec::new();
        let mut markers = Vec::with_capacity(contents.len());
        for (j, content) in contents.iter().enumerate() {
            let name_toks = self.tokenizer.encode_budgeted(&chunk.col_texts[j], b.column);
            if toks.len() + name_toks.len() + 2 > b.max_len {
                markers.push(markers.last().copied().unwrap_or(0));
                continue;
            }
            markers.push(toks.len());
            toks.push(v.special(Special::Col));
            toks.extend(name_toks);
            for cell in &content.cells {
                let body = self.tokenizer.encode_budgeted(cell, b.cell);
                if toks.len() + body.len() + 1 > b.max_len {
                    break;
                }
                toks.extend(body);
                toks.push(v.special(Special::Sep));
            }
        }
        (toks, markers)
    }

    /// Inference: per-column type probabilities for a chunk. Baselines
    /// always consume content; pass empty [`ColumnContent`]s to model the
    /// strict-privacy "w/o content" setting of Table 4.
    pub fn predict(&self, chunk: &TableChunk, contents: &[ColumnContent]) -> Vec<Vec<f32>> {
        assert_eq!(chunk.col_texts.len(), contents.len(), "column count mismatch");
        if contents.is_empty() {
            return Vec::new();
        }
        match self.kind {
            BaselineKind::Turl => (0..contents.len())
                .map(|j| {
                    let toks = self.turl_tokens(chunk, j, &contents[j]);
                    let tokens: Vec<usize> = toks.iter().map(|&t| t as usize).collect();
                    let mut tape = Tape::new();
                    let latent = self.encoder.forward_self(&mut tape, &self.store, &tokens);
                    // [COL] marker sits right after [CLS]+table+[SEP].
                    let col_pos = tokens
                        .iter()
                        .position(|&t| t as u32 == self.tokenizer.vocab().special(Special::Col))
                        .expect("turl sequence always contains [COL]");
                    let row = tape.slice_rows(latent, col_pos, 1);
                    let feats = tape.leaf(rows_matrix(&[chunk.nonmeta[j].clone()]));
                    let x = tape.hcat(row, feats);
                    let logits = self.head.forward(&mut tape, &self.store, x);
                    let probs = tape.sigmoid(logits);
                    tape.value(probs).row_slice(0).to_vec()
                })
                .collect(),
            BaselineKind::Doduo => {
                let (toks, markers) = self.doduo_tokens(chunk, contents);
                let tokens: Vec<usize> = toks.iter().map(|&t| t as usize).collect();
                let mut tape = Tape::new();
                let latent = self.encoder.forward_self(&mut tape, &self.store, &tokens);
                let rows = gather_node_rows(&mut tape, latent, &markers);
                let feats = tape.leaf(rows_matrix(&chunk.nonmeta));
                let x = tape.hcat(rows, feats);
                let logits = self.head.forward(&mut tape, &self.store, x);
                let probs = tape.sigmoid(logits);
                matrix_rows(tape.value(probs))
            }
        }
    }

    /// Serializes the baseline (parameters + config + vocabulary) to a
    /// JSON checkpoint.
    pub fn to_json(&self) -> String {
        serde_json::json!({
            "kind": self.kind,
            "cfg": self.cfg,
            "ntypes": self.ntypes,
            "store": serde_json::from_str::<serde_json::Value>(&self.store.to_json()).expect("valid"),
            "vocab": self.tokenizer.vocab(),
        })
        .to_string()
    }

    /// Restores a baseline from [`SingleTower::to_json`] output.
    pub fn from_json(json: &str) -> Result<SingleTower, String> {
        let v: serde_json::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let kind: BaselineKind = serde_json::from_value(v["kind"].clone()).map_err(|e| e.to_string())?;
        let cfg: ModelConfig = serde_json::from_value(v["cfg"].clone()).map_err(|e| e.to_string())?;
        let ntypes = v["ntypes"].as_u64().ok_or("missing ntypes")? as usize;
        let mut vocab: taste_tokenizer::Vocab =
            serde_json::from_value(v["vocab"].clone()).map_err(|e| e.to_string())?;
        vocab.rebuild_index();
        // `new` derives the config from a base; reconstruct with the
        // stored (already-derived) config by passing it as the base for
        // Turl (identity) or inverting for Doduo via a direct build.
        let mut model = SingleTower::build_with_config(kind, cfg, Tokenizer::new(vocab), ntypes);
        let source = ParamStore::from_json(&v["store"].to_string()).map_err(|e| e.to_string())?;
        let copied = model.store.load_matching(&source);
        if copied != model.store.len() {
            return Err(format!("checkpoint restored only {copied}/{} params", model.store.len()));
        }
        Ok(model)
    }

    /// Builds a baseline with an explicit (pre-derived) configuration.
    pub fn build_with_config(kind: BaselineKind, cfg: ModelConfig, tokenizer: Tokenizer, ntypes: usize) -> SingleTower {
        let mut store = ParamStore::new(0);
        let encoder = Encoder::new(&mut store, "enc", &cfg, tokenizer.vocab().len());
        let head = Head::new(&mut store, "head", cfg.hidden + NONMETA_DIM, cfg.content_head_hidden, ntypes);
        SingleTower { kind, cfg, ntypes, store, encoder, head, tokenizer }
    }

    /// Training forward: logits for every column of the input (one tape,
    /// caller owns loss and step). Returns the logits node (rows align
    /// with chunk columns).
    pub fn forward_train(&self, tape: &mut Tape, input: &ModelInput) -> NodeId {
        match self.kind {
            BaselineKind::Turl => {
                let mut acc: Option<NodeId> = None;
                for j in 0..input.contents.len() {
                    let toks = self.turl_tokens(&input.chunk, j, &input.contents[j]);
                    let tokens: Vec<usize> = toks.iter().map(|&t| t as usize).collect();
                    let latent = self.encoder.forward_self(tape, &self.store, &tokens);
                    let col_pos = tokens
                        .iter()
                        .position(|&t| t as u32 == self.tokenizer.vocab().special(Special::Col))
                        .expect("turl sequence always contains [COL]");
                    let row = tape.slice_rows(latent, col_pos, 1);
                    acc = Some(match acc {
                        Some(prev) => tape.vcat(prev, row),
                        None => row,
                    });
                }
                let rows = acc.expect("non-empty chunk");
                let feats = tape.leaf(rows_matrix(&input.chunk.nonmeta));
                let x = tape.hcat(rows, feats);
                self.head.forward(tape, &self.store, x)
            }
            BaselineKind::Doduo => {
                let (toks, markers) = self.doduo_tokens(&input.chunk, &input.contents);
                let tokens: Vec<usize> = toks.iter().map(|&t| t as usize).collect();
                let latent = self.encoder.forward_self(tape, &self.store, &tokens);
                let rows = gather_node_rows(tape, latent, &markers);
                let feats = tape.leaf(rows_matrix(&input.chunk.nonmeta));
                let x = tape.hcat(rows, feats);
                self.head.forward(tape, &self.store, x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_tokenizer::VocabBuilder;

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "city", "phone", "text", "int", "demo"]);
        b.add_words(["orders", "city", "phone", "text", "int", "demo"]);
        Tokenizer::new(b.build(100, 1))
    }

    fn chunk(ncols: usize) -> TableChunk {
        TableChunk {
            table_text: "orders demo".into(),
            col_texts: (0..ncols).map(|i| format!("city{i} text")).collect(),
            nonmeta: (0..ncols).map(|_| vec![0.25; NONMETA_DIM]).collect(),
            ordinals: (0..ncols as u16).collect(),
        }
    }

    fn contents(ncols: usize) -> Vec<ColumnContent> {
        (0..ncols)
            .map(|_| ColumnContent { cells: vec!["city".into(), "phone".into()] })
            .collect()
    }

    #[test]
    fn doduo_config_is_larger_than_turl() {
        let base = ModelConfig::small();
        let turl = BaselineKind::Turl.derive_config(&base);
        let doduo = BaselineKind::Doduo.derive_config(&base);
        assert_eq!(turl.hidden, base.hidden);
        assert!(doduo.hidden > base.hidden);
        assert!(doduo.layers > base.layers);
        assert_eq!(doduo.hidden % doduo.heads, 0, "heads must still divide hidden");
    }

    #[test]
    fn both_baselines_predict_full_probability_rows() {
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            let m = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 5, 1);
            let c = chunk(3);
            let probs = m.predict(&c, &contents(3));
            assert_eq!(probs.len(), 3, "{kind:?}");
            for row in &probs {
                assert_eq!(row.len(), 5);
                assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn empty_content_still_predicts() {
        // Table 4's "w/o content" setting: content replaced by emptiness.
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            let m = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 4, 1);
            let c = chunk(2);
            let empty: Vec<ColumnContent> = (0..2).map(|_| ColumnContent::default()).collect();
            let probs = m.predict(&c, &empty);
            assert_eq!(probs.len(), 2);
        }
    }

    #[test]
    fn content_changes_predictions() {
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            let m = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 4, 1);
            let c = chunk(2);
            let with = m.predict(&c, &contents(2));
            let without = m.predict(&c, &(0..2).map(|_| ColumnContent::default()).collect::<Vec<_>>());
            assert_ne!(with, without, "{kind:?} must be content-sensitive");
        }
    }

    #[test]
    fn forward_train_logits_align_with_columns() {
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            let m = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 4, 1);
            let input = ModelInput {
                chunk: chunk(3),
                contents: contents(3),
                targets: (0..3).map(|_| vec![1.0, 0.0, 0.0, 0.0]).collect(),
                labels: vec![Default::default(); 3],
            };
            let mut tape = Tape::new();
            let logits = m.forward_train(&mut tape, &input);
            assert_eq!(tape.value(logits).shape(), (3, 4));
        }
    }

    #[test]
    fn kind_labels() {
        assert_eq!(BaselineKind::Turl.label(), "TURL");
        assert_eq!(BaselineKind::Doduo.label(), "Doduo");
    }
}
