//! User-feedback adaptation (the paper's second future-work direction,
//! §8): adjust the model online from accept / reject verdicts on
//! individual detections.
//!
//! A catalog UI surfaces detected types; users confirm or correct them.
//! Each verdict is a *partial* label — it says something about exactly
//! one (column, type) pair and nothing about the other types. Feedback
//! application therefore optimizes the BCE of only the judged logits,
//! only through the classifier heads (encoder frozen), so a handful of
//! clicks cannot distort the shared representation.

use crate::adtd::{gather_node_rows, Adtd};
use crate::prepare::TableChunk;
use taste_core::{TasteError, TypeId};
use taste_nn::{Adam, AdamConfig, LrSchedule, Matrix, Tape};

/// One user verdict on one detection.
#[derive(Debug, Clone)]
pub struct Feedback {
    /// The metadata chunk the detection was made on.
    pub chunk: TableChunk,
    /// Column index within the chunk.
    pub column: usize,
    /// The judged semantic type.
    pub type_id: TypeId,
    /// `true` = "this detection is correct" (drive probability up);
    /// `false` = "wrong" (drive it down).
    pub accepted: bool,
}

/// Outcome of a feedback application.
#[derive(Debug, Clone)]
pub struct FeedbackReport {
    /// Number of verdicts applied.
    pub applied: usize,
    /// Mean per-verdict loss before the updates.
    pub loss_before: f32,
    /// Mean per-verdict loss after the updates.
    pub loss_after: f32,
}

fn verdict_loss(model: &Adtd, tape: &mut Tape, fb: &Feedback) -> Result<taste_nn::NodeId, TasteError> {
    if fb.type_id.index() >= model.ntypes {
        return Err(TasteError::invalid(format!(
            "feedback type {} outside domain of width {}",
            fb.type_id.0, model.ntypes
        )));
    }
    let packed = model.pack_meta(&fb.chunk);
    let marker = *packed
        .col_marker_pos
        .get(fb.column)
        .ok_or_else(|| TasteError::invalid(format!("feedback column {} out of range", fb.column)))?;
    let tokens: Vec<usize> = packed.tokens.iter().map(|&t| t as usize).collect();
    let latents = model.encoder.forward_meta(tape, &model.store, &tokens);
    let final_latent = *latents.last().expect("layers");
    let row = gather_node_rows(tape, final_latent, &[marker]);
    let feats = tape.leaf(Matrix::row(fb.chunk.nonmeta[fb.column].clone()));
    let x = tape.hcat(row, feats);
    let logits = model.meta_head().forward(tape, &model.store, x);
    let judged = tape.slice_cols(logits, fb.type_id.index(), 1);
    let target = Matrix::scalar(if fb.accepted { 1.0 } else { 0.0 });
    Ok(tape.bce_with_logits_sum(judged, target))
}

/// Applies a batch of verdicts with `rounds` head-only gradient passes.
///
/// # Errors
/// Returns an error for empty feedback, out-of-domain types, or
/// out-of-range columns.
pub fn apply_feedback(
    model: &mut Adtd,
    feedback: &[Feedback],
    rounds: usize,
    lr: f32,
) -> Result<FeedbackReport, TasteError> {
    if feedback.is_empty() {
        return Err(TasteError::invalid("no feedback to apply"));
    }
    let mean_loss = |model: &Adtd| -> Result<f32, TasteError> {
        let mut total = 0.0f64;
        for fb in feedback {
            let mut tape = Tape::new();
            let loss = verdict_loss(model, &mut tape, fb)?;
            total += f64::from(tape.value(loss).item());
        }
        Ok((total / feedback.len() as f64) as f32)
    };
    let loss_before = mean_loss(model)?;

    let trainable = model.head_param_ids();
    model.store.reset_optimizer_state();
    let mut opt = Adam::new(
        AdamConfig { lr, clip_norm: 1.0, ..Default::default() },
        LrSchedule::Constant,
    );
    for _ in 0..rounds {
        let mut tape = Tape::new();
        let mut total: Option<taste_nn::NodeId> = None;
        for fb in feedback {
            let loss = verdict_loss(model, &mut tape, fb)?;
            total = Some(match total {
                Some(acc) => tape.add(acc, loss),
                None => loss,
            });
        }
        let total = total.expect("non-empty feedback");
        let total = tape.scale(total, 1.0 / feedback.len() as f32);
        tape.backward(total);
        tape.accumulate_param_grads(&mut model.store);
        let frozen: Vec<_> = model.store.ids().filter(|id| !trainable.contains(id)).collect();
        for id in frozen {
            model.store.grad_mut(id).fill_zero();
        }
        opt.step(&mut model.store);
    }
    let loss_after = mean_loss(model)?;
    Ok(FeedbackReport { applied: feedback.len(), loss_before, loss_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::NONMETA_DIM;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["orders", "num", "text", "city"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn chunk() -> TableChunk {
        TableChunk {
            table_text: "orders".into(),
            col_texts: vec!["num text".into(), "city text".into()],
            nonmeta: vec![vec![0.0; NONMETA_DIM]; 2],
            ordinals: vec![0, 1],
        }
    }

    fn prob_of(model: &Adtd, column: usize, ty: TypeId) -> f32 {
        let c = chunk();
        let enc = model.encode_meta(&c);
        let probs = model.predict_meta(&enc, &c.nonmeta);
        probs[column][ty.index()]
    }

    #[test]
    fn accepting_feedback_raises_probability() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 0);
        let ty = TypeId(2);
        let before = prob_of(&model, 0, ty);
        let report = apply_feedback(
            &mut model,
            &[Feedback { chunk: chunk(), column: 0, type_id: ty, accepted: true }],
            20,
            5e-3,
        )
        .unwrap();
        let after = prob_of(&model, 0, ty);
        assert!(after > before, "accept should raise probability: {before} -> {after}");
        assert!(report.loss_after < report.loss_before);
        assert_eq!(report.applied, 1);
    }

    #[test]
    fn rejecting_feedback_lowers_probability() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 0);
        let ty = TypeId(1);
        let before = prob_of(&model, 1, ty);
        apply_feedback(
            &mut model,
            &[Feedback { chunk: chunk(), column: 1, type_id: ty, accepted: false }],
            20,
            5e-3,
        )
        .unwrap();
        let after = prob_of(&model, 1, ty);
        assert!(after < before, "reject should lower probability: {before} -> {after}");
    }

    #[test]
    fn feedback_does_not_touch_the_encoder() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 0);
        let enc_param = model.store.id_by_name("enc.layer0.attn.q.w").unwrap();
        let before = model.store.value(enc_param).clone();
        apply_feedback(
            &mut model,
            &[Feedback { chunk: chunk(), column: 0, type_id: TypeId(3), accepted: true }],
            5,
            5e-3,
        )
        .unwrap();
        assert_eq!(model.store.value(enc_param), &before);
    }

    #[test]
    fn invalid_feedback_is_rejected() {
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 0);
        assert!(apply_feedback(&mut model, &[], 5, 1e-3).is_err());
        let bad_type = Feedback { chunk: chunk(), column: 0, type_id: TypeId(99), accepted: true };
        assert!(apply_feedback(&mut model, &[bad_type], 5, 1e-3).is_err());
        let bad_col = Feedback { chunk: chunk(), column: 9, type_id: TypeId(1), accepted: true };
        assert!(apply_feedback(&mut model, &[bad_col], 5, 1e-3).is_err());
    }

    #[test]
    fn conflicting_feedback_still_converges() {
        // Accept on one column, reject on the other, same type.
        let mut model = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 0);
        let ty = TypeId(2);
        let report = apply_feedback(
            &mut model,
            &[
                Feedback { chunk: chunk(), column: 0, type_id: ty, accepted: true },
                Feedback { chunk: chunk(), column: 1, type_id: ty, accepted: false },
            ],
            25,
            5e-3,
        )
        .unwrap();
        assert!(report.loss_after < report.loss_before);
        assert!(prob_of(&model, 0, ty) > prob_of(&model, 1, ty));
    }
}
