//! Featurization of non-textual metadata `M_n^c`.
//!
//! The paper concatenates non-textual metadata features with the tower
//! latents at the classifier input (§4.3): data type, nullability,
//! statistics (max, min, NDV), and the histogram summary. The feature
//! vector has a fixed width so the model shape is independent of which
//! statistics a given user database happens to expose; missing values are
//! zero-filled with companion presence indicators.

use taste_core::ColumnMeta;

/// Width of the histogram summary block.
pub const HIST_FEATS: usize = 10;

/// Total width of the `M_n^c` feature vector.
///
/// Layout: 6 raw-type one-hot, 1 nullable, 2 (ndv present, log-ndv),
/// 2 (null_frac present, value), 2 (min present, squashed), 2 (max
/// present, squashed), 2 (avg_len present, squashed), 1 has-histogram,
/// [`HIST_FEATS`] histogram summary.
pub const NONMETA_DIM: usize = 6 + 1 + 2 + 2 + 2 + 2 + 2 + 1 + HIST_FEATS;

/// Squashes an unbounded statistic into `(-1, 1)`.
fn squash(v: f64) -> f32 {
    (v / (1.0 + v.abs())) as f32
}

/// Builds the fixed-width `M_n^c` vector for one column. When
/// `use_histograms` is false the histogram block stays zero even if the
/// catalog has one (the default TASTE variant ignores histograms).
pub fn nonmeta_features(col: &ColumnMeta, use_histograms: bool) -> Vec<f32> {
    let mut f = Vec::with_capacity(NONMETA_DIM);
    // Raw type one-hot.
    let mut one_hot = [0.0f32; 6];
    one_hot[col.raw_type.one_hot_index()] = 1.0;
    f.extend_from_slice(&one_hot);
    f.push(if col.nullable { 1.0 } else { 0.0 });
    // NDV: log-scaled (distinct count spans orders of magnitude).
    match col.stats.ndv {
        Some(ndv) => {
            f.push(1.0);
            f.push(((ndv as f64 + 1.0).ln() / 12.0) as f32);
        }
        None => {
            f.push(0.0);
            f.push(0.0);
        }
    }
    for stat in [col.stats.null_frac, col.stats.min, col.stats.max, col.stats.avg_len] {
        match stat {
            Some(v) => {
                f.push(1.0);
                f.push(squash(v));
            }
            None => {
                f.push(0.0);
                f.push(0.0);
            }
        }
    }
    match (&col.histogram, use_histograms) {
        (Some(h), true) => {
            f.push(1.0);
            f.extend(h.features(HIST_FEATS));
        }
        _ => {
            f.push(0.0);
            f.extend(std::iter::repeat_n(0.0, HIST_FEATS));
        }
    }
    debug_assert_eq!(f.len(), NONMETA_DIM);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{ColumnId, Histogram, RawType, TableId};

    fn base_col() -> ColumnMeta {
        ColumnMeta {
            id: ColumnId::new(TableId(0), 0),
            name: "x".into(),
            comment: None,
            raw_type: RawType::Integer,
            nullable: true,
            stats: Default::default(),
            histogram: None,
        }
    }

    #[test]
    fn width_is_constant_regardless_of_available_stats() {
        let bare = base_col();
        assert_eq!(nonmeta_features(&bare, false).len(), NONMETA_DIM);
        let mut rich = base_col();
        rich.stats.ndv = Some(100);
        rich.stats.null_frac = Some(0.25);
        rich.stats.min = Some(-3.0);
        rich.stats.max = Some(1e9);
        rich.stats.avg_len = Some(12.0);
        rich.histogram = Histogram::equal_width(&[1.0, 2.0, 3.0], 2);
        assert_eq!(nonmeta_features(&rich, true).len(), NONMETA_DIM);
    }

    #[test]
    fn raw_type_one_hot_is_exclusive() {
        let mut col = base_col();
        col.raw_type = RawType::Text;
        let f = nonmeta_features(&col, false);
        let ones: Vec<usize> = (0..6).filter(|&i| f[i] == 1.0).collect();
        assert_eq!(ones, vec![RawType::Text.one_hot_index()]);
    }

    #[test]
    fn presence_indicators_track_missing_stats() {
        let bare = nonmeta_features(&base_col(), false);
        // NDV presence flag at index 7.
        assert_eq!(bare[7], 0.0);
        let mut col = base_col();
        col.stats.ndv = Some(50);
        let with = nonmeta_features(&col, false);
        assert_eq!(with[7], 1.0);
        assert!(with[8] > 0.0);
    }

    #[test]
    fn histogram_block_respects_flag() {
        let mut col = base_col();
        col.histogram = Histogram::equal_depth(&[1.0, 2.0, 3.0, 4.0], 2);
        let off = nonmeta_features(&col, false);
        let on = nonmeta_features(&col, true);
        let hist_start = NONMETA_DIM - HIST_FEATS - 1;
        assert_eq!(off[hist_start], 0.0, "has-histogram flag off");
        assert!(off[hist_start + 1..].iter().all(|&v| v == 0.0));
        assert_eq!(on[hist_start], 1.0);
        assert!(on[hist_start + 1..].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn all_features_are_bounded() {
        let mut col = base_col();
        col.stats.ndv = Some(u64::MAX);
        col.stats.min = Some(-1e300);
        col.stats.max = Some(1e300);
        col.stats.avg_len = Some(1e12);
        col.stats.null_frac = Some(1.0);
        let f = nonmeta_features(&col, false);
        assert!(f.iter().all(|v| v.is_finite() && v.abs() <= 4.0), "{f:?}");
    }

    #[test]
    fn squash_is_monotonic_and_bounded() {
        assert!(squash(0.0) == 0.0);
        assert!(squash(5.0) > squash(1.0));
        assert!(squash(-5.0) < squash(-1.0));
        assert!(squash(1e18) <= 1.0 && squash(-1e18) >= -1.0);
    }
}
