//! Crash-safe, anomaly-guarded training: the driver shared by the
//! resumable fine-tuning and MLM pre-training loops.
//!
//! The serving path already survives crashes (journaled detection runs)
//! and bad inputs (panic isolation); this module gives the *training*
//! path the same two properties. A [`ResilienceDriver`] wraps a
//! training loop with:
//!
//! * **resume-on-start** — the newest intact checkpoint in the
//!   configured directory is restored (corrupt files are quarantined
//!   and skipped), and the loop continues from its cursor through the
//!   same RNG stream, so a killed-and-resumed run is bit-identical to
//!   an uninterrupted one;
//! * **periodic checkpoints** — full state (params, Adam moments and
//!   step, LR position, cursor, RNG, loss history, detector) saved
//!   atomically on the [`CheckpointPolicy`] cadence with rotation;
//! * **numerical-fault containment** — every step's loss and global
//!   gradient norm pass through the [`taste_nn::guard`] detector;
//!   anomalous steps are skipped (gradients dropped), and consecutive
//!   anomalies roll the run back to the previous checkpoint at a
//!   reduced learning rate.
//!
//! Fault injection mirrors the database's seeded `FaultProfile` idiom:
//! a [`FaultInjection`] names the exact steps to poison, and each named
//! step fires once — after a rollback replays it, the fault does not
//! recur, exactly like a transient production fault.

use std::path::PathBuf;

use rustc_hash::FxHashSet;
use taste_core::TasteError;
use taste_nn::checkpoint::{CheckpointPolicy, CheckpointStore, TrainCheckpoint, TrainProgress};
use taste_nn::guard::{Anomaly, AnomalyPolicy, StepVerdict, TrainingHealth};
use taste_nn::{Adam, ParamStore};

use crate::trainer::TrainReport;

/// Configuration of a resumable training run.
#[derive(Debug, Clone, Default)]
pub struct TrainResilience {
    /// Checkpoint directory. `None` trains without checkpoints: anomaly
    /// containment stays active, but rollback degrades to
    /// skip-and-reduce-LR.
    pub dir: Option<PathBuf>,
    /// Checkpoint cadence and retention.
    pub policy: CheckpointPolicy,
    /// Anomaly thresholds and escalation limits.
    pub anomaly: AnomalyPolicy,
    /// Stop after this many processed steps — a simulated kill for
    /// tests and benchmarks. The run returns early with `halted = true`
    /// and writes **no** extra checkpoint, so resuming replays from the
    /// last periodic one like a real crash.
    pub halt_after_steps: Option<u64>,
    /// Deterministic numerical-fault injection.
    pub inject: FaultInjection,
}

impl TrainResilience {
    /// Checkpoints into `dir` with default cadence and anomaly policy.
    pub fn with_dir(dir: impl Into<PathBuf>) -> TrainResilience {
        TrainResilience { dir: Some(dir.into()), ..TrainResilience::default() }
    }
}

/// Steps to poison, by kind. A step listed here fires **once** per run
/// object: after a rollback replays the step, the fault does not recur
/// (a step-keyed fault that re-fired forever would defeat rollback by
/// construction). List each step under at most one kind.
#[derive(Debug, Clone)]
pub struct FaultInjection {
    /// Steps whose gradients are poisoned with NaN after backward.
    pub nan_grad_steps: Vec<u64>,
    /// Steps whose loss reaches the detector as NaN.
    pub nan_loss_steps: Vec<u64>,
    /// Steps whose loss reaches the detector scaled by `spike_scale`.
    pub spike_loss_steps: Vec<u64>,
    /// Multiplier applied on `spike_loss_steps`.
    pub spike_scale: f32,
}

impl Default for FaultInjection {
    fn default() -> Self {
        FaultInjection {
            nan_grad_steps: Vec::new(),
            nan_loss_steps: Vec::new(),
            spike_loss_steps: Vec::new(),
            spike_scale: 100.0,
        }
    }
}

impl FaultInjection {
    /// Whether any fault is configured.
    pub fn is_empty(&self) -> bool {
        self.nan_grad_steps.is_empty()
            && self.nan_loss_steps.is_empty()
            && self.spike_loss_steps.is_empty()
    }
}

/// What a resumable training run returns alongside the trained model.
#[derive(Debug, Clone)]
pub struct ResumableReport {
    /// Mean loss per completed epoch (the classic [`TrainReport`]).
    pub report: TrainReport,
    /// Loss of every applied optimizer step, across kills and resumes.
    pub step_losses: Vec<f32>,
    /// Anomaly and checkpoint telemetry.
    pub health: TrainingHealth,
    /// Whether the run stopped at `halt_after_steps` rather than
    /// completing its epochs.
    pub halted: bool,
}

/// The per-step outcome [`ResilienceDriver::after_backward`] reports to
/// the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The optimizer stepped: record the loss and advance the cursor.
    Applied,
    /// The step was anomalous: gradients were dropped, nothing was
    /// applied. Advance the cursor without recording a loss.
    Skipped(Anomaly),
    /// The run was rolled back to an earlier checkpoint; the cursor
    /// moved *backwards*. Do not advance — loop again from the restored
    /// progress.
    RolledBack,
}

/// Shared mechanics of a resumable training loop.
pub struct ResilienceDriver {
    store: Option<CheckpointStore>,
    cfg: TrainResilience,
    fired: FxHashSet<u64>,
}

impl ResilienceDriver {
    /// Builds the driver, creating the checkpoint directory if one is
    /// configured.
    ///
    /// # Errors
    /// [`TasteError::Serde`] when the directory cannot be created.
    pub fn new(cfg: &TrainResilience) -> Result<ResilienceDriver, TasteError> {
        let store = match &cfg.dir {
            Some(dir) => Some(CheckpointStore::new(dir, cfg.policy)?),
            None => None,
        };
        Ok(ResilienceDriver { store, cfg: cfg.clone(), fired: FxHashSet::default() })
    }

    /// Restores the newest intact checkpoint into `params` and `opt`,
    /// returning its progress, or `None` when starting fresh.
    ///
    /// # Errors
    /// [`TasteError::Corrupt`] when an intact-looking checkpoint does
    /// not match the model (wrong architecture under this directory).
    pub fn resume(&mut self, params: &mut ParamStore, opt: &mut Adam) -> Result<Option<TrainProgress>, TasteError> {
        let Some(cs) = &self.store else { return Ok(None) };
        let outcome = cs.load_latest()?;
        match outcome.loaded {
            Some((ck, _path)) => {
                let mut progress = ck.restore(params, opt)?;
                progress.health.resumed_from_step = Some(progress.step);
                progress.health.checkpoints_quarantined += outcome.quarantined;
                Ok(Some(progress))
            }
            None => Ok(None),
        }
    }

    /// Whether the simulated-kill point has been reached.
    pub fn should_halt(&self, progress: &TrainProgress) -> bool {
        self.cfg.halt_after_steps.is_some_and(|h| progress.step >= h)
    }

    /// Applies any one-shot fault configured for this step; returns the
    /// loss value the detector should observe.
    fn inject(&mut self, step: u64, loss: f32, params: &mut ParamStore) -> f32 {
        if self.cfg.inject.is_empty() {
            return loss;
        }
        if self.cfg.inject.nan_grad_steps.contains(&step) && self.fired.insert(step) {
            if let Some(id) = params.ids().next() {
                params.grad_mut(id).as_mut_slice()[0] = f32::NAN;
            }
            return loss;
        }
        if self.cfg.inject.nan_loss_steps.contains(&step) && self.fired.insert(step) {
            return f32::NAN;
        }
        if self.cfg.inject.spike_loss_steps.contains(&step) && self.fired.insert(step) {
            return loss * self.cfg.inject.spike_scale;
        }
        loss
    }

    /// The per-step decision point, called after backward with the
    /// gradients accumulated (and any frozen gradients already zeroed)
    /// but *before* the optimizer step: injects configured faults, runs
    /// the anomaly detector, and either applies the update, skips the
    /// step, or rolls back to the previous checkpoint.
    ///
    /// # Errors
    /// [`TasteError::Training`] once the rollback budget is exhausted —
    /// the run is not converging and silently continuing would burn
    /// compute on a poisoned model.
    pub fn after_backward(
        &mut self,
        params: &mut ParamStore,
        opt: &mut Adam,
        progress: &mut TrainProgress,
        loss: f32,
    ) -> Result<StepOutcome, TasteError> {
        let observed = self.inject(progress.step, loss, params);
        let grad_norm = params.grad_global_norm();
        match progress.detector.observe(&self.cfg.anomaly, observed, grad_norm) {
            StepVerdict::Apply => {
                opt.step(params);
                progress.health.steps_applied += 1;
                Ok(StepOutcome::Applied)
            }
            StepVerdict::Skip(anomaly) => {
                params.zero_grads();
                progress.health.record_anomaly(anomaly);
                Ok(StepOutcome::Skipped(anomaly))
            }
            StepVerdict::Rollback(anomaly) => {
                params.zero_grads();
                progress.health.record_anomaly(anomaly);
                progress.health.rollbacks += 1;
                if progress.health.rollbacks > self.cfg.anomaly.max_rollbacks {
                    return Err(TasteError::Training(format!(
                        "aborting after {} rollbacks (latest: {anomaly:?} at step {})",
                        progress.health.rollbacks, progress.step
                    )));
                }
                // Live counters must survive the restore: the restored
                // progress carries the *old* health, and rewinding the
                // anomaly history would both under-report and reset the
                // rollback budget.
                let live_health = progress.health.clone();
                let restored = match &self.store {
                    Some(cs) => {
                        let outcome = cs.load_latest()?;
                        outcome.loaded.map(|(ck, _)| (ck, outcome.quarantined))
                    }
                    None => None,
                };
                match restored {
                    Some((ck, quarantined)) => {
                        let mut back = ck.restore(params, opt)?;
                        back.health = live_health;
                        back.health.checkpoints_quarantined += quarantined;
                        opt.config.lr *= self.cfg.anomaly.lr_backoff;
                        *progress = back;
                        // Persist the reduced LR and the anomaly counts
                        // immediately: a crash right after rollback must
                        // not resume at the un-reduced rate.
                        self.save_now(params, opt, progress)?;
                        Ok(StepOutcome::RolledBack)
                    }
                    None => {
                        // Nothing to roll back to (no checkpointing, or
                        // no checkpoint yet): contain locally.
                        opt.config.lr *= self.cfg.anomaly.lr_backoff;
                        Ok(StepOutcome::Skipped(anomaly))
                    }
                }
            }
        }
    }

    /// Saves a checkpoint when the periodic cadence is due.
    ///
    /// # Errors
    /// [`TasteError::Serde`] on I/O failure.
    pub fn maybe_checkpoint(
        &self,
        params: &ParamStore,
        opt: &Adam,
        progress: &mut TrainProgress,
    ) -> Result<(), TasteError> {
        let due = self.store.as_ref().is_some_and(|cs| cs.policy().due(progress.step));
        if due {
            self.save_now(params, opt, progress)?;
        }
        Ok(())
    }

    fn save_now(&self, params: &ParamStore, opt: &Adam, progress: &mut TrainProgress) -> Result<(), TasteError> {
        let Some(cs) = &self.store else { return Ok(()) };
        progress.health.checkpoints_written += 1;
        cs.save(&TrainCheckpoint::capture(params, opt, progress))?;
        Ok(())
    }

    /// Packages the final state of a completed (or halted) run.
    pub fn finish(progress: TrainProgress, opt: &Adam, halted: bool) -> ResumableReport {
        let mut health = progress.health;
        health.final_lr = opt.config.lr;
        ResumableReport {
            report: TrainReport { epoch_losses: progress.epoch_losses },
            step_losses: progress.step_losses,
            health,
            halted,
        }
    }
}
