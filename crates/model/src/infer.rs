//! The serving-side execution handle: a long-lived [`Inferencer`] that
//! owns a tape-free executor and dispatches the ADTD prediction entry
//! points onto the configured backend.
//!
//! The framework's worker threads each hold one `Inferencer` for their
//! whole lifetime, so the executor's scratch buffers are sized by the
//! first table and reused for every table after it. The [`ExecMode::Taped`]
//! mode exists for A/B parity runs only: it routes the *same* generic
//! forward bodies through a fresh recording [`taste_nn::Tape`] per call,
//! reproducing the pre-split serving behavior.

use crate::adtd::{Adtd, ContentBatchItem, MetaEncoding};
use crate::prepare::TableChunk;
use taste_nn::{InferExec, Tape};
use taste_tokenizer::ColumnContent;

/// Which execution backend serves predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Eager, tape-free evaluation into reusable buffers (the default).
    #[default]
    TapeFree,
    /// Record every op on an autodiff tape, as training does — slower,
    /// kept selectable to A/B the backends on identical inputs.
    Taped,
}

/// A reusable serving context: one per worker thread.
pub struct Inferencer {
    mode: ExecMode,
    exec: InferExec,
}

impl Inferencer {
    /// A new inferencer in the given mode; buffers grow on first use.
    pub fn new(mode: ExecMode) -> Inferencer {
        Inferencer { mode, exec: InferExec::new() }
    }

    /// [`Inferencer::new`] with a row-parallel kernel width for the
    /// tape-free backend (clamped to at least 1). Threaded kernels are
    /// bit-identical to single-threaded ones, so this only changes speed.
    pub fn with_kernel_threads(mode: ExecMode, threads: usize) -> Inferencer {
        let mut inf = Inferencer::new(mode);
        inf.set_kernel_threads(threads);
        inf
    }

    /// Re-targets the tape-free backend's row-parallel kernel width.
    /// [`ExecMode::Taped`] ignores this — the tape always runs the
    /// single-threaded reference kernels (which produce identical bytes).
    pub fn set_kernel_threads(&mut self, threads: usize) {
        self.exec.set_kernel_threads(threads);
    }

    /// The kernel width the tape-free backend would use (always ≥ 1).
    pub fn kernel_threads(&self) -> usize {
        self.exec.kernel_threads()
    }

    /// The backend this inferencer dispatches to.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// [`Adtd::encode_meta`] on this inferencer's backend.
    pub fn encode_meta(&mut self, model: &Adtd, chunk: &TableChunk) -> MetaEncoding {
        match self.mode {
            ExecMode::TapeFree => model.encode_meta_in(&mut self.exec, chunk),
            ExecMode::Taped => model.encode_meta_ex(&mut Tape::new(), chunk),
        }
    }

    /// [`Adtd::predict_meta`] on this inferencer's backend.
    pub fn predict_meta(
        &mut self,
        model: &Adtd,
        enc: &MetaEncoding,
        nonmeta: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        match self.mode {
            ExecMode::TapeFree => model.predict_meta_in(&mut self.exec, enc, nonmeta),
            ExecMode::Taped => model.predict_meta_ex(&mut Tape::new(), enc, nonmeta),
        }
    }

    /// [`Adtd::predict_content`] on this inferencer's backend.
    pub fn predict_content(
        &mut self,
        model: &Adtd,
        enc: &MetaEncoding,
        contents: &[Option<ColumnContent>],
        nonmeta: &[Vec<f32>],
    ) -> Vec<Option<Vec<f32>>> {
        match self.mode {
            ExecMode::TapeFree => model.predict_content_in(&mut self.exec, enc, contents, nonmeta),
            ExecMode::Taped => model.predict_content_ex(&mut Tape::new(), enc, contents, nonmeta),
        }
    }

    // ---- micro-batch entry points ------------------------------------
    //
    // One call serves a micro-batch of chunks drawn from many tables;
    // outputs are bit-identical to looping the per-chunk methods above.

    /// [`Adtd::encode_meta_batched`] on this inferencer's backend:
    /// encodes many chunks' metadata in one ragged row-stacked forward
    /// and scatters the per-layer latents back into one cacheable
    /// [`MetaEncoding`] per chunk.
    pub fn encode_meta_batch(&mut self, model: &Adtd, chunks: &[&TableChunk]) -> Vec<MetaEncoding> {
        if chunks.is_empty() {
            return Vec::new();
        }
        match self.mode {
            ExecMode::TapeFree => model.encode_meta_batched_in(&mut self.exec, chunks),
            ExecMode::Taped => model.encode_meta_batched_ex(&mut Tape::new(), chunks),
        }
    }

    /// [`Adtd::predict_meta_batched`] on this inferencer's backend.
    pub fn predict_meta_batch(
        &mut self,
        model: &Adtd,
        items: &[(&MetaEncoding, &[Vec<f32>])],
    ) -> Vec<Vec<Vec<f32>>> {
        if items.is_empty() {
            return Vec::new();
        }
        match self.mode {
            ExecMode::TapeFree => model.predict_meta_batched_in(&mut self.exec, items),
            ExecMode::Taped => model.predict_meta_batched_ex(&mut Tape::new(), items),
        }
    }

    /// [`Adtd::predict_content_batched`] on this inferencer's backend:
    /// gathers each chunk's latent-cache entry, runs the content tower
    /// once over the ragged row-stacked batch, and scatters per-column
    /// verdicts back in chunk order.
    pub fn predict_content_batch(
        &mut self,
        model: &Adtd,
        items: &[ContentBatchItem<'_>],
    ) -> Vec<Vec<Option<Vec<f32>>>> {
        if items.is_empty() {
            return Vec::new();
        }
        match self.mode {
            ExecMode::TapeFree => model.predict_content_batched_in(&mut self.exec, items),
            ExecMode::Taped => model.predict_content_batched_ex(&mut Tape::new(), items),
        }
    }
}

impl Default for Inferencer {
    fn default() -> Inferencer {
        Inferencer::new(ExecMode::TapeFree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::features::NONMETA_DIM;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn model() -> Adtd {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        Adtd::new(ModelConfig::tiny(), Tokenizer::new(b.build(100, 1)), 4, 3)
    }

    fn chunk(ncols: usize) -> TableChunk {
        TableChunk {
            table_text: "orders".into(),
            col_texts: (0..ncols).map(|i| format!("city{i} text")).collect(),
            nonmeta: (0..ncols).map(|_| vec![0.5; NONMETA_DIM]).collect(),
            ordinals: (0..ncols as u16).collect(),
        }
    }

    #[test]
    fn modes_agree_on_full_two_phase_prediction() {
        let m = model();
        let c = chunk(3);
        let contents = vec![
            Some(ColumnContent { cells: vec!["city".into(), "name".into()] }),
            None,
            Some(ColumnContent { cells: vec!["phone".into()] }),
        ];

        let mut free = Inferencer::new(ExecMode::TapeFree);
        let mut taped = Inferencer::new(ExecMode::Taped);

        let enc_f = free.encode_meta(&m, &c);
        let enc_t = taped.encode_meta(&m, &c);
        assert_eq!(enc_f.layer_latents, enc_t.layer_latents);
        assert_eq!(enc_f.col_marker_pos, enc_t.col_marker_pos);

        assert_eq!(
            free.predict_meta(&m, &enc_f, &c.nonmeta),
            taped.predict_meta(&m, &enc_t, &c.nonmeta)
        );
        assert_eq!(
            free.predict_content(&m, &enc_f, &contents, &c.nonmeta),
            taped.predict_content(&m, &enc_t, &contents, &c.nonmeta)
        );
    }

    #[test]
    fn kernel_threads_do_not_change_predictions() {
        // The row-parallel partition assigns whole rows to fixed threads,
        // so any thread count yields byte-identical probabilities.
        let m = model();
        let c = chunk(3);
        let contents = vec![Some(ColumnContent { cells: vec!["phone".into()] }), None, None];

        let mut one = Inferencer::with_kernel_threads(ExecMode::TapeFree, 1);
        let mut four = Inferencer::with_kernel_threads(ExecMode::TapeFree, 4);
        assert_eq!(one.kernel_threads(), 1);
        assert_eq!(four.kernel_threads(), 4);

        let enc1 = one.encode_meta(&m, &c);
        let enc4 = four.encode_meta(&m, &c);
        assert_eq!(enc1.layer_latents, enc4.layer_latents);
        assert_eq!(
            one.predict_meta(&m, &enc1, &c.nonmeta),
            four.predict_meta(&m, &enc4, &c.nonmeta)
        );
        assert_eq!(
            one.predict_content(&m, &enc1, &contents, &c.nonmeta),
            four.predict_content(&m, &enc4, &contents, &c.nonmeta)
        );
    }

    #[test]
    fn batch_entry_points_agree_with_per_chunk_calls_in_both_modes() {
        let m = model();
        let chunks: Vec<TableChunk> = (1..=3).map(chunk).collect();
        let refs: Vec<&TableChunk> = chunks.iter().collect();
        let contents: Vec<Vec<Option<ColumnContent>>> = chunks
            .iter()
            .map(|c| {
                (0..c.col_texts.len())
                    .map(|j| (j % 2 == 0).then(|| ColumnContent { cells: vec!["phone".into()] }))
                    .collect()
            })
            .collect();
        for mode in [ExecMode::TapeFree, ExecMode::Taped] {
            let mut inf = Inferencer::new(mode);
            let encs = inf.encode_meta_batch(&m, &refs);
            let meta_items: Vec<(&MetaEncoding, &[Vec<f32>])> =
                encs.iter().zip(&chunks).map(|(e, c)| (e, c.nonmeta.as_slice())).collect();
            let meta_probs = inf.predict_meta_batch(&m, &meta_items);
            let content_items: Vec<ContentBatchItem<'_>> = encs
                .iter()
                .zip(&contents)
                .zip(&chunks)
                .map(|((e, ct), c)| (e, ct.as_slice(), c.nonmeta.as_slice()))
                .collect();
            let content_probs = inf.predict_content_batch(&m, &content_items);

            let mut solo = Inferencer::new(mode);
            for (i, c) in chunks.iter().enumerate() {
                let enc = solo.encode_meta(&m, c);
                assert_eq!(enc.layer_latents, encs[i].layer_latents, "mode {mode:?}");
                assert_eq!(solo.predict_meta(&m, &enc, &c.nonmeta), meta_probs[i]);
                assert_eq!(
                    solo.predict_content(&m, &enc, &contents[i], &c.nonmeta),
                    content_probs[i]
                );
            }
        }
    }

    #[test]
    fn tape_free_mode_matches_plain_adtd_entry_points() {
        let m = model();
        let c = chunk(2);
        let mut inf = Inferencer::default();
        let enc = inf.encode_meta(&m, &c);
        let plain = m.encode_meta(&c);
        assert_eq!(enc.layer_latents, plain.layer_latents);
        assert_eq!(inf.predict_meta(&m, &enc, &c.nonmeta), m.predict_meta(&plain, &c.nonmeta));
    }
}
