//! Crash-safe training integration tests: kill-and-resume bit-identity
//! for fine-tuning and MLM pre-training, numerical-fault containment,
//! and corrupt-checkpoint quarantine.
//!
//! The `#[ignore]`d test is the release-mode scenario run by CI via
//! `cargo test --release -- --ignored` (see `make train-resume`).

use std::fs;
use std::path::PathBuf;
use taste_model::features::NONMETA_DIM;
use taste_model::prepare::TableChunk;
use taste_model::pretrain::{pretrain_encoder_resumable, sequences_from_inputs, PretrainConfig};
use taste_model::trainer::train_adtd_resumable;
use taste_model::{Adtd, FaultInjection, ModelConfig, ModelInput, TrainConfig, TrainResilience};
use taste_nn::checkpoint::{CheckpointPolicy, FILE_EXT};
use taste_nn::guard::AnomalyPolicy;
use taste_nn::ParamStore;
use taste_tokenizer::{ColumnContent, Tokenizer, VocabBuilder};

fn temp_path(tag: &str) -> PathBuf {
    let tid = format!("{:?}", std::thread::current().id());
    std::env::temp_dir().join(format!(
        "taste-train-{tag}-{}-{}",
        std::process::id(),
        tid.replace(|c: char| !c.is_ascii_alphanumeric(), "")
    ))
}

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["orders", "city", "phone", "alpha", "beta", "text", "int"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

/// Two linearly separable pseudo-types, same as the trainer unit tests.
fn toy_inputs(n: usize) -> Vec<ModelInput> {
    (0..n)
        .map(|i| {
            let (name, word, target) = if i % 2 == 0 {
                ("city", "alpha", vec![0.0, 1.0, 0.0])
            } else {
                ("phone", "beta", vec![0.0, 0.0, 1.0])
            };
            ModelInput {
                chunk: TableChunk {
                    table_text: "orders".into(),
                    col_texts: vec![format!("{name} text")],
                    nonmeta: vec![vec![0.0; NONMETA_DIM]],
                    ordinals: vec![0],
                },
                contents: vec![ColumnContent { cells: vec![word.into(), word.into()] }],
                targets: vec![target],
                labels: vec![Default::default()],
            }
        })
        .collect()
}

fn quick_cfg(epochs: usize) -> TrainConfig {
    TrainConfig { epochs, batch_size: 4, lr: 2.5e-3, ..Default::default() }
}

fn model(seed: u64) -> Adtd {
    Adtd::new(ModelConfig::tiny(), tokenizer(), 3, seed)
}

/// Every parameter's name and exact bit pattern, order-independent.
fn param_bits(store: &ParamStore) -> Vec<(String, Vec<u32>)> {
    let mut out: Vec<(String, Vec<u32>)> = store
        .ids()
        .map(|id| {
            let bits = store.value(id).as_slice().iter().map(|v| v.to_bits()).collect();
            (store.name(id).to_owned(), bits)
        })
        .collect();
    out.sort();
    out
}

fn loss_bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|v| v.to_bits()).collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = temp_path(tag);
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_resume_is_bit_identical() {
    let inputs = toy_inputs(8);
    let cfg = quick_cfg(6); // 2 steps/epoch => 12 steps

    // Reference: uninterrupted, no checkpointing at all.
    let mut a = model(42);
    let ra = train_adtd_resumable(&mut a, &inputs, &cfg, &TrainResilience::default()).unwrap();
    assert!(!ra.halted);
    assert!(ra.health.is_clean());
    assert_eq!(ra.health.steps_applied, 12);
    assert_eq!(ra.step_losses.len(), 12);

    // Same run killed at step 7 with checkpoints every 2 steps...
    let dir = fresh_dir("resume");
    let res = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 2, keep_last_k: 2 },
        halt_after_steps: Some(7),
        ..TrainResilience::default()
    };
    let mut b = model(42);
    let rb = train_adtd_resumable(&mut b, &inputs, &cfg, &res).unwrap();
    assert!(rb.halted, "run should stop at the simulated kill");
    assert!(rb.health.checkpoints_written >= 3);

    // ...then resumed with a *freshly constructed* model, as after a
    // real process death.
    let res2 = TrainResilience { halt_after_steps: None, ..res };
    let mut b2 = model(42);
    let rb2 = train_adtd_resumable(&mut b2, &inputs, &cfg, &res2).unwrap();
    assert!(!rb2.halted);
    assert_eq!(rb2.health.resumed_from_step, Some(6), "newest kept checkpoint is step 6");

    // Bit-identical loss curve and final parameters, checkpointing or
    // not, killed or not.
    assert_eq!(loss_bits(&ra.step_losses), loss_bits(&rb2.step_losses));
    assert_eq!(param_bits(&a.store), param_bits(&b2.store));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn nan_gradient_injection_is_contained() {
    let inputs = toy_inputs(8);
    let cfg = quick_cfg(6);
    let res = TrainResilience {
        inject: FaultInjection { nan_grad_steps: vec![3], ..FaultInjection::default() },
        ..TrainResilience::default()
    };
    let mut m = model(7);
    let r = train_adtd_resumable(&mut m, &inputs, &cfg, &res).unwrap();
    assert!(!r.halted);
    assert_eq!(r.health.non_finite_grad, 1, "the poisoned step was seen");
    assert_eq!(r.health.steps_skipped, 1, "and skipped, not applied");
    assert_eq!(r.health.rollbacks, 0, "one isolated fault never escalates");
    assert_eq!(r.health.steps_applied, 11);
    assert!(!r.health.is_clean());
    for (name, bits) in param_bits(&m.store) {
        for b in bits {
            assert!(f32::from_bits(b).is_finite(), "non-finite value leaked into {name}");
        }
    }
}

#[test]
fn persistent_loss_spikes_roll_back_at_reduced_lr() {
    let inputs = toy_inputs(8);
    let cfg = quick_cfg(6);
    let dir = fresh_dir("spike");
    let res = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 2, keep_last_k: 2 },
        anomaly: AnomalyPolicy { warmup_steps: 2, max_consecutive: 2, ..AnomalyPolicy::default() },
        // Two consecutive spiked steps: the first is skipped, the
        // second escalates to a rollback.
        inject: FaultInjection { spike_loss_steps: vec![6, 7], ..FaultInjection::default() },
        ..TrainResilience::default()
    };
    let mut m = model(7);
    let r = train_adtd_resumable(&mut m, &inputs, &cfg, &res).unwrap();
    assert!(!r.halted);
    assert_eq!(r.health.loss_spikes, 2);
    assert_eq!(r.health.rollbacks, 1);
    assert!(
        r.health.final_lr < cfg.lr,
        "rollback must back off the LR: {} vs {}",
        r.health.final_lr,
        cfg.lr
    );
    // The replayed steps complete cleanly (each injected fault fires
    // once), so the run still applies its full schedule.
    assert_eq!(r.health.steps_applied, 12);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_quarantined_and_resume_stays_identical() {
    let inputs = toy_inputs(8);
    let cfg = quick_cfg(6);

    let mut a = model(42);
    let ra = train_adtd_resumable(&mut a, &inputs, &cfg, &TrainResilience::default()).unwrap();

    let dir = fresh_dir("quarantine");
    let res = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 2, keep_last_k: 2 },
        halt_after_steps: Some(7),
        ..TrainResilience::default()
    };
    let mut b = model(42);
    let rb = train_adtd_resumable(&mut b, &inputs, &cfg, &res).unwrap();
    assert!(rb.halted);

    // Flip one bit in the newest checkpoint file before resuming.
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == FILE_EXT))
        .collect();
    files.sort();
    let newest = files.last().expect("checkpoints exist").clone();
    let mut bytes = fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&newest, &bytes).unwrap();

    let res2 = TrainResilience { halt_after_steps: None, ..res };
    let mut b2 = model(42);
    let rb2 = train_adtd_resumable(&mut b2, &inputs, &cfg, &res2).unwrap();
    assert_eq!(rb2.health.checkpoints_quarantined, 1);
    assert_eq!(rb2.health.resumed_from_step, Some(4), "fell back past the damaged step-6 file");
    assert!(!newest.exists(), "damaged file moved out of the live set");

    // Replaying from the older checkpoint still lands on the same bits.
    assert_eq!(loss_bits(&ra.step_losses), loss_bits(&rb2.step_losses));
    assert_eq!(param_bits(&a.store), param_bits(&b2.store));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn pretraining_kill_and_resume_is_bit_identical() {
    let tok = tokenizer();
    let cfg = ModelConfig::tiny();
    let seqs = sequences_from_inputs(&tok, cfg.budget, &toy_inputs(12));
    // A high mask rate keeps every batch non-empty on these short toy
    // sequences, so each step really exercises the optimizer path.
    let pcfg = PretrainConfig { epochs: 4, lr: 3e-3, mask_prob: 0.4, ..PretrainConfig::default() };

    let (store_a, ra) =
        pretrain_encoder_resumable(&cfg, &tok, &seqs, &pcfg, &TrainResilience::default()).unwrap();
    assert!(!ra.halted);

    let dir = fresh_dir("pretrain");
    let res = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 2, keep_last_k: 2 },
        halt_after_steps: Some(5),
        ..TrainResilience::default()
    };
    let (_, rb) = pretrain_encoder_resumable(&cfg, &tok, &seqs, &pcfg, &res).unwrap();
    assert!(rb.halted);
    let res2 = TrainResilience { halt_after_steps: None, ..res };
    let (store_b, rb2) = pretrain_encoder_resumable(&cfg, &tok, &seqs, &pcfg, &res2).unwrap();
    assert!(!rb2.halted);
    assert!(rb2.health.resumed_from_step.is_some());

    assert_eq!(loss_bits(&ra.step_losses), loss_bits(&rb2.step_losses));
    assert_eq!(param_bits(&store_a), param_bits(&store_b));
    let _ = fs::remove_dir_all(&dir);
}

/// Release-mode scenario: a longer run killed twice at different
/// points, resumed each time from disk, must match the uninterrupted
/// run bit for bit and still learn the task.
#[test]
#[ignore = "release-mode crash/resume scenario; run via `make train-resume` or CI"]
fn release_double_kill_resume_scenario() {
    let inputs = toy_inputs(32);
    let cfg = quick_cfg(10); // 8 steps/epoch => 80 steps

    let mut a = model(17);
    let ra = train_adtd_resumable(&mut a, &inputs, &cfg, &TrainResilience::default()).unwrap();
    assert!(ra.report.improved(), "losses: {:?}", ra.report.epoch_losses);

    let dir = fresh_dir("release");
    let base = TrainResilience {
        dir: Some(dir.clone()),
        policy: CheckpointPolicy { every_n_steps: 5, keep_last_k: 3 },
        ..TrainResilience::default()
    };
    for halt in [Some(30), Some(55), None] {
        let res = TrainResilience { halt_after_steps: halt, ..base.clone() };
        let mut b = model(17);
        let rb = train_adtd_resumable(&mut b, &inputs, &cfg, &res).unwrap();
        assert_eq!(rb.halted, halt.is_some());
        if halt.is_none() {
            assert_eq!(loss_bits(&ra.step_losses), loss_bits(&rb.step_losses));
            assert_eq!(param_bits(&a.store), param_bits(&b.store));
            assert_eq!(rb.health.steps_applied, 80);
        }
    }
    let _ = fs::remove_dir_all(&dir);
}
