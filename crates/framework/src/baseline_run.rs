//! End-to-end runners for the TURL / Doduo baseline analogs.
//!
//! Baselines process tables sequentially (the paper notes existing work
//! runs in sequential mode, §5) and must scan **every** column's content
//! before predicting — the 100% scanned ratio of Fig. 5. The `with_content
//! = false` mode reproduces Table 4's strict-privacy setting: content is
//! replaced by emptiness at inference time while the model itself was
//! trained with content.

use crate::report::{DetectionReport, TableResult};
use std::sync::Arc;
use std::time::Instant;
use taste_core::{LabelSet, Result, TableId, TypeId};
use taste_db::{Database, ScanMethod};
use taste_model::prepare::build_chunks;
use taste_model::SingleTower;
use taste_tokenizer::ColumnContent;

/// Configuration for a baseline run.
#[derive(Debug, Clone, Copy)]
pub struct BaselineRunConfig {
    /// Rows retrieved per scan (`m`).
    pub m: usize,
    /// Non-empty cells kept per column (`n`).
    pub n: usize,
    /// Column split threshold (`l`).
    pub l: usize,
    /// Admission threshold on output probabilities.
    pub threshold: f32,
    /// Whether content is fetched (false = Table 4 "w/o content").
    pub with_content: bool,
    /// Whether histogram features are consumed.
    pub use_histograms: bool,
}

impl Default for BaselineRunConfig {
    fn default() -> Self {
        BaselineRunConfig {
            m: 50,
            n: 10,
            l: 20,
            threshold: 0.5,
            with_content: true,
            use_histograms: false,
        }
    }
}

/// Runs a baseline end-to-end over a batch of tables.
pub fn run_baseline(
    model: &SingleTower,
    db: &Arc<Database>,
    tables: &[TableId],
    cfg: &BaselineRunConfig,
) -> Result<DetectionReport> {
    let ledger_before = db.ledger().snapshot();
    let t0 = Instant::now();
    let conn = db.connect();
    let mut results = Vec::with_capacity(tables.len());
    let mut total_columns = 0u64;
    for &tid in tables {
        let t_table = Instant::now();
        let meta = conn.fetch_table_meta(tid)?;
        let columns = conn.fetch_columns_meta(tid)?;
        let ncols = columns.len();
        total_columns += ncols as u64;
        // Content: baselines scan every column.
        let selected: Vec<ColumnContent> = if cfg.with_content && ncols > 0 {
            let ordinals: Vec<u16> = (0..ncols as u16).collect();
            let rows = conn.scan_columns(tid, &ordinals, ScanMethod::FirstM { m: cfg.m })?;
            let mut selected = vec![ColumnContent::default(); ncols];
            for row in &rows {
                for (k, cell) in row.iter().enumerate() {
                    if selected[k].cells.len() < cfg.n && !cell.is_empty() {
                        selected[k].cells.push(cell.render());
                    }
                }
            }
            selected
        } else {
            vec![ColumnContent::default(); ncols]
        };

        let chunks = build_chunks(&meta, &columns, cfg.l, cfg.use_histograms);
        let mut admitted = Vec::with_capacity(ncols);
        for chunk in &chunks {
            let contents: Vec<ColumnContent> = chunk
                .ordinals
                .iter()
                .map(|&o| selected[o as usize].clone())
                .collect();
            let probs = model.predict(chunk, &contents);
            for row in probs {
                admitted.push(LabelSet::from_iter(
                    row.iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= cfg.threshold)
                        .map(|(s, _)| TypeId(s as u32)),
                ));
            }
        }
        results.push(TableResult {
            table: tid,
            admitted,
            uncertain_columns: 0,
            outcome: Default::default(),
            resilience: Default::default(),
            latency: t_table.elapsed(),
            model_version: 0,
        });
    }
    let wall_time = t0.elapsed();
    let ledger = db.ledger().snapshot().since(&ledger_before);
    Ok(DetectionReport {
        approach: model.kind.label().to_owned(),
        tables: results,
        wall_time,
        ledger,
        total_columns,
        cache_hits: 0,
        cache_misses: 0,
        breaker_trips: 0,
        breaker_transitions: Vec::new(),
        replayed_tables: 0,
        journal_corrupt_records: 0,
        journal_torn_tail: false,
        cache_corrupt_entries: 0,
        overload: Default::default(),
        batching: Default::default(),
        rollout: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{Cell, ColumnId, ColumnMeta, RawType, Table, TableMeta};
    use taste_db::LatencyProfile;
    use taste_model::{BaselineKind, ModelConfig};
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["users", "city", "text", "alpha"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn fixture_db() -> (Arc<Database>, Vec<TableId>) {
        let db = Database::new("d", LatencyProfile::zero());
        let mut ids = Vec::new();
        for i in 0..3 {
            let tid = TableId(0);
            let columns: Vec<ColumnMeta> = (0..3)
                .map(|j| ColumnMeta {
                    id: ColumnId::new(tid, j as u16),
                    name: format!("city{j}"),
                    comment: None,
                    raw_type: RawType::Text,
                    nullable: false,
                    stats: Default::default(),
                    histogram: None,
                })
                .collect();
            let rows = (0..10)
                .map(|r| (0..3).map(|c| Cell::Text(format!("alpha{}", r + c + i))).collect())
                .collect();
            let t = Table {
                meta: TableMeta { id: tid, name: format!("users_{i}"), comment: None, row_count: 10 },
                columns,
                rows,
                labels: vec![LabelSet::empty(); 3],
            };
            ids.push(db.create_table(&t).unwrap());
        }
        (db, ids)
    }

    #[test]
    fn baseline_scans_every_column() {
        let (db, ids) = fixture_db();
        for kind in [BaselineKind::Turl, BaselineKind::Doduo] {
            db.ledger().reset();
            let model = SingleTower::new(kind, &ModelConfig::tiny(), tokenizer(), 4, 0);
            let report = run_baseline(&model, &db, &ids, &BaselineRunConfig::default()).unwrap();
            assert_eq!(report.total_columns, 9);
            assert_eq!(report.ledger.columns_scanned, 9, "{kind:?} must scan 100%");
            assert!((report.scanned_ratio() - 1.0).abs() < 1e-12);
            assert_eq!(report.tables.len(), 3);
            assert!(report.tables.iter().all(|t| t.admitted.len() == 3));
        }
    }

    #[test]
    fn without_content_scans_nothing() {
        let (db, ids) = fixture_db();
        let model = SingleTower::new(BaselineKind::Turl, &ModelConfig::tiny(), tokenizer(), 4, 0);
        let cfg = BaselineRunConfig { with_content: false, ..Default::default() };
        let report = run_baseline(&model, &db, &ids, &cfg).unwrap();
        assert_eq!(report.ledger.columns_scanned, 0);
        assert_eq!(report.scanned_ratio(), 0.0);
        assert_eq!(report.tables.len(), 3);
    }

    #[test]
    fn approach_label_matches_kind() {
        let (db, ids) = fixture_db();
        let model = SingleTower::new(BaselineKind::Doduo, &ModelConfig::tiny(), tokenizer(), 4, 0);
        let report = run_baseline(&model, &db, &ids, &BaselineRunConfig::default()).unwrap();
        assert_eq!(report.approach, "Doduo");
    }
}
