//! A traditional rule-based detector — the pre-DL approach the paper's
//! related work surveys (§7): commercial tools like Alteryx Trifacta
//! recognize a small set of types with regular expressions and
//! dictionaries over column content.
//!
//! Included as an additional comparison point: it is fast and simple,
//! needs no training, but (a) must scan content for *every* column, and
//! (b) covers only types whose values follow a checkable syntax —
//! exactly the limitations §7 attributes to this family. The rule set
//! below covers the built-in catalog's syntactic types; names, titles,
//! and free-text types are out of its reach by construction.

use crate::custom_types::Validator;
use crate::report::{DetectionReport, TableResult};
use rustc_hash::FxHashSet;
use std::sync::Arc;
use taste_core::{LabelSet, Result, TableId, TypeRegistry};
use taste_db::{Database, ScanMethod};

/// One detection rule: a type name in the registry plus a validator and
/// the fraction of sampled values that must satisfy it.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Dotted semantic type name this rule detects.
    pub type_name: String,
    /// Value validator.
    pub validator: Validator,
    /// Minimum matching fraction of non-empty sampled values.
    pub min_match_frac: f64,
}

/// A rule-based detector over a type registry.
pub struct RuleBaseline {
    rules: Vec<Rule>,
}

fn dict(words: &[&str]) -> Validator {
    Validator::Dictionary(words.iter().map(|w| w.to_ascii_lowercase()).collect::<FxHashSet<_>>())
}

impl RuleBaseline {
    /// Builds an empty detector.
    pub fn new() -> RuleBaseline {
        RuleBaseline { rules: Vec::new() }
    }

    /// Adds a rule.
    pub fn rule(mut self, type_name: &str, validator: Validator, min_match_frac: f64) -> RuleBaseline {
        self.rules.push(Rule {
            type_name: type_name.to_owned(),
            validator,
            min_match_frac,
        });
        self
    }

    /// The Trifacta-flavored default rule set over the built-in catalog:
    /// every type whose values have a checkable syntax or a closed
    /// vocabulary.
    pub fn builtin() -> RuleBaseline {
        RuleBaseline::new()
            .rule("finance.credit_card_number", Validator::Luhn, 0.9)
            .rule("person.phone_number", Validator::Pattern("1##########".into()), 0.9)
            .rule("person.ssn", Validator::Pattern("###-##-####".into()), 0.9)
            .rule("location.zip_code", Validator::Pattern("#####".into()), 0.9)
            .rule("person.email", Validator::Pattern("@+.@+@@+.@+".into()), 0.8)
            .rule("web.ip_address", Validator::Pattern("#+.#+.#+.#+".into()), 0.9)
            .rule("misc.isbn", Validator::Pattern("978-#-###-#####-#".into()), 0.9)
            .rule("web.url", Validator::Pattern("https://@+.@+/@+".into()), 0.8)
            .rule("finance.iban", Validator::Pattern("@@####################".into()), 0.9)
            .rule("time.date", Validator::Pattern("####-##-##".into()), 0.9)
            .rule(
                "time.timestamp",
                Validator::Pattern("####-##-## ##:##:##".into()),
                0.9,
            )
            .rule("web.uuid", Validator::Pattern("?+-?+-?+-?+-?+".into()), 0.9)
            .rule("time.weekday", dict(taste_data::values::WEEKDAYS), 0.9)
            .rule("time.month", dict(taste_data::values::MONTHS), 0.9)
            .rule("finance.currency_code", dict(taste_data::values::CURRENCY_CODES), 0.9)
            .rule("location.city", dict(taste_data::values::CITIES), 0.9)
            .rule("location.country", dict(taste_data::values::COUNTRIES), 0.9)
            .rule("product.color", dict(taste_data::values::COLORS), 0.9)
            .rule("culture.language", dict(taste_data::values::LANGUAGES), 0.9)
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Detects types for one column's sampled values.
    pub fn detect(&self, registry: &TypeRegistry, values: &[String]) -> LabelSet {
        let non_empty: Vec<&String> = values.iter().filter(|v| !v.is_empty()).collect();
        if non_empty.is_empty() {
            return LabelSet::empty();
        }
        LabelSet::from_iter(self.rules.iter().filter_map(|r| {
            let id = registry.by_name(&r.type_name)?;
            let hits = non_empty.iter().filter(|v| r.validator.matches(v)).count();
            (hits as f64 / non_empty.len() as f64 >= r.min_match_frac).then_some(id)
        }))
    }

    /// End-to-end run over a batch of tables: scans every column (rule
    /// systems have no metadata path), applies the rules, and reports
    /// with the same [`DetectionReport`] shape as every other approach.
    pub fn run(
        &self,
        registry: &TypeRegistry,
        db: &Arc<Database>,
        tables: &[TableId],
        m: usize,
        n: usize,
    ) -> Result<DetectionReport> {
        let ledger_before = db.ledger().snapshot();
        let t0 = std::time::Instant::now();
        let conn = db.connect();
        let mut results = Vec::with_capacity(tables.len());
        let mut total_columns = 0u64;
        for &tid in tables {
            let t_table = std::time::Instant::now();
            let columns = conn.fetch_columns_meta(tid)?;
            let ncols = columns.len();
            total_columns += ncols as u64;
            let ordinals: Vec<u16> = (0..ncols as u16).collect();
            let rows = conn.scan_columns(tid, &ordinals, ScanMethod::FirstM { m })?;
            let mut admitted = Vec::with_capacity(ncols);
            for j in 0..ncols {
                let values: Vec<String> = rows
                    .iter()
                    .filter_map(|r| {
                        let cell = &r[j];
                        (!cell.is_empty()).then(|| cell.render())
                    })
                    .take(n)
                    .collect();
                admitted.push(self.detect(registry, &values));
            }
            results.push(TableResult {
                table: tid,
                admitted,
                uncertain_columns: 0,
                outcome: Default::default(),
                resilience: Default::default(),
                latency: t_table.elapsed(),
                model_version: 0,
            });
        }
        Ok(DetectionReport {
            approach: "Rules".into(),
            tables: results,
            wall_time: t0.elapsed(),
            ledger: db.ledger().snapshot().since(&ledger_before),
            total_columns,
            cache_hits: 0,
            cache_misses: 0,
            breaker_trips: 0,
            breaker_transitions: Vec::new(),
            replayed_tables: 0,
            journal_corrupt_records: 0,
            journal_torn_tail: false,
            cache_corrupt_entries: 0,
            overload: Default::default(),
            batching: Default::default(),
            rollout: Default::default(),
        })
    }
}

impl Default for RuleBaseline {
    fn default() -> Self {
        RuleBaseline::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_data::corpus::{Corpus, CorpusSpec};
    use taste_data::load::load_split;
    use taste_data::splits::Split;
    use taste_db::LatencyProfile;
    use taste_framework_test_helpers::*;

    mod taste_framework_test_helpers {
        pub use crate::report::evaluate_report;
    }

    #[test]
    fn builtin_rules_resolve_against_the_catalog() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(5, 0));
        let registry = corpus.builtin.registry();
        let rules = RuleBaseline::builtin();
        assert!(rules.len() >= 15);
        for r in &rules.rules {
            assert!(
                registry.by_name(&r.type_name).is_some(),
                "rule for unknown type {}",
                r.type_name
            );
        }
    }

    #[test]
    fn detects_syntactic_types_from_values() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(5, 0));
        let registry = corpus.builtin.registry();
        let rules = RuleBaseline::builtin();
        let ssn = registry.by_name("person.ssn").unwrap();
        let values: Vec<String> = vec!["123-45-6789".into(), "987-65-4321".into()];
        let detected = rules.detect(registry, &values);
        assert!(detected.contains(ssn));

        let city = registry.by_name("location.city").unwrap();
        let values: Vec<String> = vec!["shenzhen".into(), "london".into(), "tokyo".into()];
        assert!(rules.detect(registry, &values).contains(city));

        // Free-text values match nothing.
        let values: Vec<String> = vec!["some random sentence".into()];
        assert!(rules.detect(registry, &values).is_empty());
    }

    #[test]
    fn end_to_end_run_scans_everything_and_gets_partial_recall() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(80, 4));
        let loaded = load_split(&corpus, Split::Test, LatencyProfile::zero(), None).unwrap();
        let rules = RuleBaseline::builtin();
        let report = rules
            .run(corpus.builtin.registry(), &loaded.db, &loaded.db.table_ids(), 20, 10)
            .unwrap();
        assert!((report.scanned_ratio() - 1.0).abs() < 1e-9, "rules must scan 100%");
        let scores = evaluate_report(&report, &loaded.truth, loaded.ntypes);
        // Rules cover only the syntactic third of the catalog, so on a
        // fully-labeled corpus most columns get an (incorrect) empty
        // prediction — each a background false positive. Overall scores
        // are therefore low (the §7 critique in numbers)...
        assert!(scores.recall > 0.05 && scores.recall < 0.7, "recall {}", scores.recall);
        assert!(scores.f1 < 0.7, "rules must not rival DL approaches: {}", scores.f1);
        // ...but the detections the rules *do* make are precise: score
        // only the columns where a rule fired.
        let mut acc = taste_core::EvalAccumulator::new(loaded.ntypes);
        for tr in &report.tables {
            for (pred, truth) in tr.admitted.iter().zip(&loaded.truth[tr.table.0 as usize]) {
                if !pred.is_empty() {
                    acc.observe(pred, truth);
                }
            }
        }
        let fired = acc.scores();
        assert!(fired.precision > 0.8, "fired-rule precision {}", fired.precision);
    }

    #[test]
    fn empty_ruleset_detects_nothing() {
        let corpus = Corpus::generate(CorpusSpec::synth_wiki(3, 0));
        let rules = RuleBaseline::new();
        assert!(rules.is_empty());
        let values: Vec<String> = vec!["123-45-6789".into()];
        assert!(rules.detect(corpus.builtin.registry(), &values).is_empty());
    }
}
