//! Cooperative cancellation and the stage watchdog.
//!
//! The Algorithm 1 scheduler must never let one wedged table hold a
//! worker hostage. Every table gets a [`CancelToken`]; a monitor thread
//! ([`Watchdog`]) tracks how long each in-flight stage has been running
//! and flips the token of any table whose stage exceeds its deadline
//! (reason [`CancelReason::StageTimeout`]) or whose batch exceeded its
//! overall deadline ([`CancelReason::BatchTimeout`]). Stages observe the
//! token at stage boundaries and inside row-scan loops, so a cancelled
//! stage unwinds at its next check — cleanly, with the table reported as
//! `TimedOut`/`Cancelled` and the rest of the batch unaffected.
//!
//! Cancellation is *edge-triggered and sticky*: the first reason to land
//! wins, later ones are ignored, and a token never un-cancels. A stage
//! racing the watchdog may finish its work after the flip; the table is
//! still reported as timed out — the deadline had passed.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{Result, TasteError};

/// A lost-wakeup-safe event for the scheduler thread: waiters snapshot
/// the generation, do a scheduling pass, and only block if the
/// generation has not moved since the snapshot. Workers, the watchdog,
/// and `finalize_table` notify it whenever progress may have been made
/// (a job finished, a token flipped, a table was halted), so the
/// scheduler never needs to poll on a fixed sleep.
#[derive(Default)]
pub struct Wakeup {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl std::fmt::Debug for Wakeup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wakeup").field("gen", &*self.gen.lock()).finish()
    }
}

impl Wakeup {
    /// A fresh event at generation zero.
    pub fn new() -> Wakeup {
        Wakeup::default()
    }

    /// The current generation; pass it to [`Wakeup::wait_past`].
    pub fn gen(&self) -> u64 {
        *self.gen.lock()
    }

    /// Signals that progress may have been made, waking all waiters.
    pub fn notify(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_all();
    }

    /// Blocks until the generation moves past `seen` or `timeout`
    /// elapses, whichever is first. Returns immediately if a notify
    /// already landed after `seen` was snapshotted.
    pub fn wait_past(&self, seen: u64, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut gen = self.gen.lock();
        while *gen == seen {
            if self.cv.wait_until(&mut gen, deadline).timed_out() {
                return;
            }
        }
    }
}

/// Why a [`CancelToken`] was flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// One stage of the table exceeded the per-stage watchdog deadline.
    StageTimeout,
    /// The whole batch exceeded its deadline.
    BatchTimeout,
    /// The batch was halted deliberately (crash simulation / shutdown).
    Halted,
    /// The table blew through its per-table admission deadline (overload
    /// control): finishing it late is worth less than the capacity it
    /// would consume.
    DeadlineExceeded,
}

const LIVE: u8 = 0;

impl CancelReason {
    fn code(self) -> u8 {
        match self {
            CancelReason::StageTimeout => 1,
            CancelReason::BatchTimeout => 2,
            CancelReason::Halted => 3,
            CancelReason::DeadlineExceeded => 4,
        }
    }

    fn from_code(code: u8) -> Option<CancelReason> {
        match code {
            1 => Some(CancelReason::StageTimeout),
            2 => Some(CancelReason::BatchTimeout),
            3 => Some(CancelReason::Halted),
            4 => Some(CancelReason::DeadlineExceeded),
            _ => None,
        }
    }
}

/// A sticky, cloneable cancellation flag checked cooperatively by stage
/// code. Cloning shares the flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU8>,
}

impl CancelToken {
    /// A live (uncancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Flips the token. The first reason to land is kept; subsequent
    /// cancellations are no-ops. Returns whether this call was the one
    /// that flipped the token — callers use the edge to notify waiters.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        self.flag
            .compare_exchange(LIVE, reason.code(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Whether the token has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) != LIVE
    }

    /// The first cancellation reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.flag.load(Ordering::Acquire))
    }

    /// Cooperative check: `Ok(())` while live, `TasteError::Cancelled`
    /// naming `at` once cancelled.
    pub fn check(&self, at: &str) -> Result<()> {
        match self.reason() {
            None => Ok(()),
            Some(reason) => Err(TasteError::cancelled(format!("{at}: {reason:?}"))),
        }
    }
}

/// Per-table in-flight stage clocks, shared between the workers (who
/// punch in and out) and the watchdog thread (who reads them).
#[derive(Debug)]
pub struct StageClocks {
    slots: Vec<Mutex<Option<Instant>>>,
}

impl StageClocks {
    /// Clocks for `n` tables, all idle.
    pub fn new(n: usize) -> StageClocks {
        StageClocks { slots: (0..n).map(|_| Mutex::new(None)).collect() }
    }

    /// Marks table `t`'s next stage as started now.
    pub fn start(&self, t: usize) {
        *self.slots[t].lock() = Some(Instant::now());
    }

    /// Marks table `t` as having no stage in flight.
    pub fn finish(&self, t: usize) {
        *self.slots[t].lock() = None;
    }

    /// How long table `t`'s in-flight stage has been running, if any.
    fn elapsed(&self, t: usize) -> Option<Duration> {
        self.slots[t].lock().map(|started| started.elapsed())
    }
}

/// Per-table absolute completion deadlines stamped at admission by the
/// overload controller and enforced by the watchdog thread.
///
/// A slot stays `None` until its table is admitted (unadmitted tables
/// have no deadline to miss) and is cleared when the table finishes.
#[derive(Debug)]
pub struct TableDeadlines {
    slots: Vec<Mutex<Option<Instant>>>,
}

impl TableDeadlines {
    /// Deadline slots for `n` tables, all unset.
    pub fn new(n: usize) -> TableDeadlines {
        TableDeadlines { slots: (0..n).map(|_| Mutex::new(None)).collect() }
    }

    /// Stamps table `t`'s absolute completion deadline (at admission).
    pub fn set(&self, t: usize, deadline: Instant) {
        *self.slots[t].lock() = Some(deadline);
    }

    /// Clears table `t`'s deadline (the table finished).
    pub fn clear(&self, t: usize) {
        *self.slots[t].lock() = None;
    }

    /// Table `t`'s deadline, if stamped.
    pub fn get(&self, t: usize) -> Option<Instant> {
        *self.slots[t].lock()
    }
}

/// The monitor thread enforcing stage and batch deadlines.
///
/// Dropping (or [`stop`](Watchdog::stop)-ping) the watchdog joins the
/// thread; it never outlives the batch that spawned it.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a watchdog polling `clocks` every `poll`, cancelling a
    /// table's token after `stage_deadline` of one in-flight stage,
    /// every token after `batch_deadline` of total batch runtime, and —
    /// when `deadlines` is given — any table past its stamped per-table
    /// admission deadline ([`CancelReason::DeadlineExceeded`]). When a
    /// `wake` event is given, it is notified whenever any token newly
    /// flips, so the scheduler re-plans without polling.
    pub fn spawn(
        stage_deadline: Option<Duration>,
        batch_deadline: Option<Duration>,
        poll: Duration,
        clocks: Arc<StageClocks>,
        tokens: Vec<CancelToken>,
        deadlines: Option<Arc<TableDeadlines>>,
        wake: Option<Arc<Wakeup>>,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let batch_start = Instant::now();
        let handle = std::thread::spawn(move || {
            let notify_if = |flipped: bool| {
                if flipped {
                    if let Some(wake) = &wake {
                        wake.notify();
                    }
                }
            };
            while !stop_flag.load(Ordering::Acquire) {
                if let Some(batch_dl) = batch_deadline {
                    if batch_start.elapsed() >= batch_dl {
                        for token in &tokens {
                            notify_if(token.cancel(CancelReason::BatchTimeout));
                        }
                        return;
                    }
                }
                if let Some(stage_dl) = stage_deadline {
                    for (t, token) in tokens.iter().enumerate() {
                        if let Some(elapsed) = clocks.elapsed(t) {
                            if elapsed >= stage_dl {
                                notify_if(token.cancel(CancelReason::StageTimeout));
                            }
                        }
                    }
                }
                if let Some(deadlines) = &deadlines {
                    let now = Instant::now();
                    for (t, token) in tokens.iter().enumerate() {
                        if matches!(deadlines.get(t), Some(d) if now >= d) {
                            notify_if(token.cancel(CancelReason::DeadlineExceeded));
                        }
                    }
                }
                std::thread::sleep(poll);
            }
        });
        Watchdog { stop, handle: Some(handle) }
    }

    /// Stops and joins the monitor thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_sticky_and_first_reason_wins() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.check("stage").is_ok());
        assert!(token.cancel(CancelReason::StageTimeout), "first cancel flips");
        assert!(!token.cancel(CancelReason::BatchTimeout), "second cancel is a no-op");
        assert!(token.is_cancelled());
        assert_eq!(token.reason(), Some(CancelReason::StageTimeout));
        let err = token.check("P2Prep row loop").unwrap_err();
        assert!(matches!(err, TasteError::Cancelled(_)), "{err:?}");
        assert!(!err.is_retryable());
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel(CancelReason::Halted);
        assert_eq!(a.reason(), Some(CancelReason::Halted));
    }

    #[test]
    fn watchdog_cancels_stage_past_deadline() {
        let clocks = Arc::new(StageClocks::new(2));
        let tokens = vec![CancelToken::new(), CancelToken::new()];
        let dog = Watchdog::spawn(
            Some(Duration::from_millis(10)),
            None,
            Duration::from_millis(1),
            Arc::clone(&clocks),
            tokens.clone(),
            None,
            None,
        );
        clocks.start(0); // table 0 wedges; table 1 never starts a stage
        let deadline = Instant::now() + Duration::from_secs(5);
        while !tokens[0].is_cancelled() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        dog.stop();
        assert_eq!(tokens[0].reason(), Some(CancelReason::StageTimeout));
        assert!(!tokens[1].is_cancelled(), "idle table must not be cancelled");
    }

    #[test]
    fn watchdog_batch_deadline_cancels_everything() {
        let clocks = Arc::new(StageClocks::new(3));
        let tokens = vec![CancelToken::new(), CancelToken::new(), CancelToken::new()];
        let dog = Watchdog::spawn(
            None,
            Some(Duration::from_millis(5)),
            Duration::from_millis(1),
            Arc::clone(&clocks),
            tokens.clone(),
            None,
            None,
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while tokens.iter().any(|t| !t.is_cancelled()) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        dog.stop();
        for token in &tokens {
            assert_eq!(token.reason(), Some(CancelReason::BatchTimeout));
        }
    }

    #[test]
    fn finished_stage_is_not_timed_out() {
        let clocks = Arc::new(StageClocks::new(1));
        let tokens = vec![CancelToken::new()];
        clocks.start(0);
        clocks.finish(0);
        let dog = Watchdog::spawn(
            Some(Duration::from_millis(2)),
            None,
            Duration::from_millis(1),
            Arc::clone(&clocks),
            tokens.clone(),
            None,
            None,
        );
        std::thread::sleep(Duration::from_millis(20));
        dog.stop();
        assert!(!tokens[0].is_cancelled());
    }

    #[test]
    fn per_table_deadline_cancels_only_the_late_table() {
        let clocks = Arc::new(StageClocks::new(2));
        let tokens = vec![CancelToken::new(), CancelToken::new()];
        let deadlines = Arc::new(TableDeadlines::new(2));
        // Table 0's deadline is already in the past; table 1 has none.
        deadlines.set(0, Instant::now() - Duration::from_millis(1));
        let dog = Watchdog::spawn(
            None,
            None,
            Duration::from_millis(1),
            Arc::clone(&clocks),
            tokens.clone(),
            Some(Arc::clone(&deadlines)),
            None,
        );
        let wait = Instant::now() + Duration::from_secs(5);
        while !tokens[0].is_cancelled() && Instant::now() < wait {
            std::thread::sleep(Duration::from_millis(2));
        }
        dog.stop();
        assert_eq!(tokens[0].reason(), Some(CancelReason::DeadlineExceeded));
        assert!(!tokens[1].is_cancelled(), "deadline-free table must stay live");
        // A cleared deadline stops mattering.
        deadlines.clear(0);
        assert_eq!(deadlines.get(0), None);
    }

    #[test]
    fn wakeup_notify_before_wait_is_not_lost() {
        let w = Wakeup::new();
        let seen = w.gen();
        w.notify();
        // A notify that lands between snapshot and wait returns at once
        // (well before the generous timeout).
        let t0 = Instant::now();
        w.wait_past(seen, Duration::from_secs(5));
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_ne!(w.gen(), seen);
    }

    #[test]
    fn wakeup_wait_times_out_without_notify() {
        let w = Wakeup::new();
        let seen = w.gen();
        let t0 = Instant::now();
        w.wait_past(seen, Duration::from_millis(5));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        assert_eq!(w.gen(), seen);
    }

    #[test]
    fn wakeup_crosses_threads() {
        let w = Arc::new(Wakeup::new());
        let seen = w.gen();
        let notifier = Arc::clone(&w);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            notifier.notify();
        });
        w.wait_past(seen, Duration::from_secs(5));
        handle.join().unwrap();
        assert_ne!(w.gen(), seen);
    }

    #[test]
    fn watchdog_notifies_wakeup_on_cancel() {
        let clocks = Arc::new(StageClocks::new(1));
        let tokens = vec![CancelToken::new()];
        let wake = Arc::new(Wakeup::new());
        let seen = wake.gen();
        clocks.start(0);
        let dog = Watchdog::spawn(
            Some(Duration::from_millis(2)),
            None,
            Duration::from_millis(1),
            Arc::clone(&clocks),
            tokens.clone(),
            None,
            Some(Arc::clone(&wake)),
        );
        wake.wait_past(seen, Duration::from_secs(5));
        dog.stop();
        assert!(tokens[0].is_cancelled());
        assert_ne!(wake.gen(), seen);
    }

    #[test]
    fn deadline_reason_roundtrips_through_code() {
        let token = CancelToken::new();
        token.cancel(CancelReason::DeadlineExceeded);
        assert_eq!(token.reason(), Some(CancelReason::DeadlineExceeded));
        let err = token.check("P2Prep").unwrap_err();
        assert!(matches!(err, TasteError::Cancelled(_)));
    }
}
