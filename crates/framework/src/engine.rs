//! The batch detection engine: sequential mode and the Algorithm 1
//! pipelined scheduler (§5), hardened for crash-safe detection runs.
//!
//! Pipelined mode builds two worker pools — `TP1` for data-preparation
//! stages (each worker owns one reused database connection, per the
//! paper's batching guidance) and `TP2` for inference stages — plus a
//! stage queue holding the four stages of every table in order. Every
//! worker also owns a long-lived [`Inferencer`] (see
//! [`crate::config::ExecutionConfig`]), so tape-free inference reuses one
//! arena of scratch buffers across all tables the worker serves. The
//! scheduler repeatedly dispatches the *first eligible* stage of the
//! matching kind to a free worker, where a stage is eligible exactly when
//! all previous stages of its table have finished (Definition 5.1). The
//! per-table stage order is thus preserved while stages of different
//! tables overlap: one table's content scan (I/O sleep) proceeds while
//! another's inference (CPU) runs.
//!
//! With [`crate::config::BatchingConfig`] enabled, the unit of inference
//! becomes a *micro-batch of columns from many tables*: eligible
//! `P1Infer`/`P2Infer` stages are routed through a [`BatchPlanner`]
//! instead of dispatching one table per job, and one TP2 job runs a
//! fused forward pass over every live member, scattering per-table
//! verdicts back under each owner's state lock. Batches flush when the
//! column budget fills, when the oldest member hits the flush deadline,
//! or when the pipeline runs dry — and the batched path is bit-identical
//! to the per-table path (see `crates/framework/tests/`).
//!
//! ```text
//!             TP1 (prep pool)                 TP2 (inference pool)
//!   table A ─ P1Prep ──┐                 ┌────────────────────────┐
//!   table B ─ P1Prep ──┼→ BatchPlanner ─→│ P1Infer  [A ++ B ++ C] │
//!   table C ─ P1Prep ──┘   (size/        └───────────┬────────────┘
//!                           deadline/                ↓ scatter
//!   table A ─ P2Prep ──┐    drain)       ┌────────────────────────┐
//!   table C ─ P2Prep ──┼→ BatchPlanner ─→│ P2Infer  [A ++ C]      │
//!     (B shed: leaves ─┘                 └───────────┬────────────┘
//!      the queue)                                    ↓ per-table verdicts
//! ```
//!
//! Shed, cancelled, and hazard tables never contribute columns to a
//! fused pass: the scheduler removes a shed table's P2 stages from the
//! queue before they reach the planner, and the batched job re-checks
//! every member under its lock at execution time, routing dead members
//! to the per-table no-op path.
//!
//! Every database stage runs under the retry policy of
//! [`crate::retry`]: transient faults are retried with backoff behind a
//! per-database circuit breaker, and — with `retry.degrade` on — a table
//! whose P2 content scan exhausts its budget falls back to its P1
//! metadata-only verdicts instead of failing the batch (a table whose P1
//! fails is reported as failed with empty verdicts). Either way a failing
//! table can never wedge a pool worker or lose its slot in the report.
//!
//! On top of that sits the crash-safety layer:
//!
//! * **Panic isolation** — every stage executes under `catch_unwind`, so
//!   a poisoned table is reported as
//!   [`TableOutcome::Panicked`] while the worker survives and the pools
//!   stay at full strength.
//! * **Watchdog + cooperative cancellation** — with deadlines configured
//!   in [`crate::config::HardeningConfig`], a monitor thread flips a
//!   per-table [`CancelToken`] when a stage (or the batch) overruns;
//!   stages observe the token at boundaries and inside row loops, and an
//!   expired table is reported as [`TableOutcome::TimedOut`] with its P1
//!   verdicts when Phase 1 completed.
//! * **Resumable verdict journal** — [`TasteEngine::detect_batch_journaled`]
//!   appends each table's final verdicts to a checksummed journal as it
//!   finishes; after a crash, [`TasteEngine::resume`] replays the intact
//!   records, re-runs only the unfinished tables, and merges both into
//!   one report.

use crate::batcher::{BatchPhase, BatchPlanner, FlushReason};
use crate::config::TasteConfig;
use crate::journal::{self, JournalRecord, JournalWriter};
use crate::overload::{Admission, LoadController};
use crate::report::{BatchingSummary, DetectionReport, OverloadSummary, ResilienceSummary, TableResult};
use crate::retry::{acquire_with_retry, connect_with_retry, run_with_retry, CircuitBreaker};
use crate::rollout::{CanaryObservation, Pinned, RolloutController};
use crate::stages::{
    infer_phase1, infer_phase1_batched, infer_phase2, infer_phase2_batched, prep_phase1,
    prep_phase2, shed_finals, P1Infer, P1Item, P1Prep, P2Item, P2Prep,
};
use crate::watchdog::{CancelReason, CancelToken, StageClocks, TableDeadlines, Wakeup, Watchdog};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{LabelSet, Result, ShedReason, TableId, TableOutcome, TasteError};
use taste_db::{Connection, ConnectionPool, Database};
use taste_model::registry::VersionedModel;
use taste_model::{Adtd, CacheRestoreStats, Inferencer, LatentCache};

/// The TASTE detection engine: a trained model plus a configuration.
pub struct TasteEngine {
    model: Arc<Adtd>,
    /// The active configuration.
    pub config: TasteConfig,
    cache: Arc<LatentCache>,
    cache_corrupt: AtomicU64,
    /// Present when `config.rollout.enabled`: the hot-reload coordinator
    /// shared between this engine's runs and external publishers.
    rollout: Option<Arc<RolloutController>>,
}

/// Shared per-table pipeline state.
struct TableState {
    tid: TableId,
    // Prep outputs are Arc'd so a batched inference job can lift them
    // out of the lock and run the fused pass without holding any state.
    prep1: Option<Arc<P1Prep>>,
    infer1: Option<P1Infer>,
    prep2: Option<Arc<P2Prep>>,
    finals: Option<Vec<LabelSet>>,
    error: Option<TasteError>,
    outcome: Option<TableOutcome>,
    resilience: ResilienceSummary,
    /// The overload controller's verdict at admission (overload mode).
    admission: Option<Admission>,
    /// When the table was promoted into the in-flight set.
    admitted_at: Option<Instant>,
    /// Absolute completion deadline stamped at admission.
    deadline: Option<Instant>,
    /// End-to-end latency, stamped at finalization.
    latency: Duration,
    /// The model pinned at the table's first inference stage. Every
    /// later stage of the table runs on this `Arc`, so a promotion or
    /// rollback mid-run never tears a table across versions.
    pinned: Option<Pinned>,
}

type Shared = Arc<(Mutex<TableState>, AtomicUsize)>;

/// Everything one batch's stages share: the model artifacts, the fault
/// policy, and the crash-safety plumbing (tokens, clocks, journal).
struct BatchCtx {
    model: Arc<Adtd>,
    cache: Arc<LatentCache>,
    cfg: TasteConfig,
    breaker: Arc<CircuitBreaker>,
    db: Arc<Database>,
    tokens: Vec<CancelToken>,
    clocks: Arc<StageClocks>,
    journal: Option<Mutex<JournalWriter>>,
    finished_final: AtomicUsize,
    /// Present only in pipelined runs with overload control enabled.
    controller: Option<Arc<LoadController>>,
    /// Per-table admission deadlines enforced by the watchdog.
    deadlines: Option<Arc<TableDeadlines>>,
    /// When the batch entered the engine; latency baseline for tables
    /// that never pass through the admission gate.
    batch_start: Instant,
    /// Raised when any table records a batch-failing error, so the
    /// overload scheduler stops waiting on admission slots that will
    /// never free.
    batch_error: AtomicBool,
    /// Progress event: workers notify after every job, the watchdog on
    /// every fresh cancellation, so the scheduler blocks instead of
    /// polling.
    wake: Arc<Wakeup>,
    /// Micro-batching telemetry: live member counts are recorded by the
    /// batched jobs as they execute; the scheduler folds the planner's
    /// flush accounting in when it exits.
    batching: Mutex<BatchingSummary>,
    /// The hot-reload coordinator, when rollout is enabled: tables pin
    /// their serving model through it and canary tables report shadow
    /// scores back to its health gates.
    rollout: Option<Arc<RolloutController>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    P1Prep,
    P1Infer,
    P2Prep,
    P2Infer,
}

impl StageKind {
    const ORDER: [StageKind; 4] = [StageKind::P1Prep, StageKind::P1Infer, StageKind::P2Prep, StageKind::P2Infer];

    fn index(self) -> usize {
        Self::ORDER.iter().position(|&s| s == self).expect("member")
    }

    fn is_prep(self) -> bool {
        matches!(self, StageKind::P1Prep | StageKind::P2Prep)
    }
}

impl TasteEngine {
    /// Builds an engine; validates the configuration. With
    /// `config.rollout.enabled`, the construction-time model becomes the
    /// incumbent at `config.rollout.initial_version` and the engine
    /// exposes a [`RolloutController`] via [`rollout`](Self::rollout)
    /// for publishers to offer candidates through.
    pub fn new(model: Arc<Adtd>, config: TasteConfig) -> Result<TasteEngine> {
        config.validate()?;
        let rollout = config.rollout.enabled.then(|| {
            Arc::new(RolloutController::new(
                VersionedModel {
                    version: config.rollout.initial_version,
                    model: Arc::clone(&model),
                },
                config.rollout,
            ))
        });
        Ok(TasteEngine {
            model,
            config,
            cache: Arc::new(LatentCache::new(512)),
            cache_corrupt: AtomicU64::new(0),
            rollout,
        })
    }

    /// The model in service.
    pub fn model(&self) -> &Arc<Adtd> {
        &self.model
    }

    /// The hot-reload coordinator (present when `config.rollout.enabled`).
    /// Publishers offer candidates through it — directly via
    /// [`RolloutController::offer`] or from disk via
    /// [`RolloutController::adopt_latest`] — while detection runs serve.
    pub fn rollout(&self) -> Option<&Arc<RolloutController>> {
        self.rollout.as_ref()
    }

    /// Detects semantic types for a batch of tables end-to-end,
    /// returning the per-column admitted sets plus the cost telemetry.
    pub fn detect_batch(&self, db: &Arc<Database>, tables: &[TableId]) -> Result<DetectionReport> {
        self.cache.clear();
        self.run(db, tables, None)
    }

    /// Like [`detect_batch`](Self::detect_batch), but appends each
    /// table's final verdicts to a fresh journal at `journal_path` as it
    /// finishes, so a killed run can be picked up by
    /// [`resume`](Self::resume).
    pub fn detect_batch_journaled(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        journal_path: &Path,
    ) -> Result<DetectionReport> {
        self.cache.clear();
        let writer = JournalWriter::create(journal_path)?;
        self.run(db, tables, Some(writer))
    }

    /// Resumes an interrupted journaled run: replays the intact journal
    /// records (quarantining corrupt ones, truncating a torn tail),
    /// re-runs only the tables without a journaled final outcome, and
    /// returns the merged report in the original batch order.
    ///
    /// No table with an intact journal record is processed twice. The
    /// latent cache is deliberately *not* cleared, so entries restored
    /// via [`restore_cache`](Self::restore_cache) carry over.
    pub fn resume(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        journal_path: &Path,
    ) -> Result<DetectionReport> {
        let replayed = journal::replay(journal_path)?;
        let mut done: FxHashMap<TableId, JournalRecord> = FxHashMap::default();
        for rec in replayed.records {
            done.insert(rec.table, rec);
        }
        let todo: Vec<TableId> = tables.iter().copied().filter(|tid| !done.contains_key(tid)).collect();
        let writer = JournalWriter::append_to(journal_path)?;
        let mut report = self.run(db, &todo, Some(writer))?;

        let mut fresh: FxHashMap<TableId, TableResult> =
            report.tables.drain(..).map(|tr| (tr.table, tr)).collect();
        let mut merged = Vec::with_capacity(tables.len());
        let mut replayed_tables = 0u64;
        for tid in tables {
            if let Some(rec) = done.remove(tid) {
                replayed_tables += 1;
                merged.push(rec.into_result());
            } else if let Some(tr) = fresh.remove(tid) {
                merged.push(tr);
            }
        }
        report.total_columns = merged.iter().map(|t| t.admitted.len() as u64).sum();
        report.tables = merged;
        report.replayed_tables = replayed_tables;
        report.journal_corrupt_records = replayed.corrupt_records;
        report.journal_torn_tail = replayed.torn_tail;
        Ok(report)
    }

    /// Persists the latent cache to `path` (checksummed records, atomic
    /// rename); returns how many entries were written.
    pub fn persist_cache(&self, path: &Path) -> Result<usize> {
        self.cache.save(path)
    }

    /// Restores the latent cache from `path`, quarantining entries whose
    /// checksum fails; corrupt-entry counts surface in subsequent
    /// reports' `cache_corrupt_entries`.
    pub fn restore_cache(&self, path: &Path) -> Result<CacheRestoreStats> {
        let stats = self.cache.restore(path)?;
        self.cache_corrupt.fetch_add(stats.corrupt as u64, Ordering::SeqCst);
        Ok(stats)
    }

    /// The shared batch body behind every public entry point.
    fn run(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        journal: Option<JournalWriter>,
    ) -> Result<DetectionReport> {
        let breaker = CircuitBreaker::new(
            self.config.retry.breaker_threshold,
            self.config.retry.breaker_cooldown,
        );
        let ledger_before = db.ledger().snapshot();
        let clocks = Arc::new(StageClocks::new(tables.len()));
        let overload_on = self.config.overload.enabled && self.config.pipelining;
        let controller =
            overload_on.then(|| Arc::new(LoadController::new(self.config.overload, self.config.pool_size)));
        let deadlines = (overload_on && self.config.overload.deadline.is_some())
            .then(|| Arc::new(TableDeadlines::new(tables.len())));
        let wake = Arc::new(Wakeup::new());
        let ctx = Arc::new(BatchCtx {
            model: Arc::clone(&self.model),
            cache: Arc::clone(&self.cache),
            cfg: self.config,
            breaker: Arc::clone(&breaker),
            db: Arc::clone(db),
            tokens: (0..tables.len()).map(|_| CancelToken::new()).collect(),
            clocks: Arc::clone(&clocks),
            journal: journal.map(Mutex::new),
            finished_final: AtomicUsize::new(0),
            controller,
            deadlines: deadlines.clone(),
            batch_start: Instant::now(),
            batch_error: AtomicBool::new(false),
            wake: Arc::clone(&wake),
            batching: Mutex::new(BatchingSummary::default()),
            rollout: self.rollout.clone(),
        });
        let hardening = self.config.hardening;
        let watchdog = (hardening.needs_watchdog() || deadlines.is_some()).then(|| {
            Watchdog::spawn(
                hardening.stage_deadline,
                hardening.batch_deadline,
                hardening.watchdog_poll,
                clocks,
                ctx.tokens.clone(),
                deadlines,
                Some(wake),
            )
        });
        let t0 = Instant::now();
        let run_result = if self.config.pipelining {
            self.run_pipelined(db, tables, &ctx)
        } else {
            self.run_sequential(db, tables, &ctx)
        };
        if let Some(dog) = watchdog {
            dog.stop();
        }
        let states = run_result?;
        let wall_time = t0.elapsed();
        let ledger = db.ledger().snapshot().since(&ledger_before);
        let (cache_hits, cache_misses) = self.cache.stats();

        let mut results = Vec::with_capacity(states.len());
        let mut total_columns = 0u64;
        for state in states {
            let st = Arc::try_unwrap(state)
                .map_err(|_| TasteError::Scheduler("state still shared after completion".into()))?
                .0
                .into_inner();
            if let Some(e) = st.error {
                return Err(e);
            }
            let finals = st
                .finals
                .ok_or_else(|| TasteError::Scheduler(format!("table {} never finished", st.tid.0)))?;
            total_columns += finals.len() as u64;
            let uncertain_columns = st.infer1.as_ref().map_or(0, |i| i.uncertain.len());
            results.push(TableResult {
                table: st.tid,
                admitted: finals,
                uncertain_columns,
                outcome: st.outcome.unwrap_or_default(),
                resilience: st.resilience,
                latency: st.latency,
                model_version: st.pinned.as_ref().map_or(0, |p| p.version),
            });
        }
        let overload = ctx.controller.as_ref().map_or_else(OverloadSummary::default, |c| c.summary());
        let batching = ctx.batching.lock().clone();
        let rollout = ctx.rollout.as_ref().map_or_else(Default::default, |r| r.summary());
        Ok(DetectionReport {
            approach: "TASTE".into(),
            tables: results,
            wall_time,
            ledger,
            total_columns,
            cache_hits,
            cache_misses,
            breaker_trips: breaker.trips(),
            breaker_transitions: breaker.transitions(),
            replayed_tables: 0,
            journal_corrupt_records: 0,
            journal_torn_tail: false,
            cache_corrupt_entries: self.cache_corrupt.load(Ordering::SeqCst),
            overload,
            batching,
            rollout,
        })
    }

    fn new_states(&self, tables: &[TableId]) -> Vec<Shared> {
        tables
            .iter()
            .map(|&tid| {
                Arc::new((
                    Mutex::new(TableState {
                        tid,
                        prep1: None,
                        infer1: None,
                        prep2: None,
                        finals: None,
                        error: None,
                        outcome: None,
                        resilience: ResilienceSummary::default(),
                        admission: None,
                        admitted_at: None,
                        deadline: None,
                        latency: Duration::ZERO,
                        pinned: None,
                    }),
                    AtomicUsize::new(0),
                ))
            })
            .collect()
    }

    /// Sequential mode (*TASTE w/o pipelining*): one connection, tables
    /// processed one after another, stages in order.
    fn run_sequential(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        ctx: &Arc<BatchCtx>,
    ) -> Result<Vec<Shared>> {
        let states = self.new_states(tables);
        let conn = connect_with_retry(db, &self.config.retry)?;
        let mut inf = self.config.execution.inferencer();
        for (t, state) in states.iter().enumerate() {
            for stage in StageKind::ORDER {
                run_stage(stage, t, state, Some(&conn), ctx, &mut inf);
            }
        }
        Ok(states)
    }

    /// Pipelined mode: Algorithm 1.
    fn run_pipelined(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        ctx: &Arc<BatchCtx>,
    ) -> Result<Vec<Shared>> {
        let states = self.new_states(tables);
        let pool = self.config.pool_size;

        // TP1: preparation workers. In legacy mode each worker owns one
        // reused connection; with overload control every worker draws
        // from one shared FIFO connection pool whose limit the AIMD
        // governor tunes at runtime. Either way a worker that cannot get
        // a connection still drains jobs (with none), so prep stages
        // degrade instead of deadlocking.
        let (prep_tx, prep_rx) = unbounded::<Job>();
        let tp1_active = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(pool * 2);
        let retry_cfg = self.config.retry;
        let exec_cfg = self.config.execution;
        let conn_pool = ctx.controller.as_ref().map(|_| {
            // Short acquire slices keep a saturated pool from stalling
            // the shedding loop; acquire_with_retry supplies the backoff.
            let slice = retry_cfg.stage_deadline.min(Duration::from_millis(50));
            Arc::new(ConnectionPool::new(Arc::clone(db), pool.max(1), slice))
        });
        for _ in 0..pool {
            let rx = prep_rx.clone();
            let active = Arc::clone(&tp1_active);
            let wake = Arc::clone(&ctx.wake);
            if let Some(cpool) = &conn_pool {
                let cpool = Arc::clone(cpool);
                handles.push(std::thread::spawn(move || {
                    let mut inf = exec_cfg.inferencer();
                    while let Ok(job) = rx.recv() {
                        let conn = acquire_with_retry(&cpool, &retry_cfg).ok();
                        job(conn.as_deref(), &mut inf);
                        drop(conn);
                        active.fetch_sub(1, Ordering::SeqCst);
                        wake.notify();
                    }
                }));
            } else {
                let db = Arc::clone(db);
                handles.push(std::thread::spawn(move || {
                    let conn = connect_with_retry(&db, &retry_cfg).ok();
                    let mut inf = exec_cfg.inferencer();
                    while let Ok(job) = rx.recv() {
                        job(conn.as_ref(), &mut inf);
                        active.fetch_sub(1, Ordering::SeqCst);
                        wake.notify();
                    }
                }));
            }
        }
        // TP2: inference workers, each owning a long-lived inferencer
        // whose scratch buffers persist across every table it serves.
        let (infer_tx, infer_rx) = unbounded::<Job>();
        let tp2_active = Arc::new(AtomicUsize::new(0));
        for _ in 0..pool {
            let rx = infer_rx.clone();
            let active = Arc::clone(&tp2_active);
            let wake = Arc::clone(&ctx.wake);
            handles.push(std::thread::spawn(move || {
                let mut inf = exec_cfg.inferencer();
                while let Ok(job) = rx.recv() {
                    job(None, &mut inf);
                    active.fetch_sub(1, Ordering::SeqCst);
                    wake.notify();
                }
            }));
        }
        // Cross-table micro-batching: eligible inference stages are
        // routed through the planner instead of dispatching per table.
        let mut planner =
            self.config.batching.enabled.then(|| BatchPlanner::new(self.config.batching));

        if let Some(ctrl) = ctx.controller.clone() {
            let pools = Pools {
                prep_tx: &prep_tx,
                infer_tx: &infer_tx,
                tp1_active: &tp1_active,
                tp2_active: &tp2_active,
            };
            schedule_overload(&states, ctx, &ctrl, conn_pool.as_deref(), pools, planner.as_mut());
        } else {
            // Stage queue: four stages per table, generated in order.
            let mut queue: Vec<(usize, StageKind)> = (0..tables.len())
                .flat_map(|t| StageKind::ORDER.into_iter().map(move |s| (t, s)))
                .collect();

            loop {
                if queue.is_empty() && planner.as_ref().is_none_or(BatchPlanner::is_empty) {
                    break;
                }
                // Snapshot the wake generation before scanning, so any
                // progress signalled during the pass cuts the wait short.
                let seen = ctx.wake.gen();
                let mut dispatched = false;
                if tp1_active.load(Ordering::SeqCst) < pool {
                    if let Some(pos) = first_eligible(&queue, &states, true) {
                        let (t, stage) = queue.remove(pos);
                        tp1_active.fetch_add(1, Ordering::SeqCst);
                        dispatch(&prep_tx, t, stage, &states, ctx);
                        dispatched = true;
                    }
                }
                if let Some(planner) = planner.as_mut() {
                    // Batched path: every currently eligible inference
                    // stage moves into the planner (that is where the
                    // cross-table fill comes from), and a full-or-late
                    // batch flushes to a free TP2 worker.
                    let now = Instant::now();
                    let mut i = 0;
                    while i < queue.len() {
                        let (t, stage) = queue[i];
                        if !stage.is_prep()
                            && states[t].1.load(Ordering::SeqCst) == stage.index()
                        {
                            queue.remove(i);
                            planner.push(phase_of(stage), t, batch_cols(stage, &states[t]), now);
                            dispatched = true;
                        } else {
                            i += 1;
                        }
                    }
                    if tp2_active.load(Ordering::SeqCst) < pool {
                        for phase in [BatchPhase::P1, BatchPhase::P2] {
                            if let Some(reason) = planner.ready(phase, now) {
                                let batch = planner.flush(phase, reason);
                                tp2_active.fetch_add(1, Ordering::SeqCst);
                                dispatch_batched(&infer_tx, phase, batch, &states, ctx);
                                dispatched = true;
                                break;
                            }
                        }
                    }
                    if !dispatched
                        && !planner.is_empty()
                        && tp1_active.load(Ordering::SeqCst) == 0
                        && tp2_active.load(Ordering::SeqCst) == 0
                    {
                        // The pipeline ran dry: waiting out the deadline
                        // cannot improve fill, so flush what is queued.
                        for phase in [BatchPhase::P1, BatchPhase::P2] {
                            let batch = planner.flush(phase, FlushReason::Drain);
                            if !batch.is_empty() {
                                tp2_active.fetch_add(1, Ordering::SeqCst);
                                dispatch_batched(&infer_tx, phase, batch, &states, ctx);
                                dispatched = true;
                                break;
                            }
                        }
                    }
                } else if tp2_active.load(Ordering::SeqCst) < pool {
                    if let Some(pos) = first_eligible(&queue, &states, false) {
                        let (t, stage) = queue.remove(pos);
                        tp2_active.fetch_add(1, Ordering::SeqCst);
                        dispatch(&infer_tx, t, stage, &states, ctx);
                        dispatched = true;
                    }
                }
                if !dispatched {
                    // Block until a worker, the watchdog, or a halt
                    // signals progress — bounded by the next batch flush
                    // deadline (and a coarse safety net).
                    let mut timeout = Duration::from_millis(1);
                    if let Some(planner) = &planner {
                        let now = Instant::now();
                        for phase in [BatchPhase::P1, BatchPhase::P2] {
                            if let Some(dl) = planner.next_deadline(phase) {
                                timeout = timeout.min(dl.saturating_duration_since(now));
                            }
                        }
                    }
                    ctx.wake.wait_past(seen, timeout.max(Duration::from_micros(50)));
                }
            }
        }
        if let Some(planner) = &planner {
            fold_planner_summary(ctx, planner);
        }
        drop(prep_tx);
        drop(infer_tx);
        for h in handles {
            h.join().map_err(|_| TasteError::Scheduler("worker panicked".into()))?;
        }
        Ok(states)
    }
}

type Job = Box<dyn FnOnce(Option<&Connection>, &mut Inferencer) + Send>;

/// The two worker pools' dispatch handles, bundled for the scheduler.
struct Pools<'a> {
    prep_tx: &'a Sender<Job>,
    infer_tx: &'a Sender<Job>,
    tp1_active: &'a AtomicUsize,
    tp2_active: &'a AtomicUsize,
}

/// One stage waiting in the overload scheduler's queue. `since` is
/// stamped the first time the stage is seen *runnable* (all earlier
/// stages of its table done); dispatch delay from that moment is the
/// standing-queue signal fed to the controller.
struct PendingStage {
    t: usize,
    stage: StageKind,
    since: Option<Instant>,
}

/// The overload-controlled variant of the Algorithm 1 scheduler loop:
/// admission-gated, backpressured, deadline-aware, and AIMD-throttled.
///
/// Differences from the legacy loop: tables pass through the
/// [`LoadController`]'s admission gate before their stages enter the
/// queue (rejected tables never run and report
/// [`TableOutcome::Rejected`]); dispatch is gated on the controller's
/// adaptive TP1/TP2 limits instead of the fixed pool size; the shared
/// connection pool's limit follows the AIMD connection budget; and P2
/// work is shed — table by table, cheapest first — whenever the
/// controller reports pressure.
fn schedule_overload(
    states: &[Shared],
    ctx: &Arc<BatchCtx>,
    ctrl: &Arc<LoadController>,
    conn_pool: Option<&ConnectionPool>,
    pools: Pools<'_>,
    mut planner: Option<&mut BatchPlanner>,
) {
    // Offer every table up front; tables beyond the occupancy bound are
    // rejected immediately and never enter the pipeline.
    let mut waiting: VecDeque<usize> = VecDeque::new();
    for (t, state) in states.iter().enumerate() {
        if ctrl.offer() {
            waiting.push_back(t);
        } else {
            let mut st = state.0.lock();
            st.outcome = Some(TableOutcome::Rejected);
            st.finals = Some(Vec::new());
        }
    }
    let mut queue: Vec<PendingStage> = Vec::new();
    let mut applied_conn_limit = 0usize;
    loop {
        // Promote queued tables into the pipeline as in-flight slots
        // free up, stamping admission time and completion deadline.
        while !waiting.is_empty() {
            let Some(adm) = ctrl.promote() else { break };
            let t = waiting.pop_front().expect("waiting mirrors the admission queue");
            let now = Instant::now();
            {
                let mut st = states[t].0.lock();
                st.admission = Some(adm);
                st.admitted_at = Some(now);
                st.deadline = ctx.cfg.overload.deadline.map(|d| now + d);
                if let (Some(dls), Some(dl)) = (&ctx.deadlines, st.deadline) {
                    dls.set(t, dl);
                }
            }
            queue.extend(
                StageKind::ORDER.into_iter().map(|stage| PendingStage { t, stage, since: None }),
            );
        }
        if queue.is_empty()
            && waiting.is_empty()
            && planner.as_ref().is_none_or(|p| p.is_empty())
        {
            break;
        }
        // Snapshot the wake generation before scanning, so any progress
        // signalled during the pass cuts the wait short.
        let seen = ctx.wake.gen();
        // Follow the AIMD connection budget.
        if let Some(cpool) = conn_pool {
            let limit = ctrl.conn_limit();
            if limit != applied_conn_limit {
                applied_conn_limit = cpool.set_limit(limit);
            }
        }
        ctrl.note_queue_depth(queue.len() + planner.as_ref().map_or(0, |p| p.items()));
        let now = Instant::now();
        for e in queue.iter_mut() {
            if e.since.is_none() && states[e.t].1.load(Ordering::SeqCst) == e.stage.index() {
                e.since = Some(now);
            }
        }
        shed_pressured_p2(&mut queue, states, ctx, ctrl, now);
        let mut dispatched = false;
        if pools.tp1_active.load(Ordering::SeqCst) < ctrl.tp1_limit() {
            if let Some(pos) = queue.iter().position(|e| e.stage.is_prep() && e.since.is_some()) {
                let e = queue.remove(pos);
                // The standing-queue signal is measured on the prep
                // (TP1) queue only: that is where cloud-RDS contention
                // manifests, and inference dispatches draining quickly
                // must not mask a congested database.
                ctrl.observe_queue_wait(e.since.map_or(Duration::ZERO, |s| now.duration_since(s)), now);
                pools.tp1_active.fetch_add(1, Ordering::SeqCst);
                dispatch(pools.prep_tx, e.t, e.stage, states, ctx);
                dispatched = true;
            }
        }
        if let Some(planner) = planner.as_deref_mut() {
            // Batched path: runnable inference stages move into the
            // planner. A table shed *before* this point never gets here
            // (its P2 stages were retained out of the queue above), so a
            // shed table's columns leave the pipeline without ever
            // joining a batch.
            let mut i = 0;
            while i < queue.len() {
                if !queue[i].stage.is_prep() && queue[i].since.is_some() {
                    let e = queue.remove(i);
                    planner.push(phase_of(e.stage), e.t, batch_cols(e.stage, &states[e.t]), now);
                    dispatched = true;
                } else {
                    i += 1;
                }
            }
            if pools.tp2_active.load(Ordering::SeqCst) < ctrl.tp2_limit() {
                for phase in [BatchPhase::P1, BatchPhase::P2] {
                    if let Some(reason) = planner.ready(phase, now) {
                        let batch = planner.flush(phase, reason);
                        pools.tp2_active.fetch_add(1, Ordering::SeqCst);
                        dispatch_batched(pools.infer_tx, phase, batch, states, ctx);
                        dispatched = true;
                        break;
                    }
                }
            }
            if !dispatched
                && !planner.is_empty()
                && pools.tp1_active.load(Ordering::SeqCst) == 0
                && pools.tp2_active.load(Ordering::SeqCst) == 0
            {
                for phase in [BatchPhase::P1, BatchPhase::P2] {
                    let batch = planner.flush(phase, FlushReason::Drain);
                    if !batch.is_empty() {
                        pools.tp2_active.fetch_add(1, Ordering::SeqCst);
                        dispatch_batched(pools.infer_tx, phase, batch, states, ctx);
                        dispatched = true;
                        break;
                    }
                }
            }
        } else if pools.tp2_active.load(Ordering::SeqCst) < ctrl.tp2_limit() {
            if let Some(pos) = queue.iter().position(|e| !e.stage.is_prep() && e.since.is_some()) {
                let e = queue.remove(pos);
                pools.tp2_active.fetch_add(1, Ordering::SeqCst);
                dispatch(pools.infer_tx, e.t, e.stage, states, ctx);
                dispatched = true;
            }
        }
        if !dispatched {
            if ctx.batch_error.load(Ordering::SeqCst) {
                // The batch is failing: stop admitting, let dispatched
                // stages drain, and surface the error from run().
                break;
            }
            // Deadline shedding and the AIMD governor need periodic
            // now-driven passes even without progress events, so the
            // wait is capped well below the control loop's timescales.
            ctx.wake.wait_past(seen, Duration::from_micros(500));
        }
    }
}

/// Sheds the P2 stages of every table the controller wants lightened:
/// brownout admissions (P2 disallowed up front), standing-queue
/// pressure, and deadline-risk projections. The shed table settles on
/// its P1 metadata-only verdicts via [`finalize_table`]'s fallback.
fn shed_pressured_p2(
    queue: &mut Vec<PendingStage>,
    states: &[Shared],
    ctx: &Arc<BatchCtx>,
    ctrl: &Arc<LoadController>,
    now: Instant,
) {
    let mut idx = 0;
    while idx < queue.len() {
        let runnable_p2prep = queue[idx].stage == StageKind::P2Prep && queue[idx].since.is_some();
        if !runnable_p2prep {
            idx += 1;
            continue;
        }
        let t = queue[idx].t;
        let mut shed = false;
        {
            let mut st = states[t].0.lock();
            // Only healthy tables with P1 verdicts in hand can shed P2;
            // failed or hazard tables follow their own paths.
            let reason = if st.error.is_some()
                || st.outcome.is_some()
                || st.resilience.failed
                || st.infer1.is_none()
            {
                None
            } else {
                match st.admission {
                    Some(a) if !a.p2_allowed => Some(ShedReason::Brownout),
                    // A brownout exit probe deliberately runs P2 at full
                    // fidelity; only its real deadline (enforced by the
                    // watchdog) can still cut it short.
                    Some(a) if a.probe => None,
                    _ => ctrl.shed_reason(st.deadline, now),
                }
            };
            if let Some(reason) = reason {
                record_hazard(&mut st, TableOutcome::Shed { reason }, ctx);
                shed = true;
            }
        }
        if shed {
            queue.retain(|e| {
                !(e.t == t && matches!(e.stage, StageKind::P2Prep | StageKind::P2Infer))
            });
            // Both P2 stage slots are accounted as done without running.
            let done = states[t].1.fetch_add(2, Ordering::SeqCst) + 2;
            if done == StageKind::ORDER.len() {
                finalize_table(t, &states[t], ctx);
            }
        } else {
            idx += 1;
        }
    }
}

fn dispatch(tx: &Sender<Job>, t: usize, stage: StageKind, states: &[Shared], ctx: &Arc<BatchCtx>) {
    let state = Arc::clone(&states[t]);
    let ctx = Arc::clone(ctx);
    let job: Job = if stage.is_prep() {
        Box::new(move |conn, inf| run_stage(stage, t, &state, conn, &ctx, inf))
    } else {
        Box::new(move |_conn, inf| run_stage(stage, t, &state, None, &ctx, inf))
    };
    tx.send(job).expect("workers outlive the scheduler loop");
}

/// The planner phase an inference stage belongs to.
fn phase_of(stage: StageKind) -> BatchPhase {
    match stage {
        StageKind::P1Infer => BatchPhase::P1,
        StageKind::P2Infer => BatchPhase::P2,
        other => unreachable!("{other:?} is a prep stage, never batched"),
    }
}

/// The columns an inference stage would contribute to a batch: total
/// columns for P1, uncertain columns for P2, zero for tables that will
/// take the per-table no-op path anyway.
fn batch_cols(stage: StageKind, state: &Shared) -> usize {
    let st = state.0.lock();
    if st.error.is_some() || st.outcome.is_some() || st.resilience.failed {
        return 0;
    }
    match stage {
        StageKind::P1Infer => st.prep1.as_ref().map_or(0, |p| p.ncols),
        StageKind::P2Infer => st.infer1.as_ref().map_or(0, |i| i.uncertain.len()),
        _ => 0,
    }
}

/// Folds the planner's flush accounting into the batch telemetry,
/// preserving the live member counts the executed jobs recorded.
fn fold_planner_summary(ctx: &BatchCtx, planner: &BatchPlanner) {
    fn take_flush(dst: &mut crate::report::PhaseBatchingSummary, src: crate::report::PhaseBatchingSummary) {
        dst.batches = src.batches;
        dst.mean_fill = src.mean_fill;
        dst.p95_fill = src.p95_fill;
        dst.size_flushes = src.size_flushes;
        dst.deadline_flushes = src.deadline_flushes;
        dst.drain_flushes = src.drain_flushes;
    }
    let s = planner.summary();
    let mut b = ctx.batching.lock();
    b.enabled = true;
    take_flush(&mut b.p1, s.p1);
    take_flush(&mut b.p2, s.p2);
}

/// Ships one flushed micro-batch to the inference pool as a single job.
fn dispatch_batched(
    tx: &Sender<Job>,
    phase: BatchPhase,
    batch: Vec<crate::batcher::BatchItem>,
    states: &[Shared],
    ctx: &Arc<BatchCtx>,
) {
    let members: Vec<(usize, Shared)> =
        batch.iter().map(|b| (b.t, Arc::clone(&states[b.t]))).collect();
    let ctx = Arc::clone(ctx);
    let job: Job = Box::new(move |_conn, inf| run_batched_stage(phase, &members, &ctx, inf));
    tx.send(job).expect("workers outlive the scheduler loop");
}

/// Advances a table's stage counter by one slot and finalizes the table
/// when its last slot lands (shared by the per-table and batched paths).
fn advance_stage(t: usize, state: &Shared, ctx: &BatchCtx) {
    let done = state.1.fetch_add(1, Ordering::SeqCst) + 1;
    if done == StageKind::ORDER.len() {
        finalize_table(t, state, ctx);
    }
}

/// Executes one flushed micro-batch on a TP2 worker. Members that are
/// dead on arrival — errored, hazard-stamped, cancelled, failed, or
/// missing upstream state — are routed through [`run_stage`] so their
/// per-table bookkeeping (no-op, hazard mapping, degraded fallback) is
/// exactly the unbatched behavior; the rest run one fused pass.
fn run_batched_stage(
    phase: BatchPhase,
    members: &[(usize, Shared)],
    ctx: &BatchCtx,
    inf: &mut Inferencer,
) {
    match phase {
        BatchPhase::P1 => run_batched_p1(members, ctx, inf),
        BatchPhase::P2 => run_batched_p2(members, ctx, inf),
    }
}

/// Groups live batch members by their pinned model version, preserving
/// member order within each group. With rollout disabled there is
/// exactly one group (the fixed batch model); across a mid-run swap,
/// tables pinned to different versions each get their own fused pass —
/// a fused pass never mixes weights.
fn version_groups<T>(
    live: &[T],
    pin_of: impl for<'b> Fn(&'b T) -> &'b Pinned,
) -> Vec<(Arc<Adtd>, Vec<usize>)> {
    let mut groups: Vec<(u64, Arc<Adtd>, Vec<usize>)> = Vec::new();
    for (i, m) in live.iter().enumerate() {
        let pin = pin_of(m);
        match groups.iter_mut().find(|g| g.0 == pin.version) {
            Some(g) => g.2.push(i),
            None => groups.push((pin.version, Arc::clone(&pin.model), vec![i])),
        }
    }
    groups.into_iter().map(|(_, model, idxs)| (model, idxs)).collect()
}

fn run_batched_p1(members: &[(usize, Shared)], ctx: &BatchCtx, inf: &mut Inferencer) {
    struct LiveP1<'a> {
        t: usize,
        state: &'a Shared,
        tid: TableId,
        prep: Arc<P1Prep>,
        pin: Pinned,
    }
    let mut live: Vec<LiveP1<'_>> = Vec::new();
    for (t, state) in members {
        let gathered = {
            let mut st = state.0.lock();
            if st.error.is_some()
                || st.outcome.is_some()
                || ctx.tokens[*t].is_cancelled()
                || st.resilience.failed
            {
                None
            } else if let Some(prep) = st.prep1.clone() {
                let tid = st.tid;
                let pin = pinned_model(ctx, &mut st);
                // Canary tables take the per-table path: they must
                // shadow-score the incumbent on the same input, which a
                // fused pass cannot do.
                if pin.canary {
                    None
                } else {
                    Some((tid, prep, pin))
                }
            } else {
                None
            }
        };
        match gathered {
            Some((tid, prep, pin)) => live.push(LiveP1 { t: *t, state, tid, prep, pin }),
            None => run_stage(StageKind::P1Infer, *t, state, None, ctx, inf),
        }
    }
    if live.is_empty() {
        return;
    }
    for m in &live {
        ctx.clocks.start(m.t);
    }
    let started = Instant::now();
    let groups = version_groups(&live, |m: &LiveP1<'_>| &m.pin);
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<P1Infer>> {
        for m in &live {
            inject_faults(StageKind::P1Infer, m.tid, &ctx.cfg, &ctx.tokens[m.t], &ctx.wake)?;
        }
        let mut results: Vec<Option<P1Infer>> = live.iter().map(|_| None).collect();
        for (model, idxs) in &groups {
            let items: Vec<P1Item<'_>> = idxs
                .iter()
                .map(|&i| P1Item { tid: live[i].tid, prep: &live[i].prep })
                .collect();
            let out = infer_phase1_batched(model, &ctx.cfg, &items, Some(&ctx.cache), inf);
            for (&i, r) in idxs.iter().zip(out) {
                results[i] = Some(r);
            }
        }
        Ok(results.into_iter().map(|r| r.expect("every live member grouped")).collect())
    }));
    let service = started.elapsed();
    for m in &live {
        ctx.clocks.finish(m.t);
    }
    match caught {
        Ok(Ok(results)) => {
            {
                let mut b = ctx.batching.lock();
                b.p1.batched_tables += live.len() as u64;
                b.p1.batched_columns += live.iter().map(|m| m.prep.ncols as u64).sum::<u64>();
            }
            // Per-member service is the batch's share: the AIMD governor
            // sees per-stage costs, not N copies of the fused pass.
            let share = service / live.len() as u32;
            for (m, infer1) in live.iter().zip(results) {
                {
                    let mut st = m.state.0.lock();
                    st.infer1 = Some(infer1);
                }
                if let Some(ctrl) = &ctx.controller {
                    ctrl.observe_stage(share, false, false, Instant::now());
                }
                advance_stage(m.t, m.state, ctx);
            }
        }
        _ => {
            // A panic or cancellation inside the fused pass: nothing was
            // stored, so re-run every live member on the per-table path.
            // Only the culprit re-triggers its fault (and is isolated by
            // run_stage's own catch/hazard handling); the others complete
            // normally.
            for m in &live {
                run_stage(StageKind::P1Infer, m.t, m.state, None, ctx, inf);
            }
        }
    }
}

fn run_batched_p2(members: &[(usize, Shared)], ctx: &BatchCtx, inf: &mut Inferencer) {
    struct LiveP2<'a> {
        t: usize,
        state: &'a Shared,
        tid: TableId,
        prep1: Arc<P1Prep>,
        infer1: P1Infer,
        prep2: Arc<P2Prep>,
        pin: Pinned,
    }
    let mut live: Vec<LiveP2<'_>> = Vec::new();
    for (t, state) in members {
        let gathered = {
            let mut st = state.0.lock();
            if st.error.is_some()
                || st.outcome.is_some()
                || ctx.tokens[*t].is_cancelled()
                || st.resilience.failed
            {
                None
            } else {
                // Degraded tables without scanned content (and any table
                // with missing upstream state) take the per-table path,
                // which owns those fallbacks. So do canary tables: their
                // latents were never cached, and the per-table path runs
                // them cache-free on their pinned candidate.
                match (&st.prep1, &st.infer1, &st.prep2) {
                    (Some(p1), Some(i1), Some(p2)) => {
                        let seed = (st.tid, Arc::clone(p1), i1.clone(), Arc::clone(p2));
                        let pin = pinned_model(ctx, &mut st);
                        if pin.canary {
                            None
                        } else {
                            Some((seed, pin))
                        }
                    }
                    _ => None,
                }
            }
        };
        match gathered {
            Some(((tid, prep1, infer1, prep2), pin)) => {
                live.push(LiveP2 { t: *t, state, tid, prep1, infer1, prep2, pin })
            }
            None => run_stage(StageKind::P2Infer, *t, state, None, ctx, inf),
        }
    }
    if live.is_empty() {
        return;
    }
    for m in &live {
        ctx.clocks.start(m.t);
    }
    let started = Instant::now();
    let groups = version_groups(&live, |m: &LiveP2<'_>| &m.pin);
    let caught = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Vec<LabelSet>>> {
        for m in &live {
            inject_faults(StageKind::P2Infer, m.tid, &ctx.cfg, &ctx.tokens[m.t], &ctx.wake)?;
        }
        let mut results: Vec<Option<Vec<LabelSet>>> = live.iter().map(|_| None).collect();
        for (model, idxs) in &groups {
            let items: Vec<P2Item<'_>> = idxs
                .iter()
                .map(|&i| {
                    let m = &live[i];
                    P2Item { tid: m.tid, prep1: &m.prep1, infer1: &m.infer1, prep2: &m.prep2 }
                })
                .collect();
            let out = infer_phase2_batched(model, &ctx.cfg, &items, Some(&ctx.cache), inf);
            for (&i, r) in idxs.iter().zip(out) {
                results[i] = Some(r);
            }
        }
        Ok(results.into_iter().map(|r| r.expect("every live member grouped")).collect())
    }));
    let service = started.elapsed();
    for m in &live {
        ctx.clocks.finish(m.t);
    }
    match caught {
        Ok(Ok(results)) => {
            {
                let mut b = ctx.batching.lock();
                b.p2.batched_tables += live.len() as u64;
                b.p2.batched_columns +=
                    live.iter().map(|m| m.infer1.uncertain.len() as u64).sum::<u64>();
            }
            let share = service / live.len() as u32;
            for (m, finals) in live.iter().zip(results) {
                {
                    let mut st = m.state.0.lock();
                    st.finals = Some(finals);
                }
                if let Some(ctrl) = &ctx.controller {
                    ctrl.observe_stage(share, false, true, Instant::now());
                }
                advance_stage(m.t, m.state, ctx);
            }
        }
        _ => {
            for m in &live {
                run_stage(StageKind::P2Infer, m.t, m.state, None, ctx, inf);
            }
        }
    }
}

fn first_eligible(queue: &[(usize, StageKind)], states: &[Shared], prep: bool) -> Option<usize> {
    queue.iter().position(|&(t, s)| {
        s.is_prep() == prep && states[t].1.load(Ordering::SeqCst) == s.index()
    })
}

/// Maps a cancellation reason observed at `stage` to the table outcome
/// it implies: a stage timeout means the table was abandoned by the
/// watchdog (final), a blown per-table admission deadline sheds the
/// table onto its P1 verdicts (final), while a batch timeout or halt
/// leaves the table merely cancelled (non-final; a resumed run
/// re-processes it).
fn hazard_from_cancel(reason: CancelReason, stage: StageKind) -> TableOutcome {
    match reason {
        CancelReason::StageTimeout => TableOutcome::TimedOut { stage: format!("{stage:?}") },
        CancelReason::DeadlineExceeded => TableOutcome::Shed { reason: ShedReason::DeadlineRisk },
        CancelReason::BatchTimeout | CancelReason::Halted => TableOutcome::Cancelled,
    }
}

/// Stamps a hazard outcome onto the table (first hazard wins) and
/// mirrors it into the database ledger's stage-outcome counters (and,
/// for shed tables, the overload controller's shed count).
fn record_hazard(st: &mut TableState, outcome: TableOutcome, ctx: &BatchCtx) {
    debug_assert!(st.outcome.is_none(), "hazards are recorded at most once");
    match &outcome {
        TableOutcome::Panicked { .. } => ctx.db.ledger().record_panicked_stage(),
        TableOutcome::TimedOut { .. } => ctx.db.ledger().record_timed_out_stage(),
        TableOutcome::Cancelled => ctx.db.ledger().record_cancelled_stage(),
        TableOutcome::Shed { .. } => {
            ctx.db.ledger().record_shed_stage();
            if let Some(ctrl) = &ctx.controller {
                ctrl.record_shed();
            }
        }
        _ => {}
    }
    st.outcome = Some(outcome);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Executes one stage against the shared state (prep stages use the
/// connection; inference stages ignore it) and advances the table's
/// stage counter. Runs as a no-op once the table has errored, been
/// cancelled, or hit a hazard, so the scheduler always drains the queue.
/// A panicking stage is caught here: the worker survives and the table
/// is reported as [`TableOutcome::Panicked`].
fn run_stage(
    stage: StageKind,
    t: usize,
    state: &Shared,
    conn: Option<&Connection>,
    ctx: &BatchCtx,
    inf: &mut Inferencer,
) {
    let token = &ctx.tokens[t];
    {
        let mut st = state.0.lock();
        if st.error.is_none() && st.outcome.is_none() {
            if let Some(reason) = token.reason() {
                record_hazard(&mut st, hazard_from_cancel(reason, stage), ctx);
            } else {
                let was_clean = !(st.resilience.failed || st.resilience.degraded);
                ctx.clocks.start(t);
                let started = Instant::now();
                let caught = catch_unwind(AssertUnwindSafe(|| {
                    execute(stage, &mut st, conn, token, ctx, inf)
                }));
                let service = started.elapsed();
                ctx.clocks.finish(t);
                match caught {
                    Ok(Ok(())) => {}
                    Ok(Err(TasteError::Cancelled(_))) => {
                        // The stage observed its token mid-flight; map
                        // the reason to the table's outcome.
                        let reason = token.reason().unwrap_or(CancelReason::StageTimeout);
                        record_hazard(&mut st, hazard_from_cancel(reason, stage), ctx);
                    }
                    Ok(Err(e)) => {
                        st.error = Some(e);
                        ctx.batch_error.store(true, Ordering::SeqCst);
                    }
                    Err(payload) => record_hazard(
                        &mut st,
                        TableOutcome::Panicked {
                            stage: format!("{stage:?}"),
                            payload: panic_message(payload.as_ref()),
                        },
                        ctx,
                    ),
                }
                // Feed the AIMD governor: a stage that newly burned its
                // fault budget (or panicked / timed out) cuts the
                // limits, a clean one grows them.
                if let Some(ctrl) = &ctx.controller {
                    let failed = st.error.is_some()
                        || (was_clean && (st.resilience.failed || st.resilience.degraded))
                        || matches!(
                            st.outcome,
                            Some(TableOutcome::Panicked { .. } | TableOutcome::TimedOut { .. })
                        );
                    let is_p2 = matches!(stage, StageKind::P2Prep | StageKind::P2Infer);
                    ctrl.observe_stage(service, failed, is_p2, Instant::now());
                }
            }
        }
    }
    advance_stage(t, state, ctx);
}

/// Runs once per table, after its last stage slot: settles the final
/// outcome, fills in fallback verdicts for hazard and shed tables,
/// stamps the end-to-end latency, returns the table's in-flight slot to
/// the overload controller, journals final outcomes, and triggers the
/// simulated halt when configured.
fn finalize_table(t: usize, state: &Shared, ctx: &BatchCtx) {
    if let Some(dls) = &ctx.deadlines {
        dls.clear(t);
    }
    let mut st = state.0.lock();
    if st.error.is_some() {
        return; // the batch is failing; nothing to journal
    }
    let outcome = match st.outcome.clone() {
        Some(o) => o,
        None => {
            let o = if st.resilience.failed {
                TableOutcome::Failed
            } else if st.resilience.degraded {
                TableOutcome::Degraded
            } else {
                TableOutcome::Completed
            };
            st.outcome = Some(o.clone());
            o
        }
    };
    if st.finals.is_none() {
        // Hazard path: a panicked, timed-out, or shed table keeps its
        // P1 verdicts when Phase 1 completed, otherwise empty sets; a
        // cancelled table reports empty sets (resume re-runs it).
        st.finals = Some(match (&outcome, st.infer1.as_ref()) {
            (TableOutcome::Cancelled, _) | (_, None) => Vec::new(),
            (_, Some(i1)) => shed_finals(i1),
        });
    }
    st.latency = st.admitted_at.unwrap_or(ctx.batch_start).elapsed();
    if let (Some(ctrl), Some(adm)) = (&ctx.controller, st.admission) {
        // Only a cleanly completed table counts as a successful
        // brownout probe: P2 ran end-to-end without shedding.
        let ok = matches!(outcome, TableOutcome::Completed);
        ctrl.complete(adm.probe, ok, Instant::now());
    }
    if !outcome.is_final() {
        return;
    }
    if let Some(journal) = &ctx.journal {
        let record = JournalRecord {
            table: st.tid,
            outcome,
            admitted: st.finals.clone().unwrap_or_default(),
            uncertain_columns: st.infer1.as_ref().map_or(0, |i| i.uncertain.len()),
            resilience: st.resilience,
            latency: st.latency,
            model_version: st.pinned.as_ref().map_or(0, |p| p.version),
        };
        if let Err(e) = journal.lock().append(&record) {
            st.error = Some(e);
            ctx.batch_error.store(true, Ordering::SeqCst);
            return;
        }
    }
    let finished = ctx.finished_final.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(halt_after) = ctx.cfg.hardening.halt_after_tables {
        if finished >= halt_after {
            // Simulated crash: every table not yet finalized is
            // cancelled, exactly as if the process had been killed
            // between journal appends.
            let mut flipped = false;
            for token in &ctx.tokens {
                flipped |= token.cancel(CancelReason::Halted);
            }
            if flipped {
                ctx.wake.notify();
            }
        }
    }
}

/// Deterministic fault injection (test/repro hook): panics or stalls
/// when the configured `(table, stage)` point is reached. The stall is
/// cancellation-aware — it waits on the batch's wake event, which the
/// watchdog notifies on every fresh cancellation, so the watchdog cuts
/// it short without the stall polling a sleep loop.
fn inject_faults(
    stage: StageKind,
    tid: TableId,
    cfg: &TasteConfig,
    token: &CancelToken,
    wake: &Wakeup,
) -> Result<()> {
    let h = &cfg.hardening;
    let here = (tid.0, stage.index() as u8);
    if h.panic_at == Some(here) {
        panic!("injected panic: table {} stage {:?}", tid.0, stage);
    }
    if h.stall_at == Some(here) {
        let deadline = Instant::now() + h.stall_for;
        loop {
            // Snapshot before the token check: a cancellation landing
            // after the check bumps the generation, so the wait below
            // returns immediately instead of losing the wakeup.
            let seen = wake.gen();
            token.check("injected stall")?;
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            wake.wait_past(seen, deadline - now);
        }
    }
    Ok(())
}

/// Returns the table's pinned model, pinning one on first use: through
/// the rollout controller when hot reload is enabled (which may route
/// the table to an in-canary candidate), otherwise the batch's fixed
/// construction-time model. Idempotent — later stages reuse the pin, so
/// a promotion or rollback between a table's stages changes nothing for
/// that table.
fn pinned_model(ctx: &BatchCtx, st: &mut TableState) -> Pinned {
    if st.pinned.is_none() {
        st.pinned = Some(match &ctx.rollout {
            Some(rc) => rc.pin(),
            None => Pinned::fixed(Arc::clone(&ctx.model)),
        });
    }
    st.pinned.clone().expect("pinned just above")
}

fn execute(
    stage: StageKind,
    st: &mut TableState,
    conn: Option<&Connection>,
    token: &CancelToken,
    ctx: &BatchCtx,
    inf: &mut Inferencer,
) -> Result<()> {
    let cache = &*ctx.cache;
    let cfg = &ctx.cfg;
    let breaker = &ctx.breaker;
    inject_faults(stage, st.tid, cfg, token, &ctx.wake)?;
    match stage {
        StageKind::P1Prep => {
            let Some(conn) = conn else {
                // The worker never got a connection. Without P1
                // metadata there is nothing to fall back to: mark the
                // table failed (degrade mode) or fail the batch.
                if cfg.retry.degrade {
                    st.resilience.failed = true;
                    return Ok(());
                }
                return Err(TasteError::Scheduler("prep without connection".into()));
            };
            let tid = st.tid;
            let (res, stats) =
                run_with_retry(&cfg.retry, breaker, conn, "prep_phase1", |c| prep_phase1(c, tid, cfg));
            st.resilience.absorb(&stats);
            match res {
                Ok(p) => st.prep1 = Some(Arc::new(p)),
                Err(f) if f.retryable && cfg.retry.degrade => st.resilience.failed = true,
                Err(f) => return Err(f.error),
            }
        }
        StageKind::P1Infer => {
            if st.resilience.failed {
                return Ok(());
            }
            let prep = Arc::clone(
                st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P1Infer before P1Prep".into()))?,
            );
            let pin = pinned_model(ctx, st);
            if pin.canary {
                // Canary serving: run the candidate AND the incumbent on
                // the same input — both without touching the latent
                // cache, so no cross-version latent can ever be reused —
                // and feed the agreement / sentinel / latency gates.
                let shadow = pin.shadow.clone().expect("canary pins carry their incumbent");
                let c0 = Instant::now();
                let cand = infer_phase1(&pin.model, cfg, st.tid, &prep, None, inf);
                let candidate_ms = c0.elapsed().as_secs_f64() * 1e3;
                let i0 = Instant::now();
                let inc = infer_phase1(&shadow.model, cfg, st.tid, &prep, None, inf);
                let incumbent_ms = i0.elapsed().as_secs_f64() * 1e3;
                let ncols = cand.admitted.len();
                let agree_cols = (0..ncols)
                    .filter(|&j| {
                        let o = j as u16;
                        cand.admitted[j] == inc.admitted[j]
                            && cand.uncertain.contains(&o) == inc.uncertain.contains(&o)
                    })
                    .count() as u64;
                let obs = CanaryObservation {
                    agree_cols,
                    total_cols: ncols as u64,
                    nonfinite: cand.nonfinite,
                    candidate_ms,
                    incumbent_ms,
                };
                if cand.nonfinite {
                    // The candidate is numerically broken: this table
                    // falls back to the incumbent's shadow verdicts (and
                    // re-pins so its P2 runs the incumbent too), so the
                    // broken candidate harms no request.
                    st.pinned = Some(Pinned {
                        model: Arc::clone(&shadow.model),
                        version: shadow.version,
                        canary: false,
                        shadow: None,
                    });
                    st.infer1 = Some(inc);
                } else {
                    st.infer1 = Some(cand);
                }
                if let Some(rc) = &ctx.rollout {
                    rc.observe_canary(obs);
                }
            } else {
                st.infer1 = Some(infer_phase1(&pin.model, cfg, st.tid, &prep, Some(cache), inf));
            }
        }
        StageKind::P2Prep => {
            if st.resilience.failed {
                return Ok(());
            }
            let tid = st.tid;
            let uncertain = st
                .infer1
                .as_ref()
                .ok_or_else(|| TasteError::Scheduler("P2Prep before P1Infer".into()))?
                .uncertain
                .clone();
            let prep1 = st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Prep before P1Prep".into()))?;
            let Some(conn) = conn else {
                // Lost connection: P1 verdicts survive, so degrade.
                if cfg.retry.degrade {
                    st.resilience.degraded = true;
                    st.resilience.degraded_columns += uncertain.len();
                    return Ok(());
                }
                return Err(TasteError::Scheduler("prep without connection".into()));
            };
            let (res, stats) =
                run_with_retry(&cfg.retry, breaker, conn, "prep_phase2", |c| {
                    prep_phase2(c, tid, prep1, &uncertain, cfg, token)
                });
            st.resilience.absorb(&stats);
            match res {
                Ok(p) => st.prep2 = Some(Arc::new(p)),
                Err(f) if matches!(f.error, TasteError::Cancelled(_)) => return Err(f.error),
                Err(f) if f.retryable && cfg.retry.degrade => {
                    st.resilience.degraded = true;
                    st.resilience.degraded_columns += uncertain.len();
                }
                Err(f) => return Err(f.error),
            }
        }
        StageKind::P2Infer => {
            if st.resilience.failed {
                // P1 never produced verdicts; report the table with
                // empty admitted sets so the batch stays complete.
                st.finals = Some(Vec::new());
                return Ok(());
            }
            let infer1 = st.infer1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P1Infer".into()))?;
            if st.resilience.degraded && st.prep2.is_none() {
                // Graceful degradation: P1 metadata-only verdicts
                // stand for the uncertain columns (α = β semantics).
                st.finals = Some(infer1.admitted.clone());
                return Ok(());
            }
            let prep1 = Arc::clone(
                st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P1Prep".into()))?,
            );
            let prep2 = Arc::clone(
                st.prep2.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P2Prep".into()))?,
            );
            let infer1 = infer1.clone();
            let pin = pinned_model(ctx, st);
            // Canary tables skip the latent cache end-to-end: their P1
            // wrote no latents, and reading here could only surface an
            // entry computed by a different model version.
            let cache_opt = if pin.canary { None } else { Some(cache) };
            st.finals = Some(infer_phase2(
                &pin.model, cfg, st.tid, &prep1, &infer1, &prep2, cache_opt, inf,
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardeningConfig;
    use std::path::PathBuf;
    use taste_core::{Cell, ColumnId, ColumnMeta, RawType, Table, TableMeta};
    use taste_db::LatencyProfile;
    use taste_model::ModelConfig;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn fixture_db(n_tables: usize, latency: LatencyProfile) -> (Arc<Database>, Vec<TableId>) {
        let db = Database::new("d", latency);
        let mut ids = Vec::new();
        for i in 0..n_tables {
            let tid = TableId(0);
            let ncols = 2 + i % 3;
            let columns: Vec<ColumnMeta> = (0..ncols)
                .map(|j| ColumnMeta {
                    id: ColumnId::new(tid, j as u16),
                    name: format!("city{j}"),
                    comment: None,
                    raw_type: RawType::Text,
                    nullable: false,
                    stats: Default::default(),
                    histogram: None,
                })
                .collect();
            let rows = (0..15)
                .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
                .collect();
            let t = Table {
                meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
                columns,
                rows,
                labels: vec![LabelSet::empty(); ncols],
            };
            ids.push(db.create_table(&t).unwrap());
        }
        (db, ids)
    }

    fn engine(cfg: TasteConfig) -> TasteEngine {
        let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
        TasteEngine::new(model, cfg).unwrap()
    }

    fn temp_path(tag: &str) -> PathBuf {
        let tid = format!("{:?}", std::thread::current().id());
        std::env::temp_dir().join(format!(
            "taste-engine-{tag}-{}-{}",
            std::process::id(),
            tid.replace(|c: char| !c.is_ascii_alphanumeric(), "")
        ))
    }

    #[test]
    fn sequential_and_pipelined_agree() {
        let (db, ids) = fixture_db(6, LatencyProfile::zero());
        let cfg_seq = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let cfg_pipe = TasteConfig { pipelining: true, ..cfg_seq };
        let seq = engine(cfg_seq).detect_batch(&db, &ids).unwrap();
        let pipe = engine(cfg_pipe).detect_batch(&db, &ids).unwrap();
        assert_eq!(seq.tables.len(), pipe.tables.len());
        for (a, b) in seq.tables.iter().zip(&pipe.tables) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.admitted, b.admitted, "pipelining must not change results");
            assert_eq!(a.uncertain_columns, b.uncertain_columns);
            assert_eq!(a.outcome, TableOutcome::Completed);
        }
        assert_eq!(seq.total_columns, pipe.total_columns);
    }

    #[test]
    fn detect_batch_verdicts_identical_across_backends() {
        // The A/B knob: forcing the tape backend through the whole
        // engine must reproduce the tape-free verdicts exactly, in both
        // sequential and pipelined modes.
        use crate::config::{ExecBackend, ExecutionConfig};
        let (db, ids) = fixture_db(5, LatencyProfile::zero());
        for pipelining in [false, true] {
            let base = TasteConfig {
                pipelining,
                alpha: 0.0001,
                beta: 0.9999,
                ..Default::default()
            };
            let taped_cfg = TasteConfig {
                execution: ExecutionConfig { backend: ExecBackend::Tape, ..Default::default() },
                ..base
            };
            let free = engine(base).detect_batch(&db, &ids).unwrap();
            let taped = engine(taped_cfg).detect_batch(&db, &ids).unwrap();
            assert_eq!(free.tables.len(), taped.tables.len());
            for (a, b) in free.tables.iter().zip(&taped.tables) {
                assert_eq!(a.table, b.table);
                assert_eq!(a.admitted, b.admitted, "backends must agree (pipelining={pipelining})");
                assert_eq!(a.uncertain_columns, b.uncertain_columns);
            }
        }
    }

    #[test]
    fn without_p2_never_scans() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, ..TasteConfig::default().without_p2() };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.ledger.columns_scanned, 0);
        assert_eq!(report.scanned_ratio(), 0.0);
        assert_eq!(report.uncertain_columns(), 0);
    }

    #[test]
    fn wide_band_scans_everything_once() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let cfg = TasteConfig {
            pipelining: false,
            alpha: 0.0001,
            beta: 0.9999,
            ..Default::default()
        };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.ledger.columns_scanned, report.total_columns);
        assert!((report.scanned_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn caching_toggle_changes_cache_traffic_not_results() {
        let (db, ids) = fixture_db(5, LatencyProfile::zero());
        let base = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let with_cache = engine(base).detect_batch(&db, &ids).unwrap();
        let no_cache_cfg = TasteConfig { caching: false, ..base };
        let without_cache = engine(no_cache_cfg).detect_batch(&db, &ids).unwrap();
        assert!(with_cache.cache_hits > 0, "cache should be hit in P2");
        assert_eq!(without_cache.cache_hits, 0);
        for (a, b) in with_cache.tables.iter().zip(&without_cache.tables) {
            assert_eq!(a.admitted, b.admitted);
        }
    }

    #[test]
    fn pipelined_overlaps_io_and_compute() {
        // With real per-table I/O sleeps, the pipelined engine must beat
        // sequential wall time on a multi-table batch.
        let latency = LatencyProfile {
            query_rtt: Duration::from_millis(4),
            connect: Duration::from_millis(2),
            ..LatencyProfile::zero()
        };
        let (db, ids) = fixture_db(12, latency);
        let cfg_seq = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let seq = engine(cfg_seq).detect_batch(&db, &ids).unwrap();
        let cfg_pipe = TasteConfig { pipelining: true, pool_size: 3, ..cfg_seq };
        let pipe = engine(cfg_pipe).detect_batch(&db, &ids).unwrap();
        assert!(
            pipe.wall_time < seq.wall_time,
            "pipelined {:?} should beat sequential {:?}",
            pipe.wall_time,
            seq.wall_time
        );
    }

    #[test]
    fn detect_batch_on_missing_table_errors() {
        let (db, _) = fixture_db(1, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, ..Default::default() };
        let err = engine(cfg).detect_batch(&db, &[TableId(99)]);
        assert!(err.is_err());
    }

    #[test]
    fn pipelined_error_propagates_without_deadlock() {
        // A bad table id mid-batch must fail the batch, not hang the
        // scheduler: later stages of the failed table become no-ops and
        // every other table still runs to completion first.
        let (db, ids) = fixture_db(3, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: true, pool_size: 2, ..Default::default() };
        let mut with_bad = ids.clone();
        with_bad.insert(1, TableId(42));
        let err = engine(cfg).detect_batch(&db, &with_bad);
        assert!(matches!(err, Err(taste_core::TasteError::NotFound(_))), "{err:?}");
        // The same engine config still works on a clean batch.
        let ok = engine(cfg).detect_batch(&db, &ids);
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
        let bad = TasteConfig { alpha: 0.9, beta: 0.1, ..Default::default() };
        assert!(TasteEngine::new(model, bad).is_err());
    }

    #[test]
    fn empty_batch_produces_empty_report() {
        let (db, _) = fixture_db(1, LatencyProfile::zero());
        let report = engine(TasteConfig::default()).detect_batch(&db, &[]).unwrap();
        assert!(report.tables.is_empty());
        assert_eq!(report.total_columns, 0);
    }

    #[test]
    fn panicking_stage_is_isolated_and_batch_completes() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let hardening = HardeningConfig { panic_at: Some((ids[1].0, 1)), ..Default::default() };
        let cfg = TasteConfig { pipelining: true, pool_size: 2, hardening, ..Default::default() };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.tables.len(), 4, "the batch must complete despite the panic");
        assert_eq!(report.panicked_tables(), 1);
        assert_eq!(report.ledger.panicked_stages, 1);
        for tr in &report.tables {
            if tr.table == ids[1] {
                match &tr.outcome {
                    TableOutcome::Panicked { stage, payload } => {
                        assert_eq!(stage, "P1Infer");
                        assert!(payload.contains("injected panic"), "{payload}");
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
                assert!(tr.admitted.is_empty(), "P1 never finished, no verdicts to keep");
            } else {
                assert_eq!(tr.outcome, TableOutcome::Completed);
                assert!(!tr.admitted.is_empty());
            }
        }
    }

    #[test]
    fn stalled_stage_times_out_with_partial_p1_verdicts() {
        let (db, ids) = fixture_db(3, LatencyProfile::zero());
        let hardening = HardeningConfig {
            stage_deadline: Some(Duration::from_millis(25)),
            watchdog_poll: Duration::from_millis(1),
            stall_at: Some((ids[2].0, 2)), // P2Prep of the last table
            stall_for: Duration::from_secs(30),
            ..Default::default()
        };
        let cfg = TasteConfig {
            pipelining: true,
            pool_size: 2,
            alpha: 0.0001,
            beta: 0.9999,
            hardening,
            ..Default::default()
        };
        let t0 = Instant::now();
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "the watchdog must cut the stall short, not wait it out"
        );
        assert_eq!(report.timed_out_tables(), 1);
        assert_eq!(report.ledger.timed_out_stages, 1);
        let victim = report.tables.iter().find(|t| t.table == ids[2]).unwrap();
        assert!(matches!(&victim.outcome, TableOutcome::TimedOut { stage } if stage == "P2Prep"));
        assert!(
            !victim.admitted.is_empty(),
            "P1 completed, so its verdicts must survive the timeout"
        );
        for tr in report.tables.iter().filter(|t| t.table != ids[2]) {
            assert_eq!(tr.outcome, TableOutcome::Completed);
        }
    }

    #[test]
    fn batched_pipeline_matches_unbatched_verdicts_and_reports_fills() {
        use crate::config::BatchingConfig;
        let (db, ids) = fixture_db(8, LatencyProfile::zero());
        let base = TasteConfig {
            pipelining: true,
            pool_size: 2,
            alpha: 0.0001,
            beta: 0.9999,
            ..Default::default()
        };
        let plain = engine(base).detect_batch(&db, &ids).unwrap();
        assert!(!plain.batching.enabled, "batching is off by default");
        for max in [1usize, 3, 64] {
            let cfg = TasteConfig {
                batching: BatchingConfig { enabled: true, max_batch_columns: max, ..Default::default() },
                ..base
            };
            let batched = engine(cfg).detect_batch(&db, &ids).unwrap();
            assert_eq!(plain.tables.len(), batched.tables.len());
            for (a, b) in plain.tables.iter().zip(&batched.tables) {
                assert_eq!(a.table, b.table);
                assert_eq!(a.admitted, b.admitted, "micro-batching must not change verdicts (max={max})");
                assert_eq!(a.uncertain_columns, b.uncertain_columns);
                assert_eq!(b.outcome, TableOutcome::Completed);
            }
            assert_eq!(plain.cache_hits, batched.cache_hits, "same latent traffic (max={max})");
            let bt = &batched.batching;
            assert!(bt.enabled);
            for phase in [&bt.p1, &bt.p2] {
                assert!(phase.batches >= 1, "max={max}");
                assert_eq!(
                    phase.batches,
                    phase.size_flushes + phase.deadline_flushes + phase.drain_flushes,
                    "every flush has exactly one reason (max={max})"
                );
                assert!(phase.mean_fill > 0.0 && phase.mean_fill <= phase.p95_fill + 1e-9);
            }
            assert_eq!(bt.p1.batched_tables, ids.len() as u64, "every table P1-infers exactly once");
            assert_eq!(bt.p1.batched_columns, batched.total_columns);
            assert_eq!(bt.p2.batched_columns, batched.total_columns, "wide band sends every column to P2");
            if max == 1 {
                // No two of these multi-column tables fit one batch.
                assert_eq!(bt.p1.batches, ids.len() as u64);
            }
        }
    }

    #[test]
    fn timed_out_tables_never_join_fused_batches() {
        use crate::config::BatchingConfig;
        let (db, ids) = fixture_db(3, LatencyProfile::zero());
        let hardening = HardeningConfig {
            stage_deadline: Some(Duration::from_millis(25)),
            watchdog_poll: Duration::from_millis(1),
            stall_at: Some((ids[2].0, 2)), // P2Prep of the last table
            stall_for: Duration::from_secs(30),
            ..Default::default()
        };
        let cfg = TasteConfig {
            pipelining: true,
            pool_size: 2,
            alpha: 0.0001,
            beta: 0.9999,
            hardening,
            batching: BatchingConfig { enabled: true, max_batch_columns: 64, ..Default::default() },
            ..Default::default()
        };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.timed_out_tables(), 1);
        let victim = report.tables.iter().find(|t| t.table == ids[2]).unwrap();
        assert!(matches!(&victim.outcome, TableOutcome::TimedOut { stage } if stage == "P2Prep"));
        assert!(!victim.admitted.is_empty(), "P1 verdicts survive the timeout");
        let survivor_uncertain: u64 = report
            .tables
            .iter()
            .filter(|t| t.table != ids[2])
            .map(|t| {
                assert_eq!(t.outcome, TableOutcome::Completed);
                t.uncertain_columns as u64
            })
            .sum();
        assert!(survivor_uncertain > 0, "wide band leaves survivors uncertain");
        assert_eq!(
            report.batching.p2.batched_columns, survivor_uncertain,
            "a cancelled table's columns must never enter a fused P2 pass"
        );
        // P1 finished for all three tables before the stall; P2 excludes
        // the victim, so strictly fewer columns reach the fused P2 pass.
        assert_eq!(report.batching.p1.batched_columns, report.total_columns);
        assert!(report.batching.p2.batched_columns < report.batching.p1.batched_columns);
    }

    #[test]
    fn batch_deadline_drains_cleanly() {
        let latency = LatencyProfile { query_rtt: Duration::from_millis(5), ..LatencyProfile::zero() };
        let (db, ids) = fixture_db(6, latency);
        let hardening = HardeningConfig {
            batch_deadline: Some(Duration::from_millis(1)),
            watchdog_poll: Duration::from_millis(1),
            ..Default::default()
        };
        let cfg = TasteConfig { pipelining: true, pool_size: 2, hardening, ..Default::default() };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.tables.len(), 6, "cancelled batches still report every table");
        assert!(report.cancelled_tables() >= 1, "the deadline must cancel unfinished tables");
        assert_eq!(report.ledger.cancelled_stages as usize, report.cancelled_tables());
    }

    #[test]
    fn halt_and_resume_matches_uninterrupted() {
        let (db, ids) = fixture_db(5, LatencyProfile::zero());
        let base = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let full_path = temp_path("full");
        let full = engine(base).detect_batch_journaled(&db, &ids, &full_path).unwrap();
        assert!(full.tables.iter().all(|t| t.outcome == TableOutcome::Completed));

        // Crash simulation: die after two journaled tables.
        let halt_cfg = TasteConfig {
            hardening: HardeningConfig { halt_after_tables: Some(2), ..Default::default() },
            ..base
        };
        let halt_path = temp_path("halt");
        let aborted = engine(halt_cfg).detect_batch_journaled(&db, &ids, &halt_path).unwrap();
        assert_eq!(aborted.cancelled_tables(), 3, "sequential halt leaves exactly 3 tables");

        let resumed = engine(base).resume(&db, &ids, &halt_path).unwrap();
        assert_eq!(resumed.replayed_tables, 2);
        assert_eq!(resumed.tables.len(), full.tables.len());
        for (a, b) in full.tables.iter().zip(&resumed.tables) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.admitted, b.admitted, "resume must reproduce the uninterrupted verdicts");
            assert_eq!(b.outcome, TableOutcome::Completed);
        }
        assert_eq!(resumed.total_columns, full.total_columns);

        // The journal now covers every table exactly once: no table was
        // processed twice.
        let replay = journal::replay(&halt_path).unwrap();
        let mut seen: Vec<u32> = replay.records.iter().map(|r| r.table.0).collect();
        seen.sort_unstable();
        let mut want: Vec<u32> = ids.iter().map(|t| t.0).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        std::fs::remove_file(&full_path).unwrap();
        std::fs::remove_file(&halt_path).unwrap();
    }

    #[test]
    fn resume_quarantines_corrupt_journal_records() {
        let (db, ids) = fixture_db(3, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let path = temp_path("corrupt");
        let full = engine(cfg).detect_batch_journaled(&db, &ids, &path).unwrap();

        // Flip one payload byte inside the second record.
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = match taste_core::checksum::decode_record(&bytes) {
            taste_core::checksum::DecodeStep::Record { consumed, .. } => consumed,
            other => panic!("journal must start with a record, got {other:?}"),
        };
        let victim = first_len + taste_core::checksum::RECORD_HEADER_LEN + 4;
        bytes[victim] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let resumed = engine(cfg).resume(&db, &ids, &path).unwrap();
        assert_eq!(resumed.journal_corrupt_records, 1);
        assert_eq!(resumed.replayed_tables, 2, "the intact records are replayed");
        assert_eq!(resumed.tables.len(), 3, "the corrupted table is re-run, not lost");
        for (a, b) in full.tables.iter().zip(&resumed.tables) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.admitted, b.admitted);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cache_persists_and_restores_through_the_engine() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let eng = engine(cfg);
        let _ = eng.detect_batch(&db, &ids).unwrap();
        let path = temp_path("cache");
        let written = eng.persist_cache(&path).unwrap();
        assert!(written > 0, "the wide band populates the cache");
        let stats = eng.restore_cache(&path).unwrap();
        assert_eq!(stats.loaded, written);
        assert_eq!(stats.corrupt, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
