//! The batch detection engine: sequential mode and the Algorithm 1
//! pipelined scheduler (§5).
//!
//! Pipelined mode builds two worker pools — `TP1` for data-preparation
//! stages (each worker owns one reused database connection, per the
//! paper's batching guidance) and `TP2` for inference stages — plus a
//! stage queue holding the four stages of every table in order. The
//! scheduler repeatedly dispatches the *first eligible* stage of the
//! matching kind to a free worker, where a stage is eligible exactly when
//! all previous stages of its table have finished (Definition 5.1). The
//! per-table stage order is thus preserved while stages of different
//! tables overlap: one table's content scan (I/O sleep) proceeds while
//! another's inference (CPU) runs.
//!
//! Every database stage runs under the retry policy of
//! [`crate::retry`]: transient faults are retried with backoff behind a
//! per-database circuit breaker, and — with `retry.degrade` on — a table
//! whose P2 content scan exhausts its budget falls back to its P1
//! metadata-only verdicts instead of failing the batch (a table whose P1
//! fails is reported as failed with empty verdicts). Either way a failing
//! table can never wedge a pool worker or lose its slot in the report.

use crate::config::TasteConfig;
use crate::report::{DetectionReport, ResilienceSummary, TableResult};
use crate::retry::{connect_with_retry, run_with_retry, CircuitBreaker};
use crate::stages::{infer_phase1, infer_phase2, prep_phase1, prep_phase2, P1Infer, P1Prep, P2Prep};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{LabelSet, Result, TableId, TasteError};
use taste_db::{Connection, Database};
use taste_model::{Adtd, LatentCache};

/// The TASTE detection engine: a trained model plus a configuration.
pub struct TasteEngine {
    model: Arc<Adtd>,
    /// The active configuration.
    pub config: TasteConfig,
    cache: Arc<LatentCache>,
}

/// Shared per-table pipeline state.
struct TableState {
    tid: TableId,
    prep1: Option<P1Prep>,
    infer1: Option<P1Infer>,
    prep2: Option<P2Prep>,
    finals: Option<Vec<LabelSet>>,
    error: Option<TasteError>,
    resilience: ResilienceSummary,
}

type Shared = Arc<(Mutex<TableState>, AtomicUsize)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageKind {
    P1Prep,
    P1Infer,
    P2Prep,
    P2Infer,
}

impl StageKind {
    const ORDER: [StageKind; 4] = [StageKind::P1Prep, StageKind::P1Infer, StageKind::P2Prep, StageKind::P2Infer];

    fn index(self) -> usize {
        Self::ORDER.iter().position(|&s| s == self).expect("member")
    }

    fn is_prep(self) -> bool {
        matches!(self, StageKind::P1Prep | StageKind::P2Prep)
    }
}

impl TasteEngine {
    /// Builds an engine; validates the configuration.
    pub fn new(model: Arc<Adtd>, config: TasteConfig) -> Result<TasteEngine> {
        config.validate()?;
        Ok(TasteEngine { model, config, cache: Arc::new(LatentCache::new(512)) })
    }

    /// The model in service.
    pub fn model(&self) -> &Arc<Adtd> {
        &self.model
    }

    /// Detects semantic types for a batch of tables end-to-end,
    /// returning the per-column admitted sets plus the cost telemetry.
    pub fn detect_batch(&self, db: &Arc<Database>, tables: &[TableId]) -> Result<DetectionReport> {
        self.cache.clear();
        let breaker = CircuitBreaker::new(
            self.config.retry.breaker_threshold,
            self.config.retry.breaker_cooldown,
        );
        let ledger_before = db.ledger().snapshot();
        let t0 = Instant::now();
        let states = if self.config.pipelining {
            self.run_pipelined(db, tables, &breaker)?
        } else {
            self.run_sequential(db, tables, &breaker)?
        };
        let wall_time = t0.elapsed();
        let ledger = db.ledger().snapshot().since(&ledger_before);
        let (cache_hits, cache_misses) = self.cache.stats();

        let mut results = Vec::with_capacity(states.len());
        let mut total_columns = 0u64;
        for state in states {
            let st = Arc::try_unwrap(state)
                .map_err(|_| TasteError::Scheduler("state still shared after completion".into()))?
                .0
                .into_inner();
            if let Some(e) = st.error {
                return Err(e);
            }
            let finals = st
                .finals
                .ok_or_else(|| TasteError::Scheduler(format!("table {} never finished", st.tid.0)))?;
            total_columns += finals.len() as u64;
            let uncertain_columns = st.infer1.as_ref().map_or(0, |i| i.uncertain.len());
            results.push(TableResult {
                table: st.tid,
                admitted: finals,
                uncertain_columns,
                resilience: st.resilience,
            });
        }
        Ok(DetectionReport {
            approach: "TASTE".into(),
            tables: results,
            wall_time,
            ledger,
            total_columns,
            cache_hits,
            cache_misses,
            breaker_trips: breaker.trips(),
            breaker_transitions: breaker.transitions(),
        })
    }

    fn new_states(&self, tables: &[TableId]) -> Vec<Shared> {
        tables
            .iter()
            .map(|&tid| {
                Arc::new((
                    Mutex::new(TableState {
                        tid,
                        prep1: None,
                        infer1: None,
                        prep2: None,
                        finals: None,
                        error: None,
                        resilience: ResilienceSummary::default(),
                    }),
                    AtomicUsize::new(0),
                ))
            })
            .collect()
    }

    /// Sequential mode (*TASTE w/o pipelining*): one connection, tables
    /// processed one after another, stages in order.
    fn run_sequential(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        breaker: &Arc<CircuitBreaker>,
    ) -> Result<Vec<Shared>> {
        let states = self.new_states(tables);
        let conn = connect_with_retry(db, &self.config.retry)?;
        for state in &states {
            for stage in StageKind::ORDER {
                run_stage(stage, state, Some(&conn), &self.model, &self.cache, &self.config, breaker);
            }
        }
        Ok(states)
    }

    /// Pipelined mode: Algorithm 1.
    fn run_pipelined(
        &self,
        db: &Arc<Database>,
        tables: &[TableId],
        breaker: &Arc<CircuitBreaker>,
    ) -> Result<Vec<Shared>> {
        let states = self.new_states(tables);
        let pool = self.config.pool_size;

        // TP1: preparation workers, each owning a reused connection. A
        // worker whose connect attempts all fail still drains jobs (with
        // no connection), so prep stages degrade instead of deadlocking.
        let (prep_tx, prep_rx) = unbounded::<Job>();
        let tp1_active = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(pool * 2);
        let retry_cfg = self.config.retry;
        for _ in 0..pool {
            let rx = prep_rx.clone();
            let active = Arc::clone(&tp1_active);
            let db = Arc::clone(db);
            handles.push(std::thread::spawn(move || {
                let conn = connect_with_retry(&db, &retry_cfg).ok();
                while let Ok(job) = rx.recv() {
                    job(conn.as_ref());
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        // TP2: inference workers.
        let (infer_tx, infer_rx) = unbounded::<Job>();
        let tp2_active = Arc::new(AtomicUsize::new(0));
        for _ in 0..pool {
            let rx = infer_rx.clone();
            let active = Arc::clone(&tp2_active);
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job(None);
                    active.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }

        // Stage queue: four stages per table, generated in order.
        let mut queue: Vec<(usize, StageKind)> = (0..tables.len())
            .flat_map(|t| StageKind::ORDER.into_iter().map(move |s| (t, s)))
            .collect();

        while !queue.is_empty() {
            let mut dispatched = false;
            if tp1_active.load(Ordering::SeqCst) < pool {
                if let Some(pos) = first_eligible(&queue, &states, true) {
                    let (t, stage) = queue.remove(pos);
                    tp1_active.fetch_add(1, Ordering::SeqCst);
                    self.dispatch(&prep_tx, t, stage, &states, breaker);
                    dispatched = true;
                }
            }
            if tp2_active.load(Ordering::SeqCst) < pool {
                if let Some(pos) = first_eligible(&queue, &states, false) {
                    let (t, stage) = queue.remove(pos);
                    tp2_active.fetch_add(1, Ordering::SeqCst);
                    self.dispatch(&infer_tx, t, stage, &states, breaker);
                    dispatched = true;
                }
            }
            if !dispatched {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        drop(prep_tx);
        drop(infer_tx);
        for h in handles {
            h.join().map_err(|_| TasteError::Scheduler("worker panicked".into()))?;
        }
        Ok(states)
    }

    fn dispatch(
        &self,
        tx: &Sender<Job>,
        t: usize,
        stage: StageKind,
        states: &[Shared],
        breaker: &Arc<CircuitBreaker>,
    ) {
        let state = Arc::clone(&states[t]);
        let model = Arc::clone(&self.model);
        let cache = Arc::clone(&self.cache);
        let cfg = self.config;
        let breaker = Arc::clone(breaker);
        let job: Job = if stage.is_prep() {
            Box::new(move |conn| {
                run_stage(stage, &state, conn, &model, &cache, &cfg, &breaker);
            })
        } else {
            Box::new(move |_conn| {
                run_stage(stage, &state, None, &model, &cache, &cfg, &breaker);
            })
        };
        tx.send(job).expect("workers outlive the scheduler loop");
    }
}

type Job = Box<dyn FnOnce(Option<&Connection>) + Send>;

fn first_eligible(queue: &[(usize, StageKind)], states: &[Shared], prep: bool) -> Option<usize> {
    queue.iter().position(|&(t, s)| {
        s.is_prep() == prep && states[t].1.load(Ordering::SeqCst) == s.index()
    })
}

/// Executes one stage against the shared state (prep stages use the
/// connection; inference stages ignore it) and advances the table's
/// stage counter. Runs as a no-op once the table has errored, so the
/// scheduler always drains the queue.
fn run_stage(
    stage: StageKind,
    state: &Shared,
    conn: Option<&Connection>,
    model: &Adtd,
    cache: &LatentCache,
    cfg: &TasteConfig,
    breaker: &CircuitBreaker,
) {
    {
        let mut st = state.0.lock();
        if st.error.is_none() {
            execute(stage, &mut st, conn, model, cache, cfg, breaker);
        }
    }
    state.1.fetch_add(1, Ordering::SeqCst);
}

fn execute(
    stage: StageKind,
    st: &mut TableState,
    conn: Option<&Connection>,
    model: &Adtd,
    cache: &LatentCache,
    cfg: &TasteConfig,
    breaker: &CircuitBreaker,
) {
    let result: Result<()> = (|| {
        match stage {
            StageKind::P1Prep => {
                let Some(conn) = conn else {
                    // The worker never got a connection. Without P1
                    // metadata there is nothing to fall back to: mark the
                    // table failed (degrade mode) or fail the batch.
                    if cfg.retry.degrade {
                        st.resilience.failed = true;
                        return Ok(());
                    }
                    return Err(TasteError::Scheduler("prep without connection".into()));
                };
                let tid = st.tid;
                let (res, stats) =
                    run_with_retry(&cfg.retry, breaker, conn, "prep_phase1", |c| prep_phase1(c, tid, cfg));
                st.resilience.absorb(&stats);
                match res {
                    Ok(p) => st.prep1 = Some(p),
                    Err(f) if f.retryable && cfg.retry.degrade => st.resilience.failed = true,
                    Err(f) => return Err(f.error),
                }
            }
            StageKind::P1Infer => {
                if st.resilience.failed {
                    return Ok(());
                }
                let prep = st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P1Infer before P1Prep".into()))?;
                st.infer1 = Some(infer_phase1(model, cfg, st.tid, prep, Some(cache)));
            }
            StageKind::P2Prep => {
                if st.resilience.failed {
                    return Ok(());
                }
                let tid = st.tid;
                let uncertain = st
                    .infer1
                    .as_ref()
                    .ok_or_else(|| TasteError::Scheduler("P2Prep before P1Infer".into()))?
                    .uncertain
                    .clone();
                let prep1 = st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Prep before P1Prep".into()))?;
                let Some(conn) = conn else {
                    // Lost connection: P1 verdicts survive, so degrade.
                    if cfg.retry.degrade {
                        st.resilience.degraded = true;
                        st.resilience.degraded_columns += uncertain.len();
                        return Ok(());
                    }
                    return Err(TasteError::Scheduler("prep without connection".into()));
                };
                let (res, stats) =
                    run_with_retry(&cfg.retry, breaker, conn, "prep_phase2", |c| {
                        prep_phase2(c, tid, prep1, &uncertain, cfg)
                    });
                st.resilience.absorb(&stats);
                match res {
                    Ok(p) => st.prep2 = Some(p),
                    Err(f) if f.retryable && cfg.retry.degrade => {
                        st.resilience.degraded = true;
                        st.resilience.degraded_columns += uncertain.len();
                    }
                    Err(f) => return Err(f.error),
                }
            }
            StageKind::P2Infer => {
                if st.resilience.failed {
                    // P1 never produced verdicts; report the table with
                    // empty admitted sets so the batch stays complete.
                    st.finals = Some(Vec::new());
                    return Ok(());
                }
                let infer1 = st.infer1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P1Infer".into()))?;
                if st.resilience.degraded && st.prep2.is_none() {
                    // Graceful degradation: P1 metadata-only verdicts
                    // stand for the uncertain columns (α = β semantics).
                    st.finals = Some(infer1.admitted.clone());
                    return Ok(());
                }
                let prep1 = st.prep1.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P1Prep".into()))?;
                let prep2 = st.prep2.as_ref().ok_or_else(|| TasteError::Scheduler("P2Infer before P2Prep".into()))?;
                st.finals = Some(infer_phase2(model, cfg, st.tid, prep1, infer1, prep2, Some(cache)));
            }
        }
        Ok(())
    })();
    if let Err(e) = result {
        st.error = Some(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{Cell, ColumnId, ColumnMeta, RawType, Table, TableMeta};
    use taste_db::LatencyProfile;
    use taste_model::ModelConfig;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn fixture_db(n_tables: usize, latency: LatencyProfile) -> (Arc<Database>, Vec<TableId>) {
        let db = Database::new("d", latency);
        let mut ids = Vec::new();
        for i in 0..n_tables {
            let tid = TableId(0);
            let ncols = 2 + i % 3;
            let columns: Vec<ColumnMeta> = (0..ncols)
                .map(|j| ColumnMeta {
                    id: ColumnId::new(tid, j as u16),
                    name: format!("city{j}"),
                    comment: None,
                    raw_type: RawType::Text,
                    nullable: false,
                    stats: Default::default(),
                    histogram: None,
                })
                .collect();
            let rows = (0..15)
                .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
                .collect();
            let t = Table {
                meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
                columns,
                rows,
                labels: vec![LabelSet::empty(); ncols],
            };
            ids.push(db.create_table(&t).unwrap());
        }
        (db, ids)
    }

    fn engine(cfg: TasteConfig) -> TasteEngine {
        let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
        TasteEngine::new(model, cfg).unwrap()
    }

    #[test]
    fn sequential_and_pipelined_agree() {
        let (db, ids) = fixture_db(6, LatencyProfile::zero());
        let cfg_seq = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let cfg_pipe = TasteConfig { pipelining: true, ..cfg_seq };
        let seq = engine(cfg_seq).detect_batch(&db, &ids).unwrap();
        let pipe = engine(cfg_pipe).detect_batch(&db, &ids).unwrap();
        assert_eq!(seq.tables.len(), pipe.tables.len());
        for (a, b) in seq.tables.iter().zip(&pipe.tables) {
            assert_eq!(a.table, b.table);
            assert_eq!(a.admitted, b.admitted, "pipelining must not change results");
            assert_eq!(a.uncertain_columns, b.uncertain_columns);
        }
        assert_eq!(seq.total_columns, pipe.total_columns);
    }

    #[test]
    fn without_p2_never_scans() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, ..TasteConfig::default().without_p2() };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.ledger.columns_scanned, 0);
        assert_eq!(report.scanned_ratio(), 0.0);
        assert_eq!(report.uncertain_columns(), 0);
    }

    #[test]
    fn wide_band_scans_everything_once() {
        let (db, ids) = fixture_db(4, LatencyProfile::zero());
        let cfg = TasteConfig {
            pipelining: false,
            alpha: 0.0001,
            beta: 0.9999,
            ..Default::default()
        };
        let report = engine(cfg).detect_batch(&db, &ids).unwrap();
        assert_eq!(report.ledger.columns_scanned, report.total_columns);
        assert!((report.scanned_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn caching_toggle_changes_cache_traffic_not_results() {
        let (db, ids) = fixture_db(5, LatencyProfile::zero());
        let base = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let with_cache = engine(base).detect_batch(&db, &ids).unwrap();
        let no_cache_cfg = TasteConfig { caching: false, ..base };
        let without_cache = engine(no_cache_cfg).detect_batch(&db, &ids).unwrap();
        assert!(with_cache.cache_hits > 0, "cache should be hit in P2");
        assert_eq!(without_cache.cache_hits, 0);
        for (a, b) in with_cache.tables.iter().zip(&without_cache.tables) {
            assert_eq!(a.admitted, b.admitted);
        }
    }

    #[test]
    fn pipelined_overlaps_io_and_compute() {
        // With real per-table I/O sleeps, the pipelined engine must beat
        // sequential wall time on a multi-table batch.
        let latency = LatencyProfile {
            query_rtt: Duration::from_millis(4),
            connect: Duration::from_millis(2),
            ..LatencyProfile::zero()
        };
        let (db, ids) = fixture_db(12, latency);
        let cfg_seq = TasteConfig { pipelining: false, alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let seq = engine(cfg_seq).detect_batch(&db, &ids).unwrap();
        let cfg_pipe = TasteConfig { pipelining: true, pool_size: 3, ..cfg_seq };
        let pipe = engine(cfg_pipe).detect_batch(&db, &ids).unwrap();
        assert!(
            pipe.wall_time < seq.wall_time,
            "pipelined {:?} should beat sequential {:?}",
            pipe.wall_time,
            seq.wall_time
        );
    }

    #[test]
    fn detect_batch_on_missing_table_errors() {
        let (db, _) = fixture_db(1, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: false, ..Default::default() };
        let err = engine(cfg).detect_batch(&db, &[TableId(99)]);
        assert!(err.is_err());
    }

    #[test]
    fn pipelined_error_propagates_without_deadlock() {
        // A bad table id mid-batch must fail the batch, not hang the
        // scheduler: later stages of the failed table become no-ops and
        // every other table still runs to completion first.
        let (db, ids) = fixture_db(3, LatencyProfile::zero());
        let cfg = TasteConfig { pipelining: true, pool_size: 2, ..Default::default() };
        let mut with_bad = ids.clone();
        with_bad.insert(1, TableId(42));
        let err = engine(cfg).detect_batch(&db, &with_bad);
        assert!(matches!(err, Err(taste_core::TasteError::NotFound(_))), "{err:?}");
        // The same engine config still works on a clean batch.
        let ok = engine(cfg).detect_batch(&db, &ids);
        assert!(ok.is_ok());
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
        let bad = TasteConfig { alpha: 0.9, beta: 0.1, ..Default::default() };
        assert!(TasteEngine::new(model, bad).is_err());
    }

    #[test]
    fn empty_batch_produces_empty_report() {
        let (db, _) = fixture_db(1, LatencyProfile::zero());
        let report = engine(TasteConfig::default()).detect_batch(&db, &[]).unwrap();
        assert!(report.tables.is_empty());
        assert_eq!(report.total_columns, 0);
    }
}
