//! Detection reports and evaluation.

use crate::retry::RetryStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use taste_core::histogram::Histogram;
use taste_core::{EvalAccumulator, EvalScores, LabelSet, TableId, TableOutcome};
use taste_db::LedgerSnapshot;

/// Per-table fault-handling telemetry: what it cost to get this table's
/// verdicts out of a flaky database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Database operation attempts across the table's stages.
    pub attempts: u32,
    /// Attempts beyond the first per stage (i.e. actual retries).
    pub retries: u32,
    /// Total backoff sleep spent on this table.
    pub backoff: Duration,
    /// Poisoned-connection reconnects performed for this table.
    pub reconnects: u32,
    /// Columns whose final verdicts fell back to P1 metadata-only
    /// inference because the P2 content scan exhausted its retry budget.
    pub degraded_columns: usize,
    /// Whether any stage of this table degraded.
    pub degraded: bool,
    /// Whether the table failed outright (P1 exhausted under `degrade`):
    /// it appears in the report with empty admitted sets.
    pub failed: bool,
}

impl ResilienceSummary {
    /// Folds one stage's retry telemetry into the table summary.
    pub fn absorb(&mut self, stats: &RetryStats) {
        self.attempts += stats.attempts;
        self.retries += stats.retries;
        self.backoff += stats.backoff;
        self.reconnects += stats.reconnects;
    }
}

/// Per-table detection outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    /// Which table.
    pub table: TableId,
    /// Final admitted types per column (`A^c`).
    pub admitted: Vec<LabelSet>,
    /// How many of the table's columns were uncertain after P1.
    pub uncertain_columns: usize,
    /// How the table's pipeline run ended (see the state diagram in
    /// [`taste_core::outcome`]).
    #[serde(default)]
    pub outcome: TableOutcome,
    /// Fault-handling telemetry (all zeros on a clean run).
    #[serde(default)]
    pub resilience: ResilienceSummary,
    /// End-to-end latency of this table from batch start (or admission,
    /// under overload control) to its final outcome. Zero for tables
    /// that never ran (rejected / replayed from a journal without a
    /// recorded latency).
    #[serde(default)]
    pub latency: Duration,
    /// Version of the model this table's verdicts were served on. Zero
    /// when the rollout subsystem is disabled (or for results recorded
    /// before it existed).
    #[serde(default)]
    pub model_version: u64,
}

/// What the overload controller did during one batch: admission
/// accounting, shedding, brownout transitions, and the final AIMD
/// limits. All zeros / empty when overload control is disabled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OverloadSummary {
    /// Whether overload control was enabled for the batch.
    pub enabled: bool,
    /// Tables offered to the admission gate.
    pub submitted: u64,
    /// Tables admitted into the pipeline.
    pub admitted: u64,
    /// Tables rejected at the gate (occupancy bound reached).
    pub rejected: u64,
    /// Tables whose P2 work was shed (P1 verdicts stand).
    pub shed_tables: u64,
    /// High-water mark of the stage-queue depth.
    pub queue_peak: u64,
    /// Distribution of stage time-in-queue (milliseconds), when any
    /// stages were dispatched.
    pub queue_wait_hist: Option<Histogram>,
    /// Times the engine entered brownout mode.
    pub brownout_entries: u64,
    /// Chronological brownout transition log
    /// (`normal->brownout` / `brownout->normal`, with offsets).
    pub transitions: Vec<String>,
    /// Additive concurrency increases applied by the AIMD governor.
    pub aimd_increases: u64,
    /// Multiplicative concurrency decreases applied by the AIMD governor.
    pub aimd_decreases: u64,
    /// Effective TP1 (prep pool) parallelism at batch end.
    pub final_tp1_limit: u64,
    /// Effective TP2 (inference pool) parallelism at batch end.
    pub final_tp2_limit: u64,
    /// Effective per-database connection budget at batch end.
    pub final_conn_limit: u64,
}

/// One inference phase's micro-batching telemetry: how many batches the
/// planner flushed, how full they were, and which trigger flushed them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBatchingSummary {
    /// Micro-batches flushed for this phase.
    pub batches: u64,
    /// Table-stages that executed inside a batch (live members only;
    /// shed/cancelled members are routed to the per-table path and do
    /// not count).
    pub batched_tables: u64,
    /// Columns that executed inside a batch (total columns for P1,
    /// uncertain columns for P2).
    pub batched_columns: u64,
    /// Mean fill ratio (batch columns over `max_batch_columns`; can
    /// exceed 1.0 when a single table is wider than the budget).
    pub mean_fill: f64,
    /// 95th-percentile fill ratio.
    pub p95_fill: f64,
    /// Batches flushed because the column budget filled.
    pub size_flushes: u64,
    /// Batches flushed because the oldest item hit the flush deadline.
    pub deadline_flushes: u64,
    /// Batches flushed because the pipeline ran dry.
    pub drain_flushes: u64,
}

/// Micro-batching telemetry for the batch. All zeros when batching is
/// disabled or the engine ran sequentially.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchingSummary {
    /// Whether cross-table micro-batching was active for this run.
    pub enabled: bool,
    /// Phase-1 (metadata-tower) batching telemetry.
    pub p1: PhaseBatchingSummary,
    /// Phase-2 (content-tower) batching telemetry.
    pub p2: PhaseBatchingSummary,
}

/// The outcome of one end-to-end detection batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Label of the approach that produced this report (for harnesses).
    pub approach: String,
    /// Per-table results, in batch order.
    pub tables: Vec<TableResult>,
    /// End-to-end wall-clock time of the batch (connection management,
    /// metadata fetches, content scans, and inference — §2.2's
    /// end-to-end execution time metric).
    pub wall_time: Duration,
    /// Intrusiveness counters accumulated during the batch.
    pub ledger: LedgerSnapshot,
    /// Total columns processed.
    pub total_columns: u64,
    /// Latent cache hits/misses during the batch (zeros for baselines).
    pub cache_hits: u64,
    /// Latent cache misses during the batch.
    pub cache_misses: u64,
    /// Times the per-database circuit breaker tripped during the batch.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Chronological circuit-breaker transition log for the batch.
    #[serde(default)]
    pub breaker_transitions: Vec<String>,
    /// Tables whose results were replayed from a journal (resume runs).
    #[serde(default)]
    pub replayed_tables: u64,
    /// Journal records quarantined on replay (checksum or decode
    /// failure); the tables they covered were re-run.
    #[serde(default)]
    pub journal_corrupt_records: u64,
    /// Whether replay found and truncated a torn journal tail.
    #[serde(default)]
    pub journal_torn_tail: bool,
    /// Latent-cache entries quarantined on restore (checksum failure).
    #[serde(default)]
    pub cache_corrupt_entries: u64,
    /// Overload-control telemetry (admission, shedding, brownout, AIMD).
    #[serde(default)]
    pub overload: OverloadSummary,
    /// Cross-table micro-batching telemetry (batch counts, fill ratios,
    /// flush-reason histogram).
    #[serde(default)]
    pub batching: BatchingSummary,
    /// Hot model reload activity: versions served, canary gate verdicts,
    /// promotions and rollbacks (disabled default when rollout is off).
    #[serde(default)]
    pub rollout: crate::rollout::RolloutSummary,
}

impl DetectionReport {
    /// The Fig. 5 metric: columns whose content was read over all
    /// columns processed.
    pub fn scanned_ratio(&self) -> f64 {
        self.ledger.scanned_ratio(self.total_columns)
    }

    /// Number of columns the framework flagged as uncertain after P1.
    pub fn uncertain_columns(&self) -> usize {
        self.tables.iter().map(|t| t.uncertain_columns).sum()
    }

    /// Flattened admitted sets in (table, ordinal) order.
    pub fn all_admitted(&self) -> impl Iterator<Item = &LabelSet> {
        self.tables.iter().flat_map(|t| t.admitted.iter())
    }

    /// Columns that fell back to P1-only verdicts under faults.
    pub fn degraded_columns(&self) -> usize {
        self.tables.iter().map(|t| t.resilience.degraded_columns).sum()
    }

    /// Tables with at least one degraded stage (including failed tables).
    pub fn degraded_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.resilience.degraded || t.resilience.failed).count()
    }

    /// Total database-operation retries across the batch.
    pub fn total_retries(&self) -> u32 {
        self.tables.iter().map(|t| t.resilience.retries).sum()
    }

    /// Total backoff sleep across the batch.
    pub fn total_backoff(&self) -> Duration {
        self.tables.iter().map(|t| t.resilience.backoff).sum()
    }

    /// Tables whose pipeline panicked in some stage (isolated, batch
    /// unaffected).
    pub fn panicked_tables(&self) -> usize {
        self.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::Panicked { .. })).count()
    }

    /// Tables abandoned by the watchdog for exceeding a stage deadline.
    pub fn timed_out_tables(&self) -> usize {
        self.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::TimedOut { .. })).count()
    }

    /// Tables cancelled before reaching any final outcome (batch
    /// deadline or deliberate halt); a resumed run re-processes these.
    pub fn cancelled_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.outcome == TableOutcome::Cancelled).count()
    }

    /// Tables whose P2 work the overload controller shed: their verdicts
    /// are the P1 metadata-only verdicts.
    pub fn shed_tables(&self) -> usize {
        self.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::Shed { .. })).count()
    }

    /// Tables refused by the admission gate; they never ran and carry
    /// empty verdicts (a resumed run re-submits them).
    pub fn rejected_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.outcome == TableOutcome::Rejected).count()
    }

    /// Tables that reached a final outcome within `budget` of their
    /// admission — the numerator of a goodput-under-deadline metric.
    pub fn tables_within(&self, budget: Duration) -> usize {
        self.tables
            .iter()
            .filter(|t| t.outcome.is_final() && !t.latency.is_zero() && t.latency <= budget)
            .count()
    }
}

/// Scores a report against ground truth (`truth[table.0][ordinal]`),
/// producing the micro precision/recall/F1 of Tables 3 and 4.
///
/// Tables that never produced verdicts — refused by the admission gate,
/// cancelled mid-batch, or failed after exhausting their retry budget —
/// carry empty verdict sets and are skipped here; they are accounted by
/// the report's outcome counters, not its fidelity scores.
pub fn evaluate_report(report: &DetectionReport, truth: &[Vec<LabelSet>], ntypes: usize) -> EvalScores {
    let mut acc = EvalAccumulator::new(ntypes);
    for tr in &report.tables {
        if tr.admitted.is_empty() {
            continue;
        }
        let table_truth = &truth[tr.table.0 as usize];
        assert_eq!(
            table_truth.len(),
            tr.admitted.len(),
            "truth/result column count mismatch for table {}",
            tr.table.0
        );
        for (pred, gt) in tr.admitted.iter().zip(table_truth) {
            acc.observe(pred, gt);
        }
    }
    acc.scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::TypeId;

    fn ls(ids: &[u32]) -> LabelSet {
        LabelSet::from_iter(ids.iter().map(|&i| TypeId(i)))
    }

    fn report() -> DetectionReport {
        DetectionReport {
            approach: "test".into(),
            tables: vec![
                TableResult {
                    table: TableId(0),
                    admitted: vec![ls(&[1]), ls(&[])],
                    uncertain_columns: 1,
                    outcome: TableOutcome::Completed,
                    resilience: ResilienceSummary::default(),
                    latency: Duration::from_millis(2),
                    model_version: 0,
                },
                TableResult {
                    table: TableId(1),
                    admitted: vec![ls(&[2])],
                    uncertain_columns: 0,
                    outcome: TableOutcome::Completed,
                    resilience: ResilienceSummary::default(),
                    latency: Duration::from_millis(4),
                    model_version: 0,
                },
            ],
            wall_time: Duration::from_millis(5),
            ledger: LedgerSnapshot { columns_scanned: 1, ..Default::default() },
            total_columns: 3,
            cache_hits: 0,
            cache_misses: 0,
            breaker_trips: 0,
            breaker_transitions: Vec::new(),
            replayed_tables: 0,
            journal_corrupt_records: 0,
            journal_torn_tail: false,
            cache_corrupt_entries: 0,
            overload: OverloadSummary::default(),
            batching: BatchingSummary::default(),
            rollout: crate::rollout::RolloutSummary::default(),
        }
    }

    #[test]
    fn scanned_ratio_uses_ledger_over_total() {
        let r = report();
        assert!((r.scanned_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.uncertain_columns(), 1);
        assert_eq!(r.all_admitted().count(), 3);
    }

    #[test]
    fn evaluation_against_truth() {
        let r = report();
        let truth = vec![
            vec![ls(&[1]), ls(&[])],  // table 0: both correct
            vec![ls(&[3])],           // table 1: wrong type
        ];
        let scores = evaluate_report(&r, &truth, 5);
        // TP: type1 + background = 2; FP: type2; FN: type3.
        assert!((scores.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores.recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn evaluation_rejects_misaligned_truth() {
        let r = report();
        let truth = vec![vec![ls(&[1])], vec![ls(&[3])]];
        let _ = evaluate_report(&r, &truth, 5);
    }

    #[test]
    fn evaluation_skips_verdictless_tables() {
        let mut r = report();
        r.tables.push(TableResult {
            table: TableId(2),
            admitted: Vec::new(),
            uncertain_columns: 0,
            outcome: TableOutcome::Rejected,
            resilience: ResilienceSummary::default(),
            latency: Duration::ZERO,
            model_version: 0,
        });
        // Table 2's truth has columns, but the rejected table carries no
        // verdicts: it must not panic the evaluation or move the scores.
        let truth = vec![
            vec![ls(&[1]), ls(&[])],
            vec![ls(&[3])],
            vec![ls(&[1]), ls(&[2]), ls(&[3])],
        ];
        let scores = evaluate_report(&r, &truth, 5);
        assert!((scores.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores.recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn resilience_rollups() {
        let mut r = report();
        r.tables[0].resilience = ResilienceSummary {
            attempts: 6,
            retries: 4,
            backoff: Duration::from_millis(12),
            reconnects: 1,
            degraded_columns: 2,
            degraded: true,
            failed: false,
        };
        assert_eq!(r.degraded_columns(), 2);
        assert_eq!(r.degraded_tables(), 1);
        assert_eq!(r.total_retries(), 4);
        assert_eq!(r.total_backoff(), Duration::from_millis(12));
    }

    #[test]
    fn outcome_rollups_count_each_kind() {
        let mut r = report();
        r.tables[0].outcome = TableOutcome::Panicked { stage: "P1Infer".into(), payload: "boom".into() };
        r.tables[1].outcome = TableOutcome::TimedOut { stage: "P2Prep".into() };
        r.tables.push(TableResult {
            table: TableId(2),
            admitted: Vec::new(),
            uncertain_columns: 0,
            outcome: TableOutcome::Cancelled,
            resilience: ResilienceSummary::default(),
            latency: Duration::ZERO,
            model_version: 0,
        });
        assert_eq!(r.panicked_tables(), 1);
        assert_eq!(r.timed_out_tables(), 1);
        assert_eq!(r.cancelled_tables(), 1);
    }

    #[test]
    fn overload_rollups_and_latency_goodput() {
        use taste_core::ShedReason;
        let mut r = report();
        r.tables[0].outcome = TableOutcome::Shed { reason: ShedReason::QueuePressure };
        r.tables.push(TableResult {
            table: TableId(2),
            admitted: Vec::new(),
            uncertain_columns: 0,
            outcome: TableOutcome::Rejected,
            resilience: ResilienceSummary::default(),
            latency: Duration::ZERO,
            model_version: 0,
        });
        assert_eq!(r.shed_tables(), 1);
        assert_eq!(r.rejected_tables(), 1);
        // Goodput under a 3ms budget: table 0 (2ms, shed but final)
        // counts; table 1 (4ms) misses; table 2 never ran.
        assert_eq!(r.tables_within(Duration::from_millis(3)), 1);
        assert_eq!(r.tables_within(Duration::from_millis(10)), 2);
    }

    #[test]
    fn overload_summary_serde_defaults() {
        // Reports serialized before the overload subsystem deserialize to
        // the disabled default, and the summary roundtrips.
        let r = report();
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut().unwrap().remove("overload");
        let restored: DetectionReport = serde_json::from_value(v).unwrap();
        assert_eq!(restored.overload, OverloadSummary::default());
        assert!(!restored.overload.enabled);
        let s = OverloadSummary {
            enabled: true,
            submitted: 10,
            admitted: 7,
            rejected: 3,
            shed_tables: 2,
            queue_peak: 5,
            transitions: vec!["normal->brownout @1.0ms".into()],
            brownout_entries: 1,
            ..Default::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: OverloadSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn batching_summary_serde_defaults() {
        // Reports serialized before the batching subsystem deserialize to
        // the zeroed default, and a populated summary roundtrips.
        let r = report();
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut().unwrap().remove("batching");
        let restored: DetectionReport = serde_json::from_value(v).unwrap();
        assert_eq!(restored.batching, BatchingSummary::default());
        assert!(!restored.batching.enabled);
        let s = BatchingSummary {
            enabled: true,
            p1: PhaseBatchingSummary {
                batches: 4,
                batched_tables: 9,
                batched_columns: 31,
                mean_fill: 0.75,
                p95_fill: 1.0,
                size_flushes: 3,
                deadline_flushes: 1,
                drain_flushes: 0,
            },
            p2: PhaseBatchingSummary::default(),
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: BatchingSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn rollout_summary_serde_defaults() {
        use crate::rollout::{EpisodeOutcome, GateVerdicts, RolloutEpisode, RolloutSummary};
        // Reports serialized before the rollout subsystem deserialize to
        // the disabled default (and model_version to 0), and a populated
        // summary roundtrips.
        let r = report();
        let mut v = serde_json::to_value(&r).unwrap();
        v.as_object_mut().unwrap().remove("rollout");
        let restored: DetectionReport = serde_json::from_value(v).unwrap();
        assert_eq!(restored.rollout, RolloutSummary::default());
        assert!(!restored.rollout.enabled);
        let mut tv = serde_json::to_value(&r.tables[0]).unwrap();
        tv.as_object_mut().unwrap().remove("model_version");
        let tr: TableResult = serde_json::from_value(tv).unwrap();
        assert_eq!(tr.model_version, 0);
        let s = RolloutSummary {
            enabled: true,
            initial_version: 1,
            final_version: 2,
            candidates_offered: 2,
            rejected_artifacts: 1,
            promotions: 1,
            rollbacks: 1,
            episodes: vec![RolloutEpisode {
                candidate_version: 2,
                incumbent_version: 1,
                gates: GateVerdicts { canary_tables: 4, agreement: 0.97, ..Default::default() },
                outcome: EpisodeOutcome::Promoted,
                cause: None,
            }],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: RolloutSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn resilience_absorbs_stage_stats() {
        use crate::retry::RetryStats;
        let mut s = ResilienceSummary::default();
        s.absorb(&RetryStats {
            attempts: 3,
            retries: 2,
            backoff: Duration::from_millis(4),
            reconnects: 1,
        });
        s.absorb(&RetryStats { attempts: 1, ..Default::default() });
        assert_eq!(s.attempts, 4);
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff, Duration::from_millis(4));
        assert_eq!(s.reconnects, 1);
        assert!(!s.degraded && !s.failed);
    }
}
