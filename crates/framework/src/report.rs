//! Detection reports and evaluation.

use crate::retry::RetryStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use taste_core::{EvalAccumulator, EvalScores, LabelSet, TableId, TableOutcome};
use taste_db::LedgerSnapshot;

/// Per-table fault-handling telemetry: what it cost to get this table's
/// verdicts out of a flaky database.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResilienceSummary {
    /// Database operation attempts across the table's stages.
    pub attempts: u32,
    /// Attempts beyond the first per stage (i.e. actual retries).
    pub retries: u32,
    /// Total backoff sleep spent on this table.
    pub backoff: Duration,
    /// Poisoned-connection reconnects performed for this table.
    pub reconnects: u32,
    /// Columns whose final verdicts fell back to P1 metadata-only
    /// inference because the P2 content scan exhausted its retry budget.
    pub degraded_columns: usize,
    /// Whether any stage of this table degraded.
    pub degraded: bool,
    /// Whether the table failed outright (P1 exhausted under `degrade`):
    /// it appears in the report with empty admitted sets.
    pub failed: bool,
}

impl ResilienceSummary {
    /// Folds one stage's retry telemetry into the table summary.
    pub fn absorb(&mut self, stats: &RetryStats) {
        self.attempts += stats.attempts;
        self.retries += stats.retries;
        self.backoff += stats.backoff;
        self.reconnects += stats.reconnects;
    }
}

/// Per-table detection outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableResult {
    /// Which table.
    pub table: TableId,
    /// Final admitted types per column (`A^c`).
    pub admitted: Vec<LabelSet>,
    /// How many of the table's columns were uncertain after P1.
    pub uncertain_columns: usize,
    /// How the table's pipeline run ended (see the state diagram in
    /// [`taste_core::outcome`]).
    #[serde(default)]
    pub outcome: TableOutcome,
    /// Fault-handling telemetry (all zeros on a clean run).
    #[serde(default)]
    pub resilience: ResilienceSummary,
}

/// The outcome of one end-to-end detection batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Label of the approach that produced this report (for harnesses).
    pub approach: String,
    /// Per-table results, in batch order.
    pub tables: Vec<TableResult>,
    /// End-to-end wall-clock time of the batch (connection management,
    /// metadata fetches, content scans, and inference — §2.2's
    /// end-to-end execution time metric).
    pub wall_time: Duration,
    /// Intrusiveness counters accumulated during the batch.
    pub ledger: LedgerSnapshot,
    /// Total columns processed.
    pub total_columns: u64,
    /// Latent cache hits/misses during the batch (zeros for baselines).
    pub cache_hits: u64,
    /// Latent cache misses during the batch.
    pub cache_misses: u64,
    /// Times the per-database circuit breaker tripped during the batch.
    #[serde(default)]
    pub breaker_trips: u64,
    /// Chronological circuit-breaker transition log for the batch.
    #[serde(default)]
    pub breaker_transitions: Vec<String>,
    /// Tables whose results were replayed from a journal (resume runs).
    #[serde(default)]
    pub replayed_tables: u64,
    /// Journal records quarantined on replay (checksum or decode
    /// failure); the tables they covered were re-run.
    #[serde(default)]
    pub journal_corrupt_records: u64,
    /// Whether replay found and truncated a torn journal tail.
    #[serde(default)]
    pub journal_torn_tail: bool,
    /// Latent-cache entries quarantined on restore (checksum failure).
    #[serde(default)]
    pub cache_corrupt_entries: u64,
}

impl DetectionReport {
    /// The Fig. 5 metric: columns whose content was read over all
    /// columns processed.
    pub fn scanned_ratio(&self) -> f64 {
        self.ledger.scanned_ratio(self.total_columns)
    }

    /// Number of columns the framework flagged as uncertain after P1.
    pub fn uncertain_columns(&self) -> usize {
        self.tables.iter().map(|t| t.uncertain_columns).sum()
    }

    /// Flattened admitted sets in (table, ordinal) order.
    pub fn all_admitted(&self) -> impl Iterator<Item = &LabelSet> {
        self.tables.iter().flat_map(|t| t.admitted.iter())
    }

    /// Columns that fell back to P1-only verdicts under faults.
    pub fn degraded_columns(&self) -> usize {
        self.tables.iter().map(|t| t.resilience.degraded_columns).sum()
    }

    /// Tables with at least one degraded stage (including failed tables).
    pub fn degraded_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.resilience.degraded || t.resilience.failed).count()
    }

    /// Total database-operation retries across the batch.
    pub fn total_retries(&self) -> u32 {
        self.tables.iter().map(|t| t.resilience.retries).sum()
    }

    /// Total backoff sleep across the batch.
    pub fn total_backoff(&self) -> Duration {
        self.tables.iter().map(|t| t.resilience.backoff).sum()
    }

    /// Tables whose pipeline panicked in some stage (isolated, batch
    /// unaffected).
    pub fn panicked_tables(&self) -> usize {
        self.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::Panicked { .. })).count()
    }

    /// Tables abandoned by the watchdog for exceeding a stage deadline.
    pub fn timed_out_tables(&self) -> usize {
        self.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::TimedOut { .. })).count()
    }

    /// Tables cancelled before reaching any final outcome (batch
    /// deadline or deliberate halt); a resumed run re-processes these.
    pub fn cancelled_tables(&self) -> usize {
        self.tables.iter().filter(|t| t.outcome == TableOutcome::Cancelled).count()
    }
}

/// Scores a report against ground truth (`truth[table.0][ordinal]`),
/// producing the micro precision/recall/F1 of Tables 3 and 4.
pub fn evaluate_report(report: &DetectionReport, truth: &[Vec<LabelSet>], ntypes: usize) -> EvalScores {
    let mut acc = EvalAccumulator::new(ntypes);
    for tr in &report.tables {
        let table_truth = &truth[tr.table.0 as usize];
        assert_eq!(
            table_truth.len(),
            tr.admitted.len(),
            "truth/result column count mismatch for table {}",
            tr.table.0
        );
        for (pred, gt) in tr.admitted.iter().zip(table_truth) {
            acc.observe(pred, gt);
        }
    }
    acc.scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::TypeId;

    fn ls(ids: &[u32]) -> LabelSet {
        LabelSet::from_iter(ids.iter().map(|&i| TypeId(i)))
    }

    fn report() -> DetectionReport {
        DetectionReport {
            approach: "test".into(),
            tables: vec![
                TableResult {
                    table: TableId(0),
                    admitted: vec![ls(&[1]), ls(&[])],
                    uncertain_columns: 1,
                    outcome: TableOutcome::Completed,
                    resilience: ResilienceSummary::default(),
                },
                TableResult {
                    table: TableId(1),
                    admitted: vec![ls(&[2])],
                    uncertain_columns: 0,
                    outcome: TableOutcome::Completed,
                    resilience: ResilienceSummary::default(),
                },
            ],
            wall_time: Duration::from_millis(5),
            ledger: LedgerSnapshot { columns_scanned: 1, ..Default::default() },
            total_columns: 3,
            cache_hits: 0,
            cache_misses: 0,
            breaker_trips: 0,
            breaker_transitions: Vec::new(),
            replayed_tables: 0,
            journal_corrupt_records: 0,
            journal_torn_tail: false,
            cache_corrupt_entries: 0,
        }
    }

    #[test]
    fn scanned_ratio_uses_ledger_over_total() {
        let r = report();
        assert!((r.scanned_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.uncertain_columns(), 1);
        assert_eq!(r.all_admitted().count(), 3);
    }

    #[test]
    fn evaluation_against_truth() {
        let r = report();
        let truth = vec![
            vec![ls(&[1]), ls(&[])],  // table 0: both correct
            vec![ls(&[3])],           // table 1: wrong type
        ];
        let scores = evaluate_report(&r, &truth, 5);
        // TP: type1 + background = 2; FP: type2; FN: type3.
        assert!((scores.precision - 2.0 / 3.0).abs() < 1e-9);
        assert!((scores.recall - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn evaluation_rejects_misaligned_truth() {
        let r = report();
        let truth = vec![vec![ls(&[1])], vec![ls(&[3])]];
        let _ = evaluate_report(&r, &truth, 5);
    }

    #[test]
    fn resilience_rollups() {
        let mut r = report();
        r.tables[0].resilience = ResilienceSummary {
            attempts: 6,
            retries: 4,
            backoff: Duration::from_millis(12),
            reconnects: 1,
            degraded_columns: 2,
            degraded: true,
            failed: false,
        };
        assert_eq!(r.degraded_columns(), 2);
        assert_eq!(r.degraded_tables(), 1);
        assert_eq!(r.total_retries(), 4);
        assert_eq!(r.total_backoff(), Duration::from_millis(12));
    }

    #[test]
    fn outcome_rollups_count_each_kind() {
        let mut r = report();
        r.tables[0].outcome = TableOutcome::Panicked { stage: "P1Infer".into(), payload: "boom".into() };
        r.tables[1].outcome = TableOutcome::TimedOut { stage: "P2Prep".into() };
        r.tables.push(TableResult {
            table: TableId(2),
            admitted: Vec::new(),
            uncertain_columns: 0,
            outcome: TableOutcome::Cancelled,
            resilience: ResilienceSummary::default(),
        });
        assert_eq!(r.panicked_tables(), 1);
        assert_eq!(r.timed_out_tables(), 1);
        assert_eq!(r.cancelled_tables(), 1);
    }

    #[test]
    fn resilience_absorbs_stage_stats() {
        use crate::retry::RetryStats;
        let mut s = ResilienceSummary::default();
        s.absorb(&RetryStats {
            attempts: 3,
            retries: 2,
            backoff: Duration::from_millis(4),
            reconnects: 1,
        });
        s.absorb(&RetryStats { attempts: 1, ..Default::default() });
        assert_eq!(s.attempts, 4);
        assert_eq!(s.retries, 2);
        assert_eq!(s.backoff, Duration::from_millis(4));
        assert_eq!(s.reconnects, 1);
        assert!(!s.degraded && !s.failed);
    }
}
