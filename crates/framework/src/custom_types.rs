//! User-defined semantic types (the paper's third future-work direction,
//! §8): tenants plug domain-specific types into the detection output
//! without touching the DL model.
//!
//! A custom type is a named validator — a shape pattern, a dictionary,
//! or a checksum — plus a minimum match fraction. Custom detection runs
//! over column content and *fuses* into a [`DetectionReport`]: custom
//! type ids live above the model's domain, so they never collide with
//! learned types and the model's decisions are untouched.
//!
//! Because validators need content, the fusion pass is an explicit
//! opt-in scan (it charges the intrusiveness ledger like any other
//! read); tenants who run it typically restrict it to the tables they
//! care about.

use crate::report::DetectionReport;
use rustc_hash::FxHashSet;
use std::sync::Arc;
use taste_core::{Result, TasteError, TypeId};
use taste_db::{Database, ScanMethod};

/// How a custom type recognizes its values.
#[derive(Debug, Clone)]
pub enum Validator {
    /// Shape pattern over characters: `#` matches a digit, `@` a letter,
    /// `?` any single character, `+` repeats the previous class one or
    /// more times, anything else matches literally.
    /// Example: `"##-@@@-####"` or `"978-#+"`.
    Pattern(String),
    /// Case-insensitive dictionary membership.
    Dictionary(FxHashSet<String>),
    /// Digits-only string passing the Luhn checksum (payment cards).
    Luhn,
}

impl Validator {
    /// Whether one rendered cell value satisfies the validator.
    pub fn matches(&self, value: &str) -> bool {
        match self {
            Validator::Pattern(p) => pattern_matches(p, value),
            Validator::Dictionary(words) => words.contains(&value.to_ascii_lowercase()),
            Validator::Luhn => luhn_valid(value),
        }
    }
}

fn class_matches(class: char, c: char) -> bool {
    match class {
        '#' => c.is_ascii_digit(),
        '@' => c.is_ascii_alphabetic(),
        '?' => true,
        literal => literal == c,
    }
}

/// Matches the shape pattern against the whole value.
fn pattern_matches(pattern: &str, value: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let val: Vec<char> = value.chars().collect();

    fn go(pat: &[char], val: &[char]) -> bool {
        match pat {
            [] => val.is_empty(),
            [class, '+', rest @ ..] => {
                // One or more of `class`, then the rest (greedy with
                // backtracking).
                if val.is_empty() || !class_matches(*class, val[0]) {
                    return false;
                }
                let mut taken = 1;
                while taken < val.len() && class_matches(*class, val[taken]) {
                    taken += 1;
                }
                while taken >= 1 {
                    if go(rest, &val[taken..]) {
                        return true;
                    }
                    taken -= 1;
                }
                false
            }
            [class, rest @ ..] => {
                !val.is_empty() && class_matches(*class, val[0]) && go(rest, &val[1..])
            }
        }
    }
    go(&pat, &val)
}

fn luhn_valid(value: &str) -> bool {
    if value.len() < 2 || !value.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let mut sum = 0u32;
    for (i, b) in value.bytes().rev().enumerate() {
        let mut v = u32::from(b - b'0');
        if i % 2 == 1 {
            v *= 2;
            if v > 9 {
                v -= 9;
            }
        }
        sum += v;
    }
    sum.is_multiple_of(10)
}

/// One registered custom type.
#[derive(Debug, Clone)]
pub struct CustomType {
    /// Assigned type id (above the model's domain).
    pub id: TypeId,
    /// Display name (e.g. `custom.employee_badge`).
    pub name: String,
    /// The recognizer.
    pub validator: Validator,
    /// Minimum fraction of non-empty sampled values that must match.
    pub min_match_frac: f64,
}

/// A set of tenant-defined types sharing an id space above the model's.
#[derive(Debug, Clone, Default)]
pub struct CustomTypeSet {
    base: u32,
    types: Vec<CustomType>,
}

impl CustomTypeSet {
    /// Creates a set whose ids start at `model_ntypes` (the first id the
    /// learned domain does not use).
    pub fn new(model_ntypes: usize) -> CustomTypeSet {
        CustomTypeSet { base: model_ntypes as u32, types: Vec::new() }
    }

    /// Registers a custom type, returning its id.
    pub fn register(&mut self, name: impl Into<String>, validator: Validator, min_match_frac: f64) -> TypeId {
        let id = TypeId(self.base + self.types.len() as u32);
        self.types.push(CustomType {
            id,
            name: name.into(),
            validator,
            min_match_frac: min_match_frac.clamp(0.0, 1.0),
        });
        id
    }

    /// Registered types.
    pub fn types(&self) -> &[CustomType] {
        &self.types
    }

    /// Detects which custom types a column's sampled values satisfy.
    pub fn detect(&self, values: &[String]) -> Vec<TypeId> {
        let non_empty: Vec<&String> = values.iter().filter(|v| !v.is_empty()).collect();
        if non_empty.is_empty() {
            return Vec::new();
        }
        self.types
            .iter()
            .filter(|t| {
                let hits = non_empty.iter().filter(|v| t.validator.matches(v)).count();
                hits as f64 / non_empty.len() as f64 >= t.min_match_frac
            })
            .map(|t| t.id)
            .collect()
    }

    /// Looks a custom type up by id.
    pub fn name_of(&self, id: TypeId) -> Option<&str> {
        self.types.iter().find(|t| t.id == id).map(|t| t.name.as_str())
    }
}

/// Scans the given tables (an explicit, ledger-charged audit pass) and
/// fuses detected custom types into the report's admitted sets.
/// Returns the number of (column, custom type) additions.
pub fn fuse_custom_types(
    report: &mut DetectionReport,
    db: &Arc<Database>,
    set: &CustomTypeSet,
    m: usize,
    n: usize,
) -> Result<usize> {
    if set.types().is_empty() {
        return Ok(0);
    }
    let conn = db.connect();
    let mut additions = 0usize;
    for tr in &mut report.tables {
        let ncols = tr.admitted.len();
        if ncols == 0 {
            continue;
        }
        let ordinals: Vec<u16> = (0..ncols as u16).collect();
        let rows = conn.scan_columns(tr.table, &ordinals, ScanMethod::FirstM { m })?;
        for (j, admitted) in tr.admitted.iter_mut().enumerate() {
            let values: Vec<String> = rows
                .iter()
                .filter_map(|r| {
                    let cell = &r[j];
                    (!cell.is_empty()).then(|| cell.render())
                })
                .take(n)
                .collect();
            for id in set.detect(&values) {
                if admitted.insert(id) {
                    additions += 1;
                }
            }
        }
    }
    report.ledger = db.ledger().snapshot();
    Ok(additions)
}

/// Errors if a custom id would collide with the learned domain.
pub fn check_no_collision(set: &CustomTypeSet, model_ntypes: usize) -> Result<()> {
    if set.base < model_ntypes as u32 {
        return Err(TasteError::invalid(format!(
            "custom type ids start at {} but the model domain extends to {}",
            set.base, model_ntypes
        )));
    }
    Ok(())
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_classes_and_literals() {
        assert!(pattern_matches("##-@@", "42-ab"));
        assert!(!pattern_matches("##-@@", "4a-ab"));
        assert!(!pattern_matches("##-@@", "42-ab3"));
        assert!(pattern_matches("???", "x7-"));
        assert!(pattern_matches("", ""));
        assert!(!pattern_matches("", "x"));
    }

    #[test]
    fn pattern_plus_repeats_with_backtracking() {
        assert!(pattern_matches("#+", "12345"));
        assert!(!pattern_matches("#+", ""));
        assert!(!pattern_matches("#+", "12a"));
        assert!(pattern_matches("978-#+", "978-0306406157"));
        // Backtracking: #+ must not swallow the trailing digit-literal.
        assert!(pattern_matches("#+0", "1230"));
        assert!(pattern_matches("@+#+", "abc123"));
        assert!(!pattern_matches("@+#+", "abc"));
    }

    #[test]
    fn luhn_validator() {
        assert!(luhn_valid("79927398713"));
        assert!(!luhn_valid("79927398710"));
        assert!(!luhn_valid("archer"));
        assert!(!luhn_valid("7"));
    }

    #[test]
    fn dictionary_is_case_insensitive() {
        let mut words = FxHashSet::default();
        words.insert("alpha".to_string());
        let v = Validator::Dictionary(words);
        assert!(v.matches("ALPHA"));
        assert!(v.matches("alpha"));
        assert!(!v.matches("beta"));
    }

    #[test]
    fn detect_respects_match_fraction() {
        let mut set = CustomTypeSet::new(68);
        let badge = set.register("custom.badge", Validator::Pattern("@##".into()), 0.8);
        assert_eq!(badge, TypeId(68));
        let mostly: Vec<String> = vec!["a12".into(), "b34".into(), "c56".into(), "junk".into()];
        // 3/4 = 0.75 < 0.8 -> no detection.
        assert!(set.detect(&mostly).is_empty());
        let clean: Vec<String> = vec!["a12".into(), "b34".into(), "c56".into()];
        assert_eq!(set.detect(&clean), vec![badge]);
        assert!(set.detect(&[]).is_empty());
        assert_eq!(set.name_of(badge), Some("custom.badge"));
        assert_eq!(set.name_of(TypeId(5)), None);
    }

    #[test]
    fn ids_never_collide_with_model_domain() {
        let mut set = CustomTypeSet::new(68);
        set.register("a", Validator::Luhn, 0.9);
        set.register("b", Validator::Pattern("#".into()), 0.9);
        assert!(check_no_collision(&set, 68).is_ok());
        let low = CustomTypeSet::new(10);
        assert!(check_no_collision(&low, 68).is_err());
        assert!(set.types().iter().all(|t| t.id.0 >= 68));
    }
}
