//! Overload control: admission, backpressure, load shedding, adaptive
//! concurrency, and brownout for the pipelined engine.
//!
//! PRs 4–5 hardened the engine against *downstream* faults (RDS
//! failures) and *internal* faults (panics, hangs, crashes). This module
//! hardens it against the third failure class: **load**. Without it, the
//! Algorithm 1 scheduler enqueues every table of every batch into an
//! unbounded stage queue, so offered load beyond pool capacity degrades
//! *every* table at once — queueing delay grows without bound until the
//! watchdog starts killing work indiscriminately. With it, overload
//! degrades *some* tables gracefully, in a fixed cheapest-first order:
//!
//! 1. **Bounded admission** — a [`LoadController`] holds an in-flight
//!    table budget (`max_in_flight`) plus a bounded admission queue
//!    (`max_queued`). A batch submits each table through
//!    [`LoadController::offer`]; beyond the combined bound the table is
//!    rejected up front ([`taste_core::TableOutcome::Rejected`], surfaced
//!    to strict callers as the non-retryable
//!    [`taste_core::TasteError::Overloaded`]).
//! 2. **Deadline-aware shedding** — every admitted table is stamped with
//!    an admission time and optional deadline. The controller watches the
//!    time-in-queue of dequeued stages against a target (CoDel-style:
//!    *sustained* standing queue above `queue_target` for `queue_window`
//!    means overload, momentary spikes do not). Under overload the engine
//!    sheds the cheapest work first: P2 stages are dropped so uncertain
//!    columns fall back to their P1 metadata-only verdicts
//!    ([`taste_core::TableOutcome::Shed`]), long before whole tables are
//!    rejected.
//! 3. **Adaptive concurrency** — effective TP1/TP2 parallelism and the
//!    per-database connection budget are tuned by AIMD: +1 worker per
//!    `increase_every` clean stages, multiplicative cut on failure or
//!    overload (at most once per `aimd_window`), clamped to
//!    `[min_workers, pool_size]`. A throttling or degraded RDS therefore
//!    narrows admission automatically instead of piling up retries.
//! 4. **Brownout** — overload sustained for `brownout_after` flips a
//!    sticky state that forces P2 off for new admissions. Every
//!    `brownout_probe_every`-th admission keeps P2 on as a *probe*;
//!    `brownout_exit_probes` consecutive successful probes exit brownout.
//!    All transitions are recorded and rolled into the report's
//!    [`crate::report::OverloadSummary`].
//!
//! Time is passed in explicitly (`now: Instant`) so the controller's
//! decisions are a pure function of the observation schedule — the
//! property tests drive it with synthetic schedules and the engine passes
//! the wall clock.

use crate::report::OverloadSummary;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use taste_core::histogram::Histogram;
use taste_core::{Result, ShedReason, TasteError};

/// Maximum queue-wait samples retained for the report histogram.
const MAX_WAIT_SAMPLES: usize = 8192;

/// Buckets in the queue-wait histogram rolled into the report.
const WAIT_HIST_BUCKETS: usize = 12;

/// Overload-control policy knobs.
///
/// Disabled by default (`enabled: false`): the engine then behaves
/// exactly as before this subsystem existed. All duration knobs are
/// deliberately small — they gate *scheduler* decisions, not database
/// I/O, and the simulated latency profiles operate at millisecond scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Master switch; `false` keeps the engine's legacy unbounded
    /// admission behavior.
    pub enabled: bool,
    /// Tables allowed in the pipeline simultaneously.
    pub max_in_flight: usize,
    /// Tables allowed to wait for admission beyond the in-flight budget;
    /// offers beyond `max_in_flight + max_queued` total occupancy are
    /// rejected.
    pub max_queued: usize,
    /// Per-table completion deadline measured from admission; used by
    /// the deadline-risk shedding signal. `None` disables that signal.
    pub deadline: Option<Duration>,
    /// Target time-in-queue for dispatched stages (CoDel target).
    pub queue_target: Duration,
    /// How long time-in-queue must stay above target before the
    /// controller declares overload (CoDel interval).
    pub queue_window: Duration,
    /// Floor for the AIMD-tuned worker and connection limits.
    pub min_workers: usize,
    /// Clean stages required per +1 additive concurrency increase.
    pub increase_every: u32,
    /// Multiplicative factor applied to the limits on decrease, in
    /// `(0, 1)`.
    pub decrease_ratio: f64,
    /// Minimum spacing between two multiplicative decreases, so one
    /// burst of failures cannot collapse the limits to the floor.
    pub aimd_window: Duration,
    /// Overload sustained this long enters brownout.
    pub brownout_after: Duration,
    /// In brownout, every n-th admission keeps P2 on as an exit probe.
    pub brownout_probe_every: u32,
    /// Consecutive successful probes required to exit brownout.
    pub brownout_exit_probes: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            enabled: false,
            max_in_flight: 8,
            max_queued: 64,
            deadline: None,
            queue_target: Duration::from_millis(5),
            queue_window: Duration::from_millis(20),
            min_workers: 1,
            increase_every: 8,
            decrease_ratio: 0.5,
            aimd_window: Duration::from_millis(10),
            brownout_after: Duration::from_millis(50),
            brownout_probe_every: 4,
            brownout_exit_probes: 2,
        }
    }
}

impl OverloadConfig {
    /// Validates the overload-control invariants.
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.max_in_flight == 0 {
            return Err(TasteError::invalid("max_in_flight must be positive"));
        }
        if self.min_workers == 0 {
            return Err(TasteError::invalid("min_workers must be positive"));
        }
        if !(self.decrease_ratio > 0.0 && self.decrease_ratio < 1.0) {
            return Err(TasteError::invalid(format!(
                "decrease_ratio must be in (0, 1), got {}",
                self.decrease_ratio
            )));
        }
        if self.increase_every == 0 {
            return Err(TasteError::invalid("increase_every must be positive"));
        }
        if self.queue_target.is_zero() || self.queue_window.is_zero() {
            return Err(TasteError::invalid("queue target and window must be positive"));
        }
        if self.brownout_probe_every == 0 || self.brownout_exit_probes == 0 {
            return Err(TasteError::invalid("brownout probe knobs must be positive"));
        }
        if matches!(self.deadline, Some(d) if d.is_zero()) {
            return Err(TasteError::invalid("per-table deadline must be positive"));
        }
        Ok(())
    }

    /// The combined occupancy bound enforced by admission: tables either
    /// in flight or queued never exceed this.
    pub fn occupancy_bound(&self) -> usize {
        self.max_in_flight + self.max_queued
    }
}

/// The decision attached to one admitted table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Whether P2 may run for this table. `false` only in brownout:
    /// uncertain columns settle on P1 verdicts ([`ShedReason::Brownout`]).
    pub p2_allowed: bool,
    /// Whether this admission is a brownout exit probe; its completion
    /// outcome must be reported back via [`LoadController::complete`].
    pub probe: bool,
}

struct Inner {
    // Occupancy.
    queued: usize,
    in_flight: usize,
    // Accounting.
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    queue_peak: usize,
    waits_ms: Vec<f64>,
    // CoDel-style overload detection.
    first_above: Option<Instant>,
    overloaded: bool,
    overload_since: Option<Instant>,
    // Brownout state machine.
    brownout: bool,
    brownout_entries: u64,
    brownout_admissions: u64,
    probe_oks: u32,
    transitions: Vec<String>,
    // AIMD concurrency limits.
    tp1_limit: usize,
    tp2_limit: usize,
    conn_limit: usize,
    successes: u32,
    last_decrease: Option<Instant>,
    aimd_increases: u64,
    aimd_decreases: u64,
    // EWMA of observed P2 stage cost, for the deadline-risk projection.
    p2_ewma: Duration,
}

/// The admission gate, shedding signal, and AIMD governor for one batch.
///
/// Thread-safe: the scheduler and the worker pools share one controller
/// behind an internal lock. All time-dependent methods take `now`
/// explicitly so tests can drive deterministic schedules.
pub struct LoadController {
    cfg: OverloadConfig,
    pool_size: usize,
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl LoadController {
    /// Creates a controller for a batch served by `pool_size`-worker
    /// stage pools.
    pub fn new(cfg: OverloadConfig, pool_size: usize) -> LoadController {
        let start = pool_size.max(1);
        LoadController {
            cfg,
            pool_size: start,
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                queued: 0,
                in_flight: 0,
                submitted: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                queue_peak: 0,
                waits_ms: Vec::new(),
                first_above: None,
                overloaded: false,
                overload_since: None,
                brownout: false,
                brownout_entries: 0,
                brownout_admissions: 0,
                probe_oks: 0,
                transitions: Vec::new(),
                tp1_limit: start,
                tp2_limit: start,
                conn_limit: start,
                successes: 0,
                last_decrease: None,
                aimd_increases: 0,
                aimd_decreases: 0,
                p2_ewma: Duration::ZERO,
            }),
        }
    }

    fn floor(&self) -> usize {
        self.cfg.min_workers.min(self.pool_size)
    }

    /// Offers one table to the admission gate. Returns `true` when the
    /// table entered the admission queue, `false` when total occupancy
    /// (`in_flight + queued`) is at [`OverloadConfig::occupancy_bound`]
    /// and the table must be rejected.
    pub fn offer(&self) -> bool {
        let mut s = self.inner.lock();
        s.submitted += 1;
        if s.in_flight + s.queued < self.cfg.occupancy_bound() {
            s.queued += 1;
            true
        } else {
            s.rejected += 1;
            false
        }
    }

    /// Promotes the longest-queued table into the in-flight set when a
    /// slot is free. Returns `None` when the queue is empty or the
    /// in-flight budget is full.
    pub fn promote(&self) -> Option<Admission> {
        let mut s = self.inner.lock();
        if s.queued == 0 || s.in_flight >= self.cfg.max_in_flight {
            return None;
        }
        s.queued -= 1;
        s.in_flight += 1;
        s.admitted += 1;
        if s.brownout {
            s.brownout_admissions += 1;
            let probe = s.brownout_admissions.is_multiple_of(u64::from(self.cfg.brownout_probe_every));
            Some(Admission { p2_allowed: probe, probe })
        } else {
            Some(Admission { p2_allowed: true, probe: false })
        }
    }

    /// Records one table leaving the in-flight set. `probe`/`ok` feed the
    /// brownout exit state machine: `brownout_exit_probes` consecutive
    /// successful probes restore normal admissions.
    pub fn complete(&self, probe: bool, ok: bool, now: Instant) {
        let mut s = self.inner.lock();
        s.in_flight = s.in_flight.saturating_sub(1);
        if s.brownout && probe {
            if ok {
                s.probe_oks += 1;
                if s.probe_oks >= self.cfg.brownout_exit_probes {
                    s.brownout = false;
                    s.probe_oks = 0;
                    s.brownout_admissions = 0;
                    s.overloaded = false;
                    s.first_above = None;
                    s.overload_since = None;
                    let t = format!("brownout->normal @{:.1}ms", self.ms_since_epoch(now));
                    s.transitions.push(t);
                }
            } else {
                s.probe_oks = 0;
            }
        }
    }

    /// Feeds one dequeued stage's time-in-queue into the CoDel-style
    /// overload detector and the report histogram.
    ///
    /// A single slow sample does nothing; the controller declares
    /// overload only when waits stay above `queue_target` for a full
    /// `queue_window`, and clears it on the first on-target sample.
    /// Overload sustained for `brownout_after` enters brownout.
    pub fn observe_queue_wait(&self, wait: Duration, now: Instant) {
        let mut s = self.inner.lock();
        if s.waits_ms.len() < MAX_WAIT_SAMPLES {
            let ms = wait.as_secs_f64() * 1000.0;
            s.waits_ms.push(ms);
        }
        if wait > self.cfg.queue_target {
            let first = *s.first_above.get_or_insert(now);
            if now.duration_since(first) >= self.cfg.queue_window && !s.overloaded {
                s.overloaded = true;
                s.overload_since = Some(now);
            }
        } else {
            s.first_above = None;
            s.overloaded = false;
            s.overload_since = None;
        }
        if s.overloaded && !s.brownout {
            if let Some(since) = s.overload_since {
                if now.duration_since(since) >= self.cfg.brownout_after {
                    s.brownout = true;
                    s.brownout_entries += 1;
                    s.brownout_admissions = 0;
                    s.probe_oks = 0;
                    let t = format!("normal->brownout @{:.1}ms", self.ms_since_epoch(now));
                    s.transitions.push(t);
                }
            }
        }
    }

    /// Feeds one finished stage into the AIMD governor. `failed` means
    /// the stage exhausted its fault budget (or hit an open breaker);
    /// that, or standing overload, cuts the limits multiplicatively (at
    /// most once per `aimd_window`). Clean stages grow them additively.
    pub fn observe_stage(&self, service: Duration, failed: bool, is_p2: bool, now: Instant) {
        let mut s = self.inner.lock();
        if is_p2 && !failed {
            // EWMA with 1/4 weight on the newest sample.
            s.p2_ewma = (s.p2_ewma * 3 + service) / 4;
        }
        let floor = self.floor();
        if failed || s.overloaded {
            let due = match s.last_decrease {
                None => true,
                Some(t) => now.duration_since(t) >= self.cfg.aimd_window,
            };
            if due {
                let cut = |v: usize| {
                    (((v as f64) * self.cfg.decrease_ratio).floor() as usize).clamp(floor, self.pool_size)
                };
                s.tp1_limit = cut(s.tp1_limit);
                s.tp2_limit = cut(s.tp2_limit);
                s.conn_limit = cut(s.conn_limit);
                s.last_decrease = Some(now);
                s.successes = 0;
                s.aimd_decreases += 1;
            }
        } else {
            s.successes += 1;
            if s.successes >= self.cfg.increase_every {
                s.successes = 0;
                s.tp1_limit = (s.tp1_limit + 1).min(self.pool_size);
                s.tp2_limit = (s.tp2_limit + 1).min(self.pool_size);
                s.conn_limit = (s.conn_limit + 1).min(self.pool_size);
                s.aimd_increases += 1;
            }
        }
    }

    /// Whether (and why) a table's P2 work should be shed *now*, given
    /// its completion deadline. Shedding order is cheapest-first: this is
    /// consulted per table at P2 dispatch, long before admission starts
    /// rejecting whole tables.
    pub fn shed_reason(&self, deadline: Option<Instant>, now: Instant) -> Option<ShedReason> {
        let s = self.inner.lock();
        if s.brownout {
            return Some(ShedReason::Brownout);
        }
        if s.overloaded {
            return Some(ShedReason::QueuePressure);
        }
        if let Some(d) = deadline {
            // Project the P2 cost as twice the observed EWMA (prep +
            // infer); if that cannot fit before the deadline, finishing
            // on time with P1 verdicts beats finishing late.
            let projected = s.p2_ewma * 2;
            if !projected.is_zero() && now + projected > d {
                return Some(ShedReason::DeadlineRisk);
            }
        }
        None
    }

    /// Records a table whose P2 work was shed.
    pub fn record_shed(&self) {
        self.inner.lock().shed += 1;
    }

    /// Tracks the stage-queue depth high-water mark for the report.
    pub fn note_queue_depth(&self, depth: usize) {
        let mut s = self.inner.lock();
        s.queue_peak = s.queue_peak.max(depth);
    }

    /// Current effective TP1 (prep pool) parallelism.
    pub fn tp1_limit(&self) -> usize {
        self.inner.lock().tp1_limit
    }

    /// Current effective TP2 (inference pool) parallelism.
    pub fn tp2_limit(&self) -> usize {
        self.inner.lock().tp2_limit
    }

    /// Current effective per-database connection budget.
    pub fn conn_limit(&self) -> usize {
        self.inner.lock().conn_limit
    }

    /// Tables currently admitted and unfinished.
    pub fn in_flight(&self) -> usize {
        self.inner.lock().in_flight
    }

    /// Tables waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.inner.lock().queued
    }

    /// Whether the controller currently sees a standing queue.
    pub fn is_overloaded(&self) -> bool {
        self.inner.lock().overloaded
    }

    /// Whether brownout mode is active.
    pub fn is_brownout(&self) -> bool {
        self.inner.lock().brownout
    }

    /// Rolls the controller's counters into a report summary.
    pub fn summary(&self) -> OverloadSummary {
        let s = self.inner.lock();
        OverloadSummary {
            enabled: self.cfg.enabled,
            submitted: s.submitted,
            admitted: s.admitted,
            rejected: s.rejected,
            shed_tables: s.shed,
            queue_peak: s.queue_peak as u64,
            queue_wait_hist: Histogram::equal_width(&s.waits_ms, WAIT_HIST_BUCKETS),
            brownout_entries: s.brownout_entries,
            transitions: s.transitions.clone(),
            aimd_increases: s.aimd_increases,
            aimd_decreases: s.aimd_decreases,
            final_tp1_limit: s.tp1_limit as u64,
            final_tp2_limit: s.tp2_limit as u64,
            final_conn_limit: s.conn_limit as u64,
        }
    }

    fn ms_since_epoch(&self, now: Instant) -> f64 {
        now.duration_since(self.epoch).as_secs_f64() * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_cfg() -> OverloadConfig {
        OverloadConfig { enabled: true, ..OverloadConfig::default() }
    }

    #[test]
    fn default_is_disabled_and_valid() {
        let cfg = OverloadConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
        assert!(enabled_cfg().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for bad in [
            OverloadConfig { max_in_flight: 0, ..enabled_cfg() },
            OverloadConfig { min_workers: 0, ..enabled_cfg() },
            OverloadConfig { decrease_ratio: 0.0, ..enabled_cfg() },
            OverloadConfig { decrease_ratio: 1.0, ..enabled_cfg() },
            OverloadConfig { increase_every: 0, ..enabled_cfg() },
            OverloadConfig { queue_target: Duration::ZERO, ..enabled_cfg() },
            OverloadConfig { queue_window: Duration::ZERO, ..enabled_cfg() },
            OverloadConfig { brownout_probe_every: 0, ..enabled_cfg() },
            OverloadConfig { brownout_exit_probes: 0, ..enabled_cfg() },
            OverloadConfig { deadline: Some(Duration::ZERO), ..enabled_cfg() },
        ] {
            assert!(bad.validate().is_err(), "should reject {bad:?}");
        }
        // Disabled configs skip validation: knobs are inert.
        assert!(OverloadConfig { max_in_flight: 0, ..OverloadConfig::default() }.validate().is_ok());
    }

    #[test]
    fn admission_enforces_the_occupancy_bound() {
        let cfg = OverloadConfig { max_in_flight: 2, max_queued: 3, ..enabled_cfg() };
        let c = LoadController::new(cfg, 2);
        // Occupancy bound is 5: the first five offers queue, the rest
        // are rejected.
        for _ in 0..5 {
            assert!(c.offer());
        }
        assert!(!c.offer());
        assert!(!c.offer());
        assert_eq!(c.queued(), 5);
        // Promotion respects the in-flight budget.
        assert!(c.promote().is_some());
        assert!(c.promote().is_some());
        assert!(c.promote().is_none(), "in-flight budget is 2");
        assert_eq!(c.in_flight(), 2);
        assert_eq!(c.queued(), 3);
        // A completion frees one slot — and one queue slot for a new offer.
        c.complete(false, true, Instant::now());
        assert!(c.promote().is_some());
        assert!(c.offer());
        let s = c.summary();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.rejected, 2);
        assert_eq!(s.admitted, 3);
    }

    #[test]
    fn codel_requires_sustained_standing_queue() {
        let c = LoadController::new(enabled_cfg(), 2);
        let t0 = Instant::now();
        let slow = Duration::from_millis(8); // above the 5ms target
        // One slow sample: not overload.
        c.observe_queue_wait(slow, t0);
        assert!(!c.is_overloaded());
        // Slow samples for less than the window: still not overload.
        c.observe_queue_wait(slow, t0 + Duration::from_millis(10));
        assert!(!c.is_overloaded());
        // Sustained past the 20ms window: overload.
        c.observe_queue_wait(slow, t0 + Duration::from_millis(25));
        assert!(c.is_overloaded());
        // One on-target sample clears it.
        c.observe_queue_wait(Duration::from_millis(1), t0 + Duration::from_millis(30));
        assert!(!c.is_overloaded());
        // And the clock restarts from scratch afterwards.
        c.observe_queue_wait(slow, t0 + Duration::from_millis(31));
        assert!(!c.is_overloaded());
    }

    #[test]
    fn sustained_overload_enters_brownout_and_probes_exit() {
        let cfg = OverloadConfig {
            brownout_probe_every: 3,
            brownout_exit_probes: 2,
            ..enabled_cfg()
        };
        let c = LoadController::new(cfg, 2);
        let t0 = Instant::now();
        let slow = Duration::from_millis(9);
        // Drive sustained overload past brownout_after (50ms).
        for ms in [0u64, 21, 40, 60, 75] {
            c.observe_queue_wait(slow, t0 + Duration::from_millis(ms));
        }
        assert!(c.is_brownout());
        let s = c.summary();
        assert_eq!(s.brownout_entries, 1);
        assert!(s.transitions.iter().any(|t| t.starts_with("normal->brownout")));

        // In brownout, admissions shed P2 except every 3rd (the probe).
        for _ in 0..6 {
            assert!(c.offer());
        }
        let mut probes = 0;
        for i in 1..=6 {
            let a = c.promote().unwrap();
            assert_eq!(a.p2_allowed, a.probe, "brownout allows P2 only on probes");
            if a.probe {
                probes += 1;
                assert_eq!(i % 3, 0, "every 3rd admission probes");
            }
        }
        assert_eq!(probes, 2);

        // First probe succeeds, second fails: counter resets, still brown.
        c.complete(true, true, t0 + Duration::from_millis(80));
        c.complete(true, false, t0 + Duration::from_millis(81));
        assert!(c.is_brownout());
        // Two consecutive successful probes exit brownout.
        c.complete(true, true, t0 + Duration::from_millis(90));
        c.complete(true, true, t0 + Duration::from_millis(95));
        assert!(!c.is_brownout());
        assert!(!c.is_overloaded(), "brownout exit clears the overload signal");
        let s = c.summary();
        assert!(s.transitions.iter().any(|t| t.starts_with("brownout->normal")));
        // Post-brownout admissions get P2 back.
        assert!(c.offer());
        let a = c.promote().unwrap();
        assert!(a.p2_allowed && !a.probe);
    }

    #[test]
    fn aimd_limits_stay_clamped_and_move_both_ways() {
        let cfg = OverloadConfig {
            min_workers: 1,
            increase_every: 2,
            decrease_ratio: 0.5,
            aimd_window: Duration::from_millis(10),
            ..enabled_cfg()
        };
        let c = LoadController::new(cfg, 4);
        assert_eq!(c.tp1_limit(), 4);
        let t0 = Instant::now();
        // One failure halves the limits.
        c.observe_stage(Duration::from_millis(1), true, false, t0);
        assert_eq!(c.tp1_limit(), 2);
        assert_eq!(c.tp2_limit(), 2);
        assert_eq!(c.conn_limit(), 2);
        // A second failure inside the window is absorbed (no double cut).
        c.observe_stage(Duration::from_millis(1), true, false, t0 + Duration::from_millis(2));
        assert_eq!(c.tp1_limit(), 2);
        // Outside the window it cuts again, clamped at the floor.
        c.observe_stage(Duration::from_millis(1), true, false, t0 + Duration::from_millis(15));
        assert_eq!(c.tp1_limit(), 1);
        c.observe_stage(Duration::from_millis(1), true, false, t0 + Duration::from_millis(30));
        assert_eq!(c.tp1_limit(), 1, "floor holds");
        // Clean stages grow additively, clamped at pool_size.
        for i in 0..20 {
            c.observe_stage(
                Duration::from_millis(1),
                false,
                false,
                t0 + Duration::from_millis(40 + i),
            );
        }
        assert_eq!(c.tp1_limit(), 4, "ceiling holds");
        let s = c.summary();
        assert_eq!(s.aimd_decreases, 3);
        assert!(s.aimd_increases >= 3);
        assert_eq!(s.final_tp1_limit, 4);
    }

    #[test]
    fn shed_reason_ranks_brownout_pressure_then_deadline() {
        let c = LoadController::new(enabled_cfg(), 2);
        let t0 = Instant::now();
        // Calm controller, no deadline: nothing to shed.
        assert_eq!(c.shed_reason(None, t0), None);
        // Deadline risk: learn a P2 cost, then offer a deadline too close.
        for _ in 0..8 {
            c.observe_stage(Duration::from_millis(10), false, true, t0);
        }
        let tight = t0 + Duration::from_millis(5);
        assert_eq!(c.shed_reason(Some(tight), t0), Some(ShedReason::DeadlineRisk));
        let roomy = t0 + Duration::from_secs(5);
        assert_eq!(c.shed_reason(Some(roomy), t0), None);
        // Standing queue: queue pressure outranks deadline math.
        let slow = Duration::from_millis(9);
        for ms in [0u64, 21, 25] {
            c.observe_queue_wait(slow, t0 + Duration::from_millis(ms));
        }
        assert_eq!(c.shed_reason(Some(roomy), t0), Some(ShedReason::QueuePressure));
        // Brownout outranks everything.
        for ms in [40u64, 60, 80] {
            c.observe_queue_wait(slow, t0 + Duration::from_millis(ms));
        }
        assert!(c.is_brownout());
        assert_eq!(c.shed_reason(None, t0), Some(ShedReason::Brownout));
    }

    #[test]
    fn summary_accounts_every_offer() {
        let cfg = OverloadConfig { max_in_flight: 1, max_queued: 1, ..enabled_cfg() };
        let c = LoadController::new(cfg, 2);
        assert!(c.offer()); // queued
        assert!(c.offer()); // queued (occupancy 2 = bound)
        assert!(!c.offer()); // rejected
        let _ = c.promote();
        c.record_shed();
        c.note_queue_depth(7);
        c.note_queue_depth(3);
        c.observe_queue_wait(Duration::from_millis(2), Instant::now());
        let s = c.summary();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.shed_tables, 1);
        assert_eq!(s.queue_peak, 7);
        assert!(s.queue_wait_hist.is_some());
        // submitted = admitted + rejected + still queued.
        assert_eq!(s.submitted, s.admitted + s.rejected + c.queued() as u64);
    }
}
