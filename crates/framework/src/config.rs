//! Framework configuration: the knobs of §3.2, §6.1.2, and §6.2.

use crate::retry::RetryConfig;
use serde::{Deserialize, Serialize};
use taste_core::{Result, TasteError};
use taste_db::ScanMethod;

/// Table scanning strategy (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanKind {
    /// Sequential head scan (`first m rows`, the default).
    FirstM,
    /// Seeded random sampling of `m` rows (`TASTE with sampling`).
    Sample {
        /// RNG seed passed to the database's `RAND()`.
        seed: u64,
    },
}

/// Full configuration of a TASTE deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TasteConfig {
    /// Lower certainty threshold: `p ≤ α` means "irrelevant".
    pub alpha: f32,
    /// Upper certainty threshold: `p ≥ β` means "admitted".
    pub beta: f32,
    /// Rows retrieved per content scan (`m`, paper default 50).
    pub m: usize,
    /// Non-empty cell values kept per column (`n ≤ m`, paper default 10).
    pub n: usize,
    /// Column split threshold (`l`, paper default 20).
    pub l: usize,
    /// Scan strategy for P2.
    pub scan: ScanKind,
    /// Latent caching (§4.2.2); disabling reproduces *TASTE w/o caching*.
    pub caching: bool,
    /// Pipelined execution (§5); disabling reproduces *TASTE w/o
    /// pipelining* (pure sequential mode).
    pub pipelining: bool,
    /// Worker threads per pool (TP1 and TP2 each; paper experiment: 2).
    pub pool_size: usize,
    /// Whether histogram metadata features are consumed (*TASTE with
    /// histogram*; requires a model trained with them).
    pub use_histograms: bool,
    /// P2 admission threshold on the content tower's probabilities.
    pub p2_threshold: f32,
    /// Retry / backoff / circuit-breaker policy for database stages.
    #[serde(default)]
    pub retry: RetryConfig,
}

impl Default for TasteConfig {
    fn default() -> Self {
        TasteConfig {
            alpha: 0.1,
            beta: 0.9,
            m: 50,
            n: 10,
            l: 20,
            scan: ScanKind::FirstM,
            caching: true,
            pipelining: true,
            pool_size: 2,
            use_histograms: false,
            p2_threshold: 0.5,
            retry: RetryConfig::default(),
        }
    }
}

impl TasteConfig {
    /// Validates the invariants `0 ≤ α ≤ β ≤ 1`, `n ≤ m`, `l > 0`.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.beta) {
            return Err(TasteError::invalid(format!(
                "thresholds out of range: alpha={}, beta={}",
                self.alpha, self.beta
            )));
        }
        if self.alpha > self.beta {
            return Err(TasteError::invalid(format!(
                "alpha ({}) must not exceed beta ({})",
                self.alpha, self.beta
            )));
        }
        if self.n > self.m {
            return Err(TasteError::invalid(format!("n ({}) must not exceed m ({})", self.n, self.m)));
        }
        if self.l == 0 {
            return Err(TasteError::invalid("column split threshold l must be positive"));
        }
        if self.m == 0 {
            return Err(TasteError::invalid("row budget m must be positive"));
        }
        if self.pool_size == 0 {
            return Err(TasteError::invalid("pool size must be positive"));
        }
        if !(0.0..=1.0).contains(&self.p2_threshold) {
            return Err(TasteError::invalid("p2 threshold out of range"));
        }
        self.retry.validate()?;
        Ok(())
    }

    /// The strict-privacy variant: `α = β = 0.5` disables P2 entirely
    /// (*TASTE without P2*, Table 4) — no uncertain band can exist.
    pub fn without_p2(mut self) -> TasteConfig {
        self.alpha = 0.5;
        self.beta = 0.5;
        self
    }

    /// Whether P2 can ever trigger under this configuration.
    pub fn p2_possible(&self) -> bool {
        self.alpha < self.beta
    }

    /// The database scan method for P2 under this configuration.
    pub fn scan_method(&self) -> ScanMethod {
        match self.scan {
            ScanKind::FirstM => ScanMethod::FirstM { m: self.m },
            ScanKind::Sample { seed } => ScanMethod::SampleM { m: self.m, seed },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = TasteConfig::default();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.beta, 0.9);
        assert_eq!(c.m, 50);
        assert_eq!(c.n, 10);
        assert_eq!(c.l, 20);
        assert_eq!(c.pool_size, 2);
        assert!(c.caching && c.pipelining);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_thresholds() {
        let mut c = TasteConfig { alpha: 0.9, beta: 0.1, ..Default::default() };
        assert!(c.validate().is_err());
        c = TasteConfig { alpha: -0.1, ..Default::default() };
        assert!(c.validate().is_err());
        c = TasteConfig { beta: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_reading_params() {
        assert!(TasteConfig { n: 100, m: 50, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { l: 0, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { m: 0, n: 0, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { pool_size: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn validation_covers_retry_policy() {
        let bad_retry = RetryConfig { max_attempts: 0, ..Default::default() };
        let c = TasteConfig { retry: bad_retry, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn without_p2_closes_the_uncertain_band() {
        let c = TasteConfig::default().without_p2();
        assert_eq!(c.alpha, c.beta);
        assert!(!c.p2_possible());
        assert!(c.validate().is_ok());
        assert!(TasteConfig::default().p2_possible());
    }

    #[test]
    fn scan_method_maps_config() {
        let c = TasteConfig::default();
        assert_eq!(c.scan_method(), ScanMethod::FirstM { m: 50 });
        let s = TasteConfig { scan: ScanKind::Sample { seed: 7 }, ..Default::default() };
        assert_eq!(s.scan_method(), ScanMethod::SampleM { m: 50, seed: 7 });
    }
}
