//! Framework configuration: the knobs of §3.2, §6.1.2, and §6.2, plus
//! the crash-safety hardening knobs (watchdog deadlines, halt points,
//! and seeded fault injection for panic/stall testing).

use crate::overload::OverloadConfig;
use crate::retry::RetryConfig;
use crate::rollout::RolloutConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use taste_core::{Result, TasteError};
use taste_db::ScanMethod;
use taste_model::{ExecMode, Inferencer};

/// Which execution backend serves model predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecBackend {
    /// Tape-free eager evaluation into per-worker reusable buffers
    /// (the serving default).
    #[default]
    TapeFree,
    /// The recording autodiff tape, as training uses — kept selectable
    /// so A/B parity runs can compare backends on identical batches.
    Tape,
}

/// Execution-backend configuration for the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Backend used by `infer_phase1` / `infer_phase2`.
    pub backend: ExecBackend,
    /// Row-parallel kernel width inside each worker's tape-free
    /// executor. `1` (the default) keeps kernels single-threaded; higher
    /// values split large matmuls across a shared persistent pool.
    /// Threaded kernels are bit-identical to single-threaded ones, so
    /// this knob never changes detection results. Ignored by the tape
    /// backend.
    #[serde(default = "default_kernel_threads")]
    pub kernel_threads: usize,
}

fn default_kernel_threads() -> usize {
    1
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig { backend: ExecBackend::default(), kernel_threads: default_kernel_threads() }
    }
}

impl ExecutionConfig {
    /// Builds a worker-local [`Inferencer`] for the configured backend.
    pub fn inferencer(&self) -> Inferencer {
        Inferencer::with_kernel_threads(
            match self.backend {
                ExecBackend::TapeFree => ExecMode::TapeFree,
                ExecBackend::Tape => ExecMode::Taped,
            },
            self.kernel_threads,
        )
    }

    /// Validates the execution invariants.
    pub fn validate(&self) -> Result<()> {
        if self.kernel_threads == 0 {
            return Err(TasteError::invalid("kernel_threads must be positive (1 = single-threaded)"));
        }
        Ok(())
    }
}

/// Cross-table micro-batching for the inference stages (pipelined mode).
///
/// With batching enabled, the scheduler stops dispatching one table's
/// `P1Infer`/`P2Infer` stage per job. Eligible inference stages are
/// instead queued on a [`crate::batcher::BatchPlanner`], and one job
/// serves a whole micro-batch of columns drawn from many tables in
/// fused, row-stacked forward passes (see
/// [`taste_model::Adtd::encode_meta_batched`]). Batched execution is
/// bit-identical to the per-table path — the knobs below trade latency
/// against batch fill, never results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchingConfig {
    /// Master switch; off reproduces per-table inference dispatch
    /// exactly. Ignored (treated as off) in sequential mode, which has
    /// no cross-table concurrency to batch.
    pub enabled: bool,
    /// Flush a phase's queue once this many columns are waiting. A
    /// single table larger than the budget still flushes alone —
    /// oversized batches are split never, delayed never.
    pub max_batch_columns: usize,
    /// Flush a phase's queue once its oldest column has waited this
    /// long, so a trickle of small tables cannot stall behind the size
    /// trigger.
    pub flush_deadline: Duration,
}

impl Default for BatchingConfig {
    fn default() -> Self {
        BatchingConfig {
            enabled: false,
            max_batch_columns: 64,
            flush_deadline: Duration::from_millis(2),
        }
    }
}

impl BatchingConfig {
    /// Validates the batching invariants.
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.max_batch_columns == 0 {
            return Err(TasteError::invalid("max_batch_columns must be positive when batching is enabled"));
        }
        Ok(())
    }
}

/// Crash-safety configuration for one engine: watchdog deadlines plus
/// deterministic fault-injection points used by the crash/resume tests.
///
/// Deadlines are cooperative: the watchdog flips a per-table cancel
/// token, which stages observe at stage boundaries and inside their
/// row-scan loops. A stage that exceeds its deadline is therefore
/// abandoned at its next cancellation check, never preempted mid-write.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardeningConfig {
    /// Watchdog deadline for any single stage execution; `None` disables
    /// per-stage timeouts. An expired table is reported as
    /// [`taste_core::TableOutcome::TimedOut`] with its P1 verdicts when
    /// Phase 1 already completed.
    pub stage_deadline: Option<Duration>,
    /// Deadline for the whole batch; on expiry every unfinished table is
    /// cancelled and the batch drains cleanly. `None` disables it.
    pub batch_deadline: Option<Duration>,
    /// How often the watchdog thread re-checks the deadlines.
    pub watchdog_poll: Duration,
    /// Crash simulation: after this many tables have reached a journaled
    /// final outcome, cancel the rest of the batch as if the process had
    /// been killed. The crash/resume tests and `repro crash_resume` use
    /// this to die at a seeded mid-batch point.
    pub halt_after_tables: Option<usize>,
    /// Fault injection: panic when the given `(table id, stage index
    /// 0..=3)` starts executing — exercises panic isolation.
    pub panic_at: Option<(u32, u8)>,
    /// Fault injection: stall the given `(table id, stage index 0..=3)`
    /// in a cancellation-aware loop for [`stall_for`](Self::stall_for) —
    /// exercises the watchdog without wall-clock-sized tests.
    pub stall_at: Option<(u32, u8)>,
    /// Duration of an injected stall when it is not cancelled first.
    pub stall_for: Duration,
}

impl Default for HardeningConfig {
    fn default() -> Self {
        HardeningConfig {
            stage_deadline: None,
            batch_deadline: None,
            watchdog_poll: Duration::from_millis(1),
            halt_after_tables: None,
            panic_at: None,
            stall_at: None,
            stall_for: Duration::ZERO,
        }
    }
}

impl HardeningConfig {
    /// Validates the hardening invariants.
    pub fn validate(&self) -> Result<()> {
        if self.watchdog_poll.is_zero() && (self.stage_deadline.is_some() || self.batch_deadline.is_some()) {
            return Err(TasteError::invalid("watchdog poll interval must be positive"));
        }
        if matches!(self.stage_deadline, Some(d) if d.is_zero()) {
            return Err(TasteError::invalid("stage deadline must be positive"));
        }
        if matches!(self.batch_deadline, Some(d) if d.is_zero()) {
            return Err(TasteError::invalid("batch deadline must be positive"));
        }
        for point in [self.panic_at, self.stall_at].into_iter().flatten() {
            if point.1 > 3 {
                return Err(TasteError::invalid(format!(
                    "fault-injection stage index {} out of range 0..=3",
                    point.1
                )));
            }
        }
        Ok(())
    }

    /// Whether any watchdog deadline is configured.
    pub fn needs_watchdog(&self) -> bool {
        self.stage_deadline.is_some() || self.batch_deadline.is_some()
    }
}

/// Table scanning strategy (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanKind {
    /// Sequential head scan (`first m rows`, the default).
    FirstM,
    /// Seeded random sampling of `m` rows (`TASTE with sampling`).
    Sample {
        /// RNG seed passed to the database's `RAND()`.
        seed: u64,
    },
}

/// Full configuration of a TASTE deployment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TasteConfig {
    /// Lower certainty threshold: `p ≤ α` means "irrelevant".
    pub alpha: f32,
    /// Upper certainty threshold: `p ≥ β` means "admitted".
    pub beta: f32,
    /// Rows retrieved per content scan (`m`, paper default 50).
    pub m: usize,
    /// Non-empty cell values kept per column (`n ≤ m`, paper default 10).
    pub n: usize,
    /// Column split threshold (`l`, paper default 20).
    pub l: usize,
    /// Scan strategy for P2.
    pub scan: ScanKind,
    /// Latent caching (§4.2.2); disabling reproduces *TASTE w/o caching*.
    pub caching: bool,
    /// Pipelined execution (§5); disabling reproduces *TASTE w/o
    /// pipelining* (pure sequential mode).
    pub pipelining: bool,
    /// Worker threads per pool (TP1 and TP2 each; paper experiment: 2).
    pub pool_size: usize,
    /// Whether histogram metadata features are consumed (*TASTE with
    /// histogram*; requires a model trained with them).
    pub use_histograms: bool,
    /// P2 admission threshold on the content tower's probabilities.
    pub p2_threshold: f32,
    /// Retry / backoff / circuit-breaker policy for database stages.
    #[serde(default)]
    pub retry: RetryConfig,
    /// Crash-safety policy: watchdog deadlines, halt points, and the
    /// panic/stall fault-injection hooks.
    #[serde(default)]
    pub hardening: HardeningConfig,
    /// Serving execution backend (tape-free by default).
    #[serde(default)]
    pub execution: ExecutionConfig,
    /// Overload control: bounded admission, deadline-aware load
    /// shedding, AIMD concurrency, and brownout. Disabled by default.
    #[serde(default)]
    pub overload: OverloadConfig,
    /// Cross-table micro-batched inference dispatch (pipelined mode).
    /// Disabled by default.
    #[serde(default)]
    pub batching: BatchingConfig,
    /// Hot model reload: versioned canary serving with health-gated
    /// automatic rollback. Disabled by default.
    #[serde(default)]
    pub rollout: RolloutConfig,
}

impl Default for TasteConfig {
    fn default() -> Self {
        TasteConfig {
            alpha: 0.1,
            beta: 0.9,
            m: 50,
            n: 10,
            l: 20,
            scan: ScanKind::FirstM,
            caching: true,
            pipelining: true,
            pool_size: 2,
            use_histograms: false,
            p2_threshold: 0.5,
            retry: RetryConfig::default(),
            hardening: HardeningConfig::default(),
            execution: ExecutionConfig::default(),
            overload: OverloadConfig::default(),
            batching: BatchingConfig::default(),
            rollout: RolloutConfig::default(),
        }
    }
}

impl TasteConfig {
    /// Validates the invariants `0 ≤ α ≤ β ≤ 1`, `n ≤ m`, `l > 0`.
    pub fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.alpha) || !(0.0..=1.0).contains(&self.beta) {
            return Err(TasteError::invalid(format!(
                "thresholds out of range: alpha={}, beta={}",
                self.alpha, self.beta
            )));
        }
        if self.alpha > self.beta {
            return Err(TasteError::invalid(format!(
                "alpha ({}) must not exceed beta ({})",
                self.alpha, self.beta
            )));
        }
        if self.n > self.m {
            return Err(TasteError::invalid(format!("n ({}) must not exceed m ({})", self.n, self.m)));
        }
        if self.l == 0 {
            return Err(TasteError::invalid("column split threshold l must be positive"));
        }
        if self.m == 0 {
            return Err(TasteError::invalid("row budget m must be positive"));
        }
        if self.pool_size == 0 {
            return Err(TasteError::invalid("pool size must be positive"));
        }
        if !(0.0..=1.0).contains(&self.p2_threshold) {
            return Err(TasteError::invalid("p2 threshold out of range"));
        }
        self.retry.validate()?;
        self.hardening.validate()?;
        self.execution.validate()?;
        self.overload.validate()?;
        self.batching.validate()?;
        self.rollout.validate()?;
        Ok(())
    }

    /// The strict-privacy variant: `α = β = 0.5` disables P2 entirely
    /// (*TASTE without P2*, Table 4) — no uncertain band can exist.
    pub fn without_p2(mut self) -> TasteConfig {
        self.alpha = 0.5;
        self.beta = 0.5;
        self
    }

    /// Whether P2 can ever trigger under this configuration.
    pub fn p2_possible(&self) -> bool {
        self.alpha < self.beta
    }

    /// The database scan method for P2 under this configuration.
    pub fn scan_method(&self) -> ScanMethod {
        match self.scan {
            ScanKind::FirstM => ScanMethod::FirstM { m: self.m },
            ScanKind::Sample { seed } => ScanMethod::SampleM { m: self.m, seed },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = TasteConfig::default();
        assert_eq!(c.alpha, 0.1);
        assert_eq!(c.beta, 0.9);
        assert_eq!(c.m, 50);
        assert_eq!(c.n, 10);
        assert_eq!(c.l, 20);
        assert_eq!(c.pool_size, 2);
        assert!(c.caching && c.pipelining);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_thresholds() {
        let mut c = TasteConfig { alpha: 0.9, beta: 0.1, ..Default::default() };
        assert!(c.validate().is_err());
        c = TasteConfig { alpha: -0.1, ..Default::default() };
        assert!(c.validate().is_err());
        c = TasteConfig { beta: 1.5, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_reading_params() {
        assert!(TasteConfig { n: 100, m: 50, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { l: 0, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { m: 0, n: 0, ..Default::default() }.validate().is_err());
        assert!(TasteConfig { pool_size: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn validation_covers_retry_policy() {
        let bad_retry = RetryConfig { max_attempts: 0, ..Default::default() };
        let c = TasteConfig { retry: bad_retry, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_covers_hardening_policy() {
        assert!(HardeningConfig::default().validate().is_ok());
        let zero_poll = HardeningConfig {
            stage_deadline: Some(Duration::from_millis(5)),
            watchdog_poll: Duration::ZERO,
            ..Default::default()
        };
        assert!(TasteConfig { hardening: zero_poll, ..Default::default() }.validate().is_err());
        let zero_deadline = HardeningConfig {
            batch_deadline: Some(Duration::ZERO),
            ..Default::default()
        };
        assert!(zero_deadline.validate().is_err());
        let bad_stage = HardeningConfig { panic_at: Some((0, 4)), ..Default::default() };
        assert!(bad_stage.validate().is_err());
        let ok = HardeningConfig {
            stage_deadline: Some(Duration::from_millis(20)),
            batch_deadline: Some(Duration::from_secs(5)),
            stall_at: Some((1, 2)),
            stall_for: Duration::from_millis(50),
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
        assert!(ok.needs_watchdog());
        assert!(!HardeningConfig::default().needs_watchdog());
    }

    #[test]
    fn without_p2_closes_the_uncertain_band() {
        let c = TasteConfig::default().without_p2();
        assert_eq!(c.alpha, c.beta);
        assert!(!c.p2_possible());
        assert!(c.validate().is_ok());
        assert!(TasteConfig::default().p2_possible());
    }

    #[test]
    fn execution_config_defaults_to_tape_free_and_maps_modes() {
        let c = TasteConfig::default();
        assert_eq!(c.execution.backend, ExecBackend::TapeFree);
        assert_eq!(c.execution.inferencer().mode(), ExecMode::TapeFree);
        let ab = ExecutionConfig { backend: ExecBackend::Tape, ..Default::default() };
        assert_eq!(ab.inferencer().mode(), ExecMode::Taped);
        // Configs serialized before the backend split deserialize to the
        // tape-free default.
        let legacy = serde_json::to_value(TasteConfig::default()).unwrap();
        let mut obj = legacy.as_object().unwrap().clone();
        obj.remove("execution");
        let restored: TasteConfig =
            serde_json::from_value(serde_json::Value::Object(obj)).unwrap();
        assert_eq!(restored.execution.backend, ExecBackend::TapeFree);
    }

    #[test]
    fn kernel_threads_default_plumb_and_validate() {
        let c = TasteConfig::default();
        assert_eq!(c.execution.kernel_threads, 1);
        assert_eq!(c.execution.inferencer().kernel_threads(), 1);
        let wide = ExecutionConfig { kernel_threads: 4, ..Default::default() };
        assert_eq!(wide.inferencer().kernel_threads(), 4);
        assert!(wide.validate().is_ok());
        // Zero is rejected both directly and through TasteConfig.
        let zero = ExecutionConfig { kernel_threads: 0, ..Default::default() };
        assert!(zero.validate().is_err());
        let cfg = TasteConfig { execution: zero, ..Default::default() };
        assert!(cfg.validate().is_err());
        // Configs serialized before the kernel layer existed (no
        // `kernel_threads` key) deserialize to the single-threaded
        // default.
        let legacy = serde_json::to_value(TasteConfig::default()).unwrap();
        let mut obj = legacy.as_object().unwrap().clone();
        let mut exec = obj["execution"].as_object().unwrap().clone();
        exec.remove("kernel_threads");
        obj.insert("execution".into(), serde_json::Value::Object(exec));
        let restored: TasteConfig =
            serde_json::from_value(serde_json::Value::Object(obj)).unwrap();
        assert_eq!(restored.execution.kernel_threads, 1);
    }

    #[test]
    fn overload_defaults_off_and_validates_when_enabled() {
        let c = TasteConfig::default();
        assert!(!c.overload.enabled);
        assert!(c.validate().is_ok());
        let bad = TasteConfig {
            overload: OverloadConfig { enabled: true, max_in_flight: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        // Configs serialized before the overload subsystem deserialize to
        // the disabled default.
        let legacy = serde_json::to_value(TasteConfig::default()).unwrap();
        let mut obj = legacy.as_object().unwrap().clone();
        obj.remove("overload");
        let restored: TasteConfig =
            serde_json::from_value(serde_json::Value::Object(obj)).unwrap();
        assert!(!restored.overload.enabled);
        assert_eq!(restored.overload, OverloadConfig::default());
    }

    #[test]
    fn batching_defaults_off_and_validates_when_enabled() {
        let c = TasteConfig::default();
        assert!(!c.batching.enabled);
        assert_eq!(c.batching.max_batch_columns, 64);
        assert!(c.validate().is_ok());
        // A zero column budget is rejected only when batching is on.
        let off = BatchingConfig { max_batch_columns: 0, ..Default::default() };
        assert!(off.validate().is_ok());
        let bad = BatchingConfig { enabled: true, max_batch_columns: 0, ..Default::default() };
        assert!(bad.validate().is_err());
        assert!(TasteConfig { batching: bad, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn batching_config_serde_defaults() {
        // Configs serialized before the batching subsystem deserialize to
        // the disabled default.
        let legacy = serde_json::to_value(TasteConfig::default()).unwrap();
        let mut obj = legacy.as_object().unwrap().clone();
        obj.remove("batching");
        let restored: TasteConfig =
            serde_json::from_value(serde_json::Value::Object(obj)).unwrap();
        assert!(!restored.batching.enabled);
        assert_eq!(restored.batching, BatchingConfig::default());
    }

    #[test]
    fn rollout_defaults_off_and_validates_when_enabled() {
        let c = TasteConfig::default();
        assert!(!c.rollout.enabled);
        assert_eq!(c.rollout.initial_version, 1);
        assert!(c.validate().is_ok());
        // Bad knobs are rejected only when rollout is on.
        let off = RolloutConfig { canary_fraction: 0.0, ..Default::default() };
        assert!(off.validate().is_ok());
        let bad = RolloutConfig { enabled: true, canary_fraction: 0.0, ..Default::default() };
        assert!(bad.validate().is_err());
        assert!(TasteConfig { rollout: bad, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn rollout_config_serde_defaults() {
        // Configs serialized before the rollout subsystem deserialize to
        // the disabled default.
        let legacy = serde_json::to_value(TasteConfig::default()).unwrap();
        let mut obj = legacy.as_object().unwrap().clone();
        obj.remove("rollout");
        let restored: TasteConfig =
            serde_json::from_value(serde_json::Value::Object(obj)).unwrap();
        assert!(!restored.rollout.enabled);
        assert_eq!(restored.rollout, RolloutConfig::default());
    }

    #[test]
    fn scan_method_maps_config() {
        let c = TasteConfig::default();
        assert_eq!(c.scan_method(), ScanMethod::FirstM { m: 50 });
        let s = TasteConfig { scan: ScanKind::Sample { seed: 7 }, ..Default::default() };
        assert_eq!(s.scan_method(), ScanMethod::SampleM { m: 50, seed: 7 });
    }
}
