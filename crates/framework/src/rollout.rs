//! Health-gated hot model reload: canary serving with automatic
//! rollback (DESIGN §11).
//!
//! The [`RolloutController`] owns the *incumbent* serving model and at
//! most one *candidate* at a time. A swap is epoch-style: every table
//! pins an `Arc`'d [`VersionedModel`] at its first inference stage and
//! finishes on it, so promoting or rolling back mid-run never tears a
//! request — the swap itself is just replacing which `Arc` future pins
//! hand out. Per-worker `Inferencer`s need no notification: their
//! packed-weight caches key on the `ParamStore` `uid` + `version`, so a
//! new model simply misses and repacks.
//!
//! While a candidate is in canary, a configurable fraction of tables
//! routes to it; each canary table also *shadow-scores* the incumbent
//! on the same Phase-1 input (without touching the latent cache) to
//! feed three health gates:
//!
//! 1. **agreement** — the per-column P1 verdict agreement rate between
//!    candidate and incumbent must reach `min_agreement`;
//! 2. **non-finite sentinel** — any non-finite candidate probability
//!    rolls back immediately (the table itself falls back to the
//!    incumbent's shadow verdicts, so no request is harmed);
//! 3. **p99 latency** — the candidate's canary-phase p99 inference
//!    latency must stay within `max_p99_latency_ratio` of the
//!    incumbent's shadow p99.
//!
//! After `min_canary_tables` observations the gates are evaluated once:
//! all green promotes the candidate to incumbent, any red rolls back.
//! Either way the whole episode — versions, gate verdicts, cause — is
//! recorded and surfaced in `DetectionReport.rollout`.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::sync::Mutex;
use taste_core::{Result, TasteError};
use taste_model::registry::{ModelRegistry, VersionedModel};
use taste_model::Adtd;

/// Knobs for the hot-reload subsystem. Disabled by default: the engine
/// then serves its construction-time model forever, exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RolloutConfig {
    /// Master switch; when false every other field is ignored.
    pub enabled: bool,
    /// Version stamped on the engine's construction-time model.
    pub initial_version: u64,
    /// Fraction of tables routed to an in-canary candidate, in (0, 1].
    pub canary_fraction: f64,
    /// Canary observations required before the gates are judged (≥ 1).
    pub min_canary_tables: u64,
    /// Minimum per-column P1 agreement rate vs the incumbent, in [0, 1].
    pub min_agreement: f64,
    /// Maximum allowed candidate-p99 / incumbent-p99 inference-latency
    /// ratio over the canary phase (≥ 1).
    pub max_p99_latency_ratio: f64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            enabled: false,
            initial_version: 1,
            canary_fraction: 0.2,
            min_canary_tables: 8,
            min_agreement: 0.9,
            max_p99_latency_ratio: 3.0,
        }
    }
}

impl RolloutConfig {
    /// Validates the knobs; only enforced when `enabled`.
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if !(self.canary_fraction > 0.0 && self.canary_fraction <= 1.0) {
            return Err(TasteError::invalid(format!(
                "rollout.canary_fraction must be in (0, 1], got {}",
                self.canary_fraction
            )));
        }
        if self.min_canary_tables == 0 {
            return Err(TasteError::invalid("rollout.min_canary_tables must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.min_agreement) {
            return Err(TasteError::invalid(format!(
                "rollout.min_agreement must be in [0, 1], got {}",
                self.min_agreement
            )));
        }
        if self.max_p99_latency_ratio < 1.0 {
            return Err(TasteError::invalid(format!(
                "rollout.max_p99_latency_ratio must be >= 1, got {}",
                self.max_p99_latency_ratio
            )));
        }
        Ok(())
    }
}

/// The judged health gates of one canary phase.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GateVerdicts {
    /// Canary tables observed before judgment.
    #[serde(default)]
    pub canary_tables: u64,
    /// Per-column P1 agreement rate vs the incumbent, in [0, 1].
    #[serde(default)]
    pub agreement: f64,
    /// Whether the agreement gate passed.
    #[serde(default)]
    pub agreement_ok: bool,
    /// Non-finite candidate outputs seen (any trip fails the gate).
    #[serde(default)]
    pub sentinel_trips: u64,
    /// Whether the non-finite sentinel gate passed.
    #[serde(default)]
    pub sentinel_ok: bool,
    /// Candidate p99 inference latency over the canary, milliseconds.
    #[serde(default)]
    pub candidate_p99_ms: f64,
    /// Incumbent shadow p99 inference latency, milliseconds.
    #[serde(default)]
    pub incumbent_p99_ms: f64,
    /// Whether the p99 latency gate passed.
    #[serde(default)]
    pub latency_ok: bool,
}

impl GateVerdicts {
    /// Whether every gate passed.
    pub fn all_ok(&self) -> bool {
        self.agreement_ok && self.sentinel_ok && self.latency_ok
    }
}

/// How a rollout episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpisodeOutcome {
    /// The candidate passed its gates and became the incumbent.
    Promoted,
    /// The candidate failed a gate; the incumbent kept serving.
    RolledBack,
}

/// One candidate's full journey: offered → canaried → judged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutEpisode {
    /// The candidate's registry version.
    pub candidate_version: u64,
    /// The incumbent it was judged against.
    pub incumbent_version: u64,
    /// The gate verdicts at judgment time.
    pub gates: GateVerdicts,
    /// Promoted or rolled back.
    pub outcome: EpisodeOutcome,
    /// Human-readable cause when rolled back.
    #[serde(default)]
    pub cause: Option<String>,
}

/// Rollout activity over a detection run, for `DetectionReport.rollout`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RolloutSummary {
    /// Whether the hot-reload subsystem was active.
    #[serde(default)]
    pub enabled: bool,
    /// Version of the model the run started serving.
    #[serde(default)]
    pub initial_version: u64,
    /// Version of the incumbent when the summary was taken.
    #[serde(default)]
    pub final_version: u64,
    /// Candidates accepted into a canary phase.
    #[serde(default)]
    pub candidates_offered: u64,
    /// Artifacts quarantined at load time — corrupt files never served.
    #[serde(default)]
    pub rejected_artifacts: u64,
    /// Candidates promoted to incumbent.
    #[serde(default)]
    pub promotions: u64,
    /// Candidates rolled back by a health gate.
    #[serde(default)]
    pub rollbacks: u64,
    /// Every judged episode, in order.
    #[serde(default)]
    pub episodes: Vec<RolloutEpisode>,
}

/// What one table serves on: the model pinned at its first inference
/// stage. In-flight tables finish on their pin no matter what the
/// controller does meanwhile.
#[derive(Clone)]
pub struct Pinned {
    /// The model every stage of this table runs on.
    pub model: Arc<Adtd>,
    /// Its registry version (0 when rollout is disabled).
    pub version: u64,
    /// Whether this table canaries a candidate.
    pub canary: bool,
    /// The incumbent to shadow-score against (canary tables only).
    pub shadow: Option<VersionedModel>,
}

impl Pinned {
    /// A pin outside the rollout subsystem (rollout disabled).
    pub fn fixed(model: Arc<Adtd>) -> Pinned {
        Pinned { model, version: 0, canary: false, shadow: None }
    }
}

/// One canary table's shadow-scored measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanaryObservation {
    /// Columns whose P1 verdicts agreed between candidate and incumbent.
    pub agree_cols: u64,
    /// Columns compared.
    pub total_cols: u64,
    /// Whether the candidate emitted any non-finite probability.
    pub nonfinite: bool,
    /// Candidate P1 inference wall time, milliseconds.
    pub candidate_ms: f64,
    /// Incumbent shadow P1 inference wall time, milliseconds.
    pub incumbent_ms: f64,
}

struct CanaryState {
    candidate: VersionedModel,
    routed: u64,
    observed: u64,
    agree_cols: u64,
    total_cols: u64,
    sentinel_trips: u64,
    candidate_ms: Vec<f64>,
    incumbent_ms: Vec<f64>,
}

struct Inner {
    incumbent: VersionedModel,
    canary: Option<CanaryState>,
    summary: RolloutSummary,
}

/// The serving-side swap coordinator: owns the incumbent, routes canary
/// traffic, scores the gates, and promotes or rolls back. Thread-safe;
/// the engine shares one via `Arc` across all workers and external
/// publishers.
pub struct RolloutController {
    cfg: RolloutConfig,
    inner: Mutex<Inner>,
}

impl RolloutController {
    /// A controller serving `initial` as the incumbent.
    pub fn new(initial: VersionedModel, cfg: RolloutConfig) -> RolloutController {
        let summary = RolloutSummary {
            enabled: cfg.enabled,
            initial_version: initial.version,
            final_version: initial.version,
            ..Default::default()
        };
        RolloutController {
            cfg,
            inner: Mutex::new(Inner { incumbent: initial, canary: None, summary }),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> RolloutConfig {
        self.cfg
    }

    /// The incumbent's version right now.
    pub fn current_version(&self) -> u64 {
        self.lock().incumbent.version
    }

    /// The incumbent model right now (new pins go to it unless a canary
    /// routes them to the candidate).
    pub fn incumbent(&self) -> VersionedModel {
        self.lock().incumbent.clone()
    }

    /// The in-canary candidate's version, if one is being judged.
    pub fn candidate_version(&self) -> Option<u64> {
        self.lock().canary.as_ref().map(|c| c.candidate.version)
    }

    /// Offers a candidate for canary serving. Rejected (returning
    /// `false`) when its version is not strictly newer than the
    /// incumbent's or another candidate is still being judged.
    pub fn offer(&self, candidate: VersionedModel) -> bool {
        let mut inner = self.lock();
        if candidate.version <= inner.incumbent.version || inner.canary.is_some() {
            return false;
        }
        inner.summary.candidates_offered += 1;
        inner.canary = Some(CanaryState {
            candidate,
            routed: 0,
            observed: 0,
            agree_cols: 0,
            total_cols: 0,
            sentinel_trips: 0,
            candidate_ms: Vec::new(),
            incumbent_ms: Vec::new(),
        });
        true
    }

    /// Polls `registry` for the newest intact artifact and offers it
    /// when strictly newer than the incumbent. Files quarantined on the
    /// way are counted as rejected artifacts. Returns whether a new
    /// candidate entered canary.
    ///
    /// # Errors
    /// Propagates registry I/O failures; corrupt artifacts are *not*
    /// errors — they quarantine and fall back, per registry semantics.
    pub fn adopt_latest(&self, registry: &ModelRegistry) -> Result<bool> {
        let outcome = registry.load_latest()?;
        if outcome.quarantined > 0 {
            self.lock().summary.rejected_artifacts += outcome.quarantined;
        }
        Ok(match outcome.loaded {
            Some(candidate) => self.offer(candidate),
            None => false,
        })
    }

    /// Counts `n` artifacts rejected before they reached the controller.
    pub fn record_rejected_artifacts(&self, n: u64) {
        self.lock().summary.rejected_artifacts += n;
    }

    /// Pins a model for one table. Deterministic counter-based routing:
    /// while a candidate is in canary, every ⌈1/fraction⌉-ish table
    /// (exactly `canary_fraction` of them in the long run) pins the
    /// candidate with the incumbent attached for shadow scoring; all
    /// other tables — and all tables outside a canary phase — pin the
    /// incumbent.
    pub fn pin(&self) -> Pinned {
        let mut inner = self.lock();
        if let Some(canary) = inner.canary.as_mut() {
            let f = self.cfg.canary_fraction;
            let before = (canary.routed as f64 * f).floor();
            canary.routed += 1;
            let after = (canary.routed as f64 * f).floor();
            if after > before {
                let pin = Pinned {
                    model: Arc::clone(&canary.candidate.model),
                    version: canary.candidate.version,
                    canary: true,
                    shadow: Some(inner.incumbent.clone()),
                };
                return pin;
            }
        }
        Pinned {
            model: Arc::clone(&inner.incumbent.model),
            version: inner.incumbent.version,
            canary: false,
            shadow: None,
        }
    }

    /// Feeds one canary table's shadow measurements and judges the
    /// gates when due. A non-finite observation rolls back immediately;
    /// otherwise judgment happens once `min_canary_tables` observations
    /// have accumulated.
    pub fn observe_canary(&self, obs: CanaryObservation) {
        let mut inner = self.lock();
        let Some(canary) = inner.canary.as_mut() else { return };
        canary.observed += 1;
        canary.agree_cols += obs.agree_cols;
        canary.total_cols += obs.total_cols;
        if obs.nonfinite {
            canary.sentinel_trips += 1;
        }
        canary.candidate_ms.push(obs.candidate_ms);
        canary.incumbent_ms.push(obs.incumbent_ms);
        if obs.nonfinite {
            self.judge(&mut inner, Some("non-finite output sentinel tripped".to_owned()));
        } else if inner.canary.as_ref().is_some_and(|c| c.observed >= self.cfg.min_canary_tables)
        {
            self.judge(&mut inner, None);
        }
    }

    /// Forces judgment of the in-flight candidate with however many
    /// observations it has (e.g. at the end of a run). No-op without a
    /// candidate; a candidate with zero observations rolls back.
    pub fn settle(&self) {
        let mut inner = self.lock();
        if inner.canary.is_some() {
            self.judge(&mut inner, None);
        }
    }

    /// Rolls back the in-flight candidate unconditionally, recording
    /// `cause`. No-op without a candidate.
    pub fn rollback(&self, cause: &str) {
        let mut inner = self.lock();
        if inner.canary.is_some() {
            self.judge(&mut inner, Some(cause.to_owned()));
        }
    }

    /// The activity summary so far (final_version = incumbent now).
    pub fn summary(&self) -> RolloutSummary {
        let inner = self.lock();
        let mut summary = inner.summary.clone();
        summary.final_version = inner.incumbent.version;
        summary
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Judges the in-flight candidate. `forced_cause` short-circuits to
    /// a rollback (sentinel trip or explicit rollback); otherwise the
    /// three gates decide.
    fn judge(&self, inner: &mut Inner, forced_cause: Option<String>) {
        let Some(canary) = inner.canary.take() else { return };
        let agreement = if canary.total_cols == 0 {
            1.0
        } else {
            canary.agree_cols as f64 / canary.total_cols as f64
        };
        let candidate_p99_ms = p99(&canary.candidate_ms);
        let incumbent_p99_ms = p99(&canary.incumbent_ms);
        let latency_ok = incumbent_p99_ms <= 0.0
            || candidate_p99_ms <= incumbent_p99_ms * self.cfg.max_p99_latency_ratio;
        let gates = GateVerdicts {
            canary_tables: canary.observed,
            agreement,
            agreement_ok: agreement >= self.cfg.min_agreement,
            sentinel_trips: canary.sentinel_trips,
            sentinel_ok: canary.sentinel_trips == 0,
            candidate_p99_ms,
            incumbent_p99_ms,
            latency_ok,
        };
        let forced = forced_cause.is_some();
        let cause = forced_cause.or_else(|| {
            if gates.all_ok() {
                None
            } else {
                let mut failed = Vec::new();
                if !gates.agreement_ok {
                    failed.push(format!(
                        "agreement {:.3} < {:.3}",
                        gates.agreement, self.cfg.min_agreement
                    ));
                }
                if !gates.sentinel_ok {
                    failed.push(format!("{} non-finite sentinel trips", gates.sentinel_trips));
                }
                if !gates.latency_ok {
                    failed.push(format!(
                        "p99 latency {:.2}ms > {:.1}x incumbent {:.2}ms",
                        gates.candidate_p99_ms,
                        self.cfg.max_p99_latency_ratio,
                        gates.incumbent_p99_ms
                    ));
                }
                Some(format!("health gates failed: {}", failed.join("; ")))
            }
        });
        let promoted = !forced && cause.is_none();
        let episode = RolloutEpisode {
            candidate_version: canary.candidate.version,
            incumbent_version: inner.incumbent.version,
            gates,
            outcome: if promoted { EpisodeOutcome::Promoted } else { EpisodeOutcome::RolledBack },
            cause,
        };
        if promoted {
            inner.incumbent = canary.candidate;
            inner.summary.promotions += 1;
        } else {
            inner.summary.rollbacks += 1;
        }
        inner.summary.final_version = inner.incumbent.version;
        inner.summary.episodes.push(episode);
    }
}

/// The p99 of a sample set (max for small sets), 0 for an empty one.
fn p99(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    // Nearest-rank: the smallest value with at least 99% of samples at
    // or below it.
    let idx = (sorted.len() as f64 * 0.99).ceil() as usize - 1;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_model::ModelConfig;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn model(seed: u64) -> Arc<Adtd> {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        b.add_words(["orders", "city", "name", "phone", "int", "text"]);
        Arc::new(Adtd::new(ModelConfig::tiny(), Tokenizer::new(b.build(100, 1)), 4, seed))
    }

    fn vm(version: u64) -> VersionedModel {
        VersionedModel { version, model: model(version) }
    }

    fn cfg() -> RolloutConfig {
        RolloutConfig { enabled: true, ..Default::default() }
    }

    fn agreeing(n: u64) -> CanaryObservation {
        CanaryObservation {
            agree_cols: n,
            total_cols: n,
            nonfinite: false,
            candidate_ms: 1.0,
            incumbent_ms: 1.0,
        }
    }

    #[test]
    fn config_validation() {
        assert!(RolloutConfig::default().validate().is_ok());
        assert!(cfg().validate().is_ok());
        assert!(RolloutConfig { canary_fraction: 0.0, ..cfg() }.validate().is_err());
        assert!(RolloutConfig { canary_fraction: 1.5, ..cfg() }.validate().is_err());
        assert!(RolloutConfig { min_canary_tables: 0, ..cfg() }.validate().is_err());
        assert!(RolloutConfig { min_agreement: 1.5, ..cfg() }.validate().is_err());
        assert!(RolloutConfig { max_p99_latency_ratio: 0.5, ..cfg() }.validate().is_err());
        // Disabled configs skip every check.
        assert!(RolloutConfig { canary_fraction: 0.0, ..Default::default() }.validate().is_ok());
    }

    #[test]
    fn offer_rejects_stale_versions_and_double_offers() {
        let rc = RolloutController::new(vm(5), cfg());
        assert!(!rc.offer(vm(5)), "same version is stale");
        assert!(!rc.offer(vm(4)), "older version is stale");
        assert!(rc.offer(vm(6)));
        assert!(!rc.offer(vm(7)), "one candidate at a time");
        assert_eq!(rc.candidate_version(), Some(6));
        assert_eq!(rc.current_version(), 5, "offer alone does not swap");
    }

    #[test]
    fn canary_fraction_routes_deterministically() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 0.25, min_canary_tables: 1000, ..cfg() },
        );
        assert!(rc.offer(vm(2)));
        let flags: Vec<bool> = (0..16).map(|_| rc.pin().canary).collect();
        assert_eq!(flags.iter().filter(|&&c| c).count(), 4, "a quarter of pins canary");
        // Without a candidate, nothing canaries.
        let rc2 = RolloutController::new(vm(1), cfg());
        assert!((0..8).all(|_| !rc2.pin().canary));
    }

    #[test]
    fn healthy_candidate_promotes_after_min_tables() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 1.0, min_canary_tables: 3, ..cfg() },
        );
        assert!(rc.offer(vm(2)));
        for _ in 0..2 {
            rc.observe_canary(agreeing(4));
            assert_eq!(rc.current_version(), 1, "not judged yet");
        }
        rc.observe_canary(agreeing(4));
        assert_eq!(rc.current_version(), 2, "promoted");
        let s = rc.summary();
        assert_eq!((s.promotions, s.rollbacks), (1, 0));
        assert_eq!(s.episodes.len(), 1);
        let ep = &s.episodes[0];
        assert_eq!(ep.outcome, EpisodeOutcome::Promoted);
        assert!(ep.gates.all_ok());
        assert_eq!(ep.gates.canary_tables, 3);
        assert_eq!((s.initial_version, s.final_version), (1, 2));
        // The promoted model is what new pins serve.
        assert_eq!(rc.pin().version, 2);
    }

    #[test]
    fn low_agreement_rolls_back() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 1.0, min_canary_tables: 2, ..cfg() },
        );
        assert!(rc.offer(vm(2)));
        rc.observe_canary(CanaryObservation { agree_cols: 1, total_cols: 4, ..agreeing(0) });
        rc.observe_canary(CanaryObservation { agree_cols: 2, total_cols: 4, ..agreeing(0) });
        assert_eq!(rc.current_version(), 1, "incumbent kept serving");
        let s = rc.summary();
        assert_eq!((s.promotions, s.rollbacks), (0, 1));
        let ep = &s.episodes[0];
        assert_eq!(ep.outcome, EpisodeOutcome::RolledBack);
        assert!(!ep.gates.agreement_ok);
        assert!(ep.cause.as_deref().unwrap().contains("agreement"));
        // The slot is free for the next candidate.
        assert!(rc.offer(vm(3)));
    }

    #[test]
    fn nonfinite_sentinel_rolls_back_immediately() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 1.0, min_canary_tables: 100, ..cfg() },
        );
        assert!(rc.offer(vm(2)));
        rc.observe_canary(CanaryObservation { nonfinite: true, ..agreeing(4) });
        let s = rc.summary();
        assert_eq!(s.rollbacks, 1, "did not wait for min_canary_tables");
        assert_eq!(s.episodes[0].gates.sentinel_trips, 1);
        assert!(s.episodes[0].cause.as_deref().unwrap().contains("non-finite"));
    }

    #[test]
    fn slow_candidate_fails_the_latency_gate() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig {
                canary_fraction: 1.0,
                min_canary_tables: 2,
                max_p99_latency_ratio: 2.0,
                ..cfg()
            },
        );
        assert!(rc.offer(vm(2)));
        for _ in 0..2 {
            rc.observe_canary(CanaryObservation {
                candidate_ms: 10.0,
                incumbent_ms: 1.0,
                ..agreeing(4)
            });
        }
        let s = rc.summary();
        assert_eq!(s.rollbacks, 1);
        assert!(!s.episodes[0].gates.latency_ok);
        assert!(s.episodes[0].cause.as_deref().unwrap().contains("p99"));
    }

    #[test]
    fn settle_judges_a_lingering_candidate() {
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 1.0, min_canary_tables: 100, ..cfg() },
        );
        assert!(rc.offer(vm(2)));
        rc.observe_canary(agreeing(4));
        rc.settle();
        let s = rc.summary();
        assert_eq!(s.promotions, 1, "healthy partial canary promotes on settle");
        assert_eq!(s.episodes[0].gates.canary_tables, 1);
        // settle with nothing in flight is a no-op.
        rc.settle();
        assert_eq!(rc.summary().episodes.len(), 1);
    }

    #[test]
    fn explicit_rollback_records_cause() {
        let rc = RolloutController::new(vm(1), cfg());
        assert!(rc.offer(vm(2)));
        rc.rollback("operator abort");
        let s = rc.summary();
        assert_eq!(s.rollbacks, 1);
        assert_eq!(s.episodes[0].cause.as_deref(), Some("operator abort"));
    }

    #[test]
    fn pins_are_epochs_not_references() {
        // A pin taken before a promotion keeps serving the old Arc.
        let rc = RolloutController::new(
            vm(1),
            RolloutConfig { canary_fraction: 1.0, min_canary_tables: 1, ..cfg() },
        );
        let old_pin = rc.pin();
        assert!(rc.offer(vm(2)));
        rc.observe_canary(agreeing(4));
        assert_eq!(rc.current_version(), 2);
        assert_eq!(old_pin.version, 1, "in-flight table unaffected by the swap");
    }

    #[test]
    fn p99_of_samples() {
        assert_eq!(p99(&[]), 0.0);
        assert_eq!(p99(&[3.0]), 3.0);
        assert_eq!(p99(&[1.0, 5.0, 2.0]), 5.0);
        let many: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(p99(&many), 198.0);
    }
}
