//! # taste-framework
//!
//! The TASTE two-phase semantic type detection engine (§3, §5):
//!
//! * [`config`] — [`config::TasteConfig`]: the thresholds `α`/`β`, the
//!   reading parameters `m`/`n`, the column-split threshold `l`, scan
//!   method, and the latent-caching / pipelining toggles that define the
//!   paper's six evaluation variants (§6.2).
//! * [`stages`] — the four per-table stages: P1 data preparation
//!   (metadata fetch), P1 inference (metadata tower + threshold
//!   classification into admitted / rejected / *uncertain*), P2 data
//!   preparation (content scan of uncertain columns only), and P2
//!   inference (content tower over cached latents).
//! * [`engine`] — [`engine::TasteEngine`]: batch detection over a
//!   simulated user database, in sequential mode or under the pipelined
//!   scheduler of Algorithm 1 (two worker pools, stage queue, eligibility
//!   rule).
//! * [`baseline_run`] — end-to-end runners for the TURL / Doduo analogs
//!   (always scan 100% of columns, sequential execution), including the
//!   §6.4 "w/o content" privacy setting.
//! * [`report`] — [`report::DetectionReport`] (wall time, intrusiveness
//!   ledger delta, scanned ratio, per-column admitted types) and
//!   evaluation against ground truth.
//! * [`retry`] — the fault-handling layer: capped exponential backoff
//!   with decorrelated jitter, per-stage deadlines, and a per-database
//!   circuit breaker. With degradation enabled, a table whose P2 scan
//!   exhausts its retry budget falls back to P1 metadata-only verdicts
//!   instead of failing the batch.
//! * [`watchdog`] — cooperative cancellation: per-table
//!   [`watchdog::CancelToken`]s flipped by a deadline-monitoring thread,
//!   observed by stages at boundaries and inside row-scan loops.
//! * [`journal`] — the resumable verdict journal: checksummed
//!   append-only records of each table's final verdicts, replayed by
//!   [`engine::TasteEngine::resume`] to skip finished tables after a
//!   crash.
//! * [`overload`] — overload control: bounded admission with a
//!   [`overload::LoadController`], CoDel-style queue-latency detection,
//!   deadline-aware P2 load shedding, AIMD-tuned concurrency and
//!   connection budgets, and a probing brownout mode.
//! * [`batcher`] — cross-table micro-batching: a
//!   [`batcher::BatchPlanner`] with per-phase queues and size-, deadline-
//!   and drain-triggered flushes, so one TP2 job serves a fused forward
//!   pass over columns from many tables (bit-identical to the per-table
//!   path).
//! * [`rollout`] — health-gated hot model reload: a
//!   [`rollout::RolloutController`] that swaps model versions under live
//!   traffic with epoch-style pinning (in-flight tables finish on their
//!   `Arc`'d model), canary routing with shadow scoring against the
//!   incumbent, and automatic rollback when an agreement, non-finite
//!   sentinel, or p99-latency gate fails.

#![warn(missing_docs)]

pub mod baseline_run;
pub mod batcher;
pub mod custom_types;
pub mod config;
pub mod engine;
pub mod journal;
pub mod overload;
pub mod report;
pub mod retry;
pub mod rollout;
pub mod rules;
pub mod stages;
pub mod watchdog;

pub use batcher::{BatchItem, BatchPhase, BatchPlanner, FlushReason};
pub use config::{BatchingConfig, ExecBackend, ExecutionConfig, HardeningConfig, TasteConfig};
pub use engine::TasteEngine;
pub use journal::{JournalRecord, JournalReplay, JournalWriter};
pub use overload::{Admission, LoadController, OverloadConfig};
pub use report::{
    evaluate_report, BatchingSummary, DetectionReport, OverloadSummary, PhaseBatchingSummary,
    ResilienceSummary, TableResult,
};
pub use retry::{BreakerState, CircuitBreaker, RetryConfig};
pub use rollout::{
    CanaryObservation, EpisodeOutcome, GateVerdicts, Pinned, RolloutConfig, RolloutController,
    RolloutEpisode, RolloutSummary,
};
pub use watchdog::{CancelReason, CancelToken, Wakeup};
