//! Retry policy, backoff, and circuit breaking for database stages.
//!
//! The Algorithm 1 scheduler drives real (simulated) cloud connections
//! that can fail transiently, time out, or get throttled. This module
//! gives every preparation stage a bounded retry budget with capped
//! exponential backoff and *decorrelated jitter* (each sleep is drawn
//! uniformly from `[base, 3 × previous]`, clamped to the cap — the
//! strategy that best avoids retry storms against a throttled service),
//! plus a per-database circuit breaker so a failing database stops
//! consuming worker time after `breaker_threshold` consecutive failures
//! and is re-probed after a cooldown.
//!
//! Jitter is drawn from a seeded SplitMix64 stream (no wall-clock
//! entropy), so a fault-injected run replays its exact backoff schedule.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::rng::{derive_seed, splitmix64};
use taste_core::{Result, TasteError};
use taste_db::{Connection, ConnectionPool, Database, PooledConnection};

/// Retry and circuit-breaker settings for one engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Total attempts per stage operation (1 = no retries).
    pub max_attempts: u32,
    /// First backoff sleep; also the lower bound of every jittered sleep.
    pub base_backoff: Duration,
    /// Upper clamp on any single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget for one stage including retries and backoff;
    /// once exceeded, no further attempts are made.
    pub stage_deadline: Duration,
    /// Consecutive failures that trip the circuit breaker open.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before half-opening for a probe.
    pub breaker_cooldown: Duration,
    /// Degrade instead of failing the batch when a retry budget is
    /// exhausted: P2 falls back to P1 verdicts, P1 marks the table failed.
    pub degrade: bool,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            stage_deadline: Duration::from_secs(10),
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(100),
            degrade: true,
            jitter_seed: 0,
        }
    }
}

impl RetryConfig {
    /// Validates the retry invariants.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(TasteError::invalid("retry max_attempts must be positive"));
        }
        if self.breaker_threshold == 0 {
            return Err(TasteError::invalid("breaker threshold must be positive"));
        }
        if self.base_backoff > self.max_backoff {
            return Err(TasteError::invalid(format!(
                "base backoff {:?} exceeds max backoff {:?}",
                self.base_backoff, self.max_backoff
            )));
        }
        Ok(())
    }
}

/// Circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe request is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case label used in transition logs.
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probing: bool,
    trips: u64,
    transitions: Vec<String>,
}

/// A per-database circuit breaker shared by every worker of a batch.
///
/// Closed → (threshold consecutive failures) → Open → (cooldown) →
/// HalfOpen → one probe → Closed on success, Open again on failure.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker that trips after `threshold` consecutive failures
    /// and half-opens `cooldown` after tripping.
    pub fn new(threshold: u32, cooldown: Duration) -> Arc<CircuitBreaker> {
        Arc::new(CircuitBreaker {
            threshold,
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probing: false,
                trips: 0,
                transitions: Vec::new(),
            }),
        })
    }

    /// Whether a request may proceed right now. Open breakers half-open
    /// once the cooldown has elapsed; a half-open breaker admits exactly
    /// one in-flight probe.
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = inner.opened_at.is_none_or(|t| t.elapsed() >= self.cooldown);
                if cooled {
                    transition(&mut inner, BreakerState::HalfOpen);
                    inner.probing = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    false
                } else {
                    inner.probing = true;
                    true
                }
            }
        }
    }

    /// Reports a successful operation: closes a half-open breaker and
    /// resets the consecutive-failure count.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.probing = false;
        if inner.state == BreakerState::HalfOpen {
            transition(&mut inner, BreakerState::Closed);
            inner.opened_at = None;
        }
    }

    /// Reports a failed operation: re-opens a half-open breaker, or
    /// counts toward tripping a closed one.
    pub fn on_failure(&self) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::HalfOpen => {
                inner.probing = false;
                inner.trips += 1;
                inner.opened_at = Some(Instant::now());
                transition(&mut inner, BreakerState::Open);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.threshold {
                    inner.trips += 1;
                    inner.opened_at = Some(Instant::now());
                    transition(&mut inner, BreakerState::Open);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }

    /// Chronological transition log, e.g. `["closed->open", "open->half-open"]`.
    pub fn transitions(&self) -> Vec<String> {
        self.inner.lock().transitions.clone()
    }
}

fn transition(inner: &mut BreakerInner, to: BreakerState) {
    inner.transitions.push(format!("{}->{}", inner.state.label(), to.label()));
    inner.state = to;
}

/// Retry telemetry for one stage execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Operation attempts made (≥ 1 unless the breaker rejected outright).
    pub attempts: u32,
    /// Attempts beyond the first.
    pub retries: u32,
    /// Total backoff sleep time.
    pub backoff: Duration,
    /// Successful reconnects of a poisoned connection.
    pub reconnects: u32,
}

/// Terminal failure of a retried operation.
#[derive(Debug)]
pub struct RetryFailure {
    /// The last error observed (or the breaker-rejection error).
    pub error: TasteError,
    /// Whether the failure was retryable (budget exhausted) as opposed to
    /// a logical error that retrying can never fix.
    pub retryable: bool,
}

/// Runs `op` under the retry policy: retryable errors are retried with
/// decorrelated-jitter backoff up to `max_attempts` / `stage_deadline`,
/// poisoned connections are reconnected between attempts, and every
/// attempt first consults (and then reports to) the circuit breaker.
///
/// Non-retryable errors return immediately and do not count against the
/// breaker — they indicate a logical problem, not service health.
pub fn run_with_retry<T>(
    cfg: &RetryConfig,
    breaker: &CircuitBreaker,
    conn: &Connection,
    label: &str,
    mut op: impl FnMut(&Connection) -> Result<T>,
) -> (std::result::Result<T, RetryFailure>, RetryStats) {
    let mut stats = RetryStats::default();
    let deadline = Instant::now() + cfg.stage_deadline;
    let mut jitter = derive_seed(cfg.jitter_seed, label);
    let mut prev_backoff = cfg.base_backoff;
    loop {
        if !breaker.try_acquire() {
            let error = TasteError::transient(format!("{label}: circuit breaker open"));
            return (Err(RetryFailure { error, retryable: true }), stats);
        }
        stats.attempts += 1;
        match op(conn) {
            Ok(v) => {
                breaker.on_success();
                return (Ok(v), stats);
            }
            Err(e) if e.is_retryable() => {
                breaker.on_failure();
                if conn.is_poisoned() && conn.reconnect().is_ok() {
                    stats.reconnects += 1;
                }
                if stats.attempts >= cfg.max_attempts || Instant::now() >= deadline {
                    return (Err(RetryFailure { error: e, retryable: true }), stats);
                }
                jitter = splitmix64(jitter);
                let sleep = decorrelated_sleep(cfg, prev_backoff, jitter);
                prev_backoff = sleep;
                std::thread::sleep(sleep);
                stats.retries += 1;
                stats.backoff += sleep;
            }
            Err(e) => {
                return (Err(RetryFailure { error: e, retryable: false }), stats);
            }
        }
    }
}

/// One decorrelated-jitter draw: uniform in `[base, 3 × prev]`, clamped
/// to `max_backoff`.
fn decorrelated_sleep(cfg: &RetryConfig, prev: Duration, roll: u64) -> Duration {
    let lo = cfg.base_backoff.as_nanos() as u64;
    let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo.saturating_add(1));
    let span = hi - lo;
    let pick = lo + (roll % span);
    Duration::from_nanos(pick).min(cfg.max_backoff)
}

/// Opens a connection with the retry policy applied to injected connect
/// faults (no breaker involvement — a worker that cannot connect at all
/// is handled by the scheduler's degradation path).
pub fn connect_with_retry(db: &Arc<Database>, cfg: &RetryConfig) -> Result<Connection> {
    let mut jitter = derive_seed(cfg.jitter_seed, "connect");
    let mut prev_backoff = cfg.base_backoff;
    let mut attempt = 0u32;
    loop {
        match db.try_connect() {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                attempt += 1;
                if !e.is_retryable() || attempt >= cfg.max_attempts {
                    return Err(e);
                }
                jitter = splitmix64(jitter);
                let sleep = decorrelated_sleep(cfg, prev_backoff, jitter);
                prev_backoff = sleep;
                std::thread::sleep(sleep);
            }
        }
    }
}

/// Checks a pooled connection out with the retry policy applied to
/// acquire timeouts and injected connect faults (both retryable per
/// [`TasteError::is_retryable`]). Like [`connect_with_retry`], the
/// breaker is not involved: pool saturation is local backpressure, not a
/// database fault.
pub fn acquire_with_retry(pool: &ConnectionPool, cfg: &RetryConfig) -> Result<PooledConnection> {
    let mut jitter = derive_seed(cfg.jitter_seed, "acquire");
    let mut prev_backoff = cfg.base_backoff;
    let mut attempt = 0u32;
    loop {
        match pool.get() {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                attempt += 1;
                if !e.is_retryable() || attempt >= cfg.max_attempts {
                    return Err(e);
                }
                jitter = splitmix64(jitter);
                let sleep = decorrelated_sleep(cfg, prev_backoff, jitter);
                prev_backoff = sleep;
                std::thread::sleep(sleep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_db::{FaultProfile, LatencyProfile, ScanMethod};

    fn quick_retry() -> RetryConfig {
        RetryConfig {
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
            ..RetryConfig::default()
        }
    }

    fn db_with(profile: FaultProfile) -> Arc<Database> {
        use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};
        let db = Database::new("r", LatencyProfile::zero());
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "t".into(), comment: None, row_count: 3 },
            columns: vec![ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "x".into(),
                comment: None,
                raw_type: RawType::Integer,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            }],
            rows: (0..3).map(|i| vec![Cell::Int(i)]).collect(),
            labels: vec![LabelSet::empty()],
        };
        db.create_table(&table).unwrap();
        db.set_fault_profile(profile);
        db
    }

    #[test]
    fn config_validation() {
        assert!(RetryConfig::default().validate().is_ok());
        assert!(RetryConfig { max_attempts: 0, ..Default::default() }.validate().is_err());
        assert!(RetryConfig { breaker_threshold: 0, ..Default::default() }.validate().is_err());
        assert!(RetryConfig {
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_millis(1),
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers() {
        let b = CircuitBreaker::new(3, Duration::ZERO);
        assert_eq!(b.state(), BreakerState::Closed);
        for _ in 0..2 {
            assert!(b.try_acquire());
            b.on_failure();
            assert_eq!(b.state(), BreakerState::Closed);
        }
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Zero cooldown: the next acquire half-opens as a probe...
        assert!(b.try_acquire());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // ...and only one probe is admitted.
        assert!(!b.try_acquire());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            vec!["closed->open", "open->half-open", "half-open->closed"]
        );
    }

    #[test]
    fn open_breaker_rejects_until_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_secs(3600));
        assert!(b.try_acquire());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.try_acquire(), "long cooldown must reject");
        assert!(!b.try_acquire());
    }

    #[test]
    fn half_open_failure_retrips() {
        let b = CircuitBreaker::new(1, Duration::ZERO);
        assert!(b.try_acquire());
        b.on_failure(); // trip
        assert!(b.try_acquire()); // half-open probe
        b.on_failure(); // probe failed
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn success_on_clean_connection_is_single_attempt() {
        let db = db_with(FaultProfile::none());
        let conn = db.connect();
        let b = CircuitBreaker::new(5, Duration::ZERO);
        let (res, stats) = run_with_retry(&quick_retry(), &b, &conn, "probe", |c| c.fetch_tables());
        assert_eq!(res.unwrap().len(), 1);
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.backoff, Duration::ZERO);
    }

    #[test]
    fn exhaustion_reports_retryable_failure() {
        let db = db_with(FaultProfile { scan_transient: 1.0, ..FaultProfile::none() });
        let conn = db.connect();
        let b = CircuitBreaker::new(1000, Duration::ZERO);
        let cfg = quick_retry();
        let (res, stats) = run_with_retry(&cfg, &b, &conn, "scan", |c| {
            c.scan_columns(taste_core::TableId(0), &[0], ScanMethod::FirstM { m: 1 })
        });
        let failure = res.expect_err("must exhaust");
        assert!(failure.retryable);
        assert_eq!(stats.attempts, cfg.max_attempts);
        assert_eq!(stats.retries, cfg.max_attempts - 1);
        assert!(stats.backoff > Duration::ZERO);
    }

    #[test]
    fn non_retryable_error_passes_through_immediately() {
        let db = db_with(FaultProfile::none());
        let conn = db.connect();
        let b = CircuitBreaker::new(5, Duration::ZERO);
        let (res, stats) = run_with_retry(&quick_retry(), &b, &conn, "bad", |c| {
            c.scan_columns(taste_core::TableId(42), &[0], ScanMethod::FirstM { m: 1 })
        });
        let failure = res.err().unwrap();
        assert!(!failure.retryable);
        assert_eq!(stats.attempts, 1);
        // Logical errors must not poison breaker health.
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn dropped_connection_is_reconnected_between_attempts() {
        // Drop on every scan: each attempt poisons the connection and the
        // retry loop must restore it before (and after) the next attempt.
        let db = db_with(FaultProfile { scan_drop: 1.0, ..FaultProfile::none() });
        let conn = db.connect();
        let b = CircuitBreaker::new(1000, Duration::ZERO);
        let cfg = quick_retry();
        let (res, stats) = run_with_retry(&cfg, &b, &conn, "scan", |c| {
            c.scan_columns(taste_core::TableId(0), &[0], ScanMethod::FirstM { m: 1 })
        });
        assert!(res.is_err());
        assert_eq!(stats.reconnects, cfg.max_attempts, "every drop must reconnect");
        assert!(!conn.is_poisoned(), "connection restored after final reconnect");
        assert_eq!(db.ledger().snapshot().reconnects as u32, stats.reconnects);
    }

    #[test]
    fn open_breaker_short_circuits_without_attempts() {
        let db = db_with(FaultProfile::none());
        let conn = db.connect();
        let b = CircuitBreaker::new(1, Duration::from_secs(3600));
        assert!(b.try_acquire());
        b.on_failure();
        let (res, stats) = run_with_retry(&quick_retry(), &b, &conn, "probe", |c| c.fetch_tables());
        let failure = res.err().unwrap();
        assert!(failure.retryable);
        assert!(matches!(failure.error, TasteError::Transient(_)));
        assert_eq!(stats.attempts, 0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let cfg = RetryConfig {
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(400),
            ..RetryConfig::default()
        };
        let mut prev = cfg.base_backoff;
        let mut roll = derive_seed(cfg.jitter_seed, "label");
        let mut seq_a = Vec::new();
        for _ in 0..16 {
            roll = splitmix64(roll);
            let s = decorrelated_sleep(&cfg, prev, roll);
            assert!(s >= cfg.base_backoff.min(cfg.max_backoff), "sleep below base: {s:?}");
            assert!(s <= cfg.max_backoff, "sleep above cap: {s:?}");
            prev = s;
            seq_a.push(s);
        }
        // Same seed and label replays the exact schedule.
        let mut prev = cfg.base_backoff;
        let mut roll = derive_seed(cfg.jitter_seed, "label");
        for (i, expected) in seq_a.iter().enumerate() {
            roll = splitmix64(roll);
            let s = decorrelated_sleep(&cfg, prev, roll);
            assert_eq!(s, *expected, "sleep {i} diverged");
            prev = s;
        }
    }

    #[test]
    fn connect_with_retry_survives_transient_connect_faults() {
        // connect_fail = 0.5: some attempts fail, but 4 tries at seed 0
        // must eventually land a connection (deterministically).
        let db = db_with(FaultProfile { connect_fail: 0.5, seed: 1, ..FaultProfile::none() });
        let cfg = quick_retry();
        let conn = connect_with_retry(&db, &cfg);
        // Either outcome is deterministic for the seed; assert coherence.
        match conn {
            Ok(c) => assert!(!c.is_poisoned()),
            Err(e) => assert!(e.is_retryable()),
        }
        // A 100% connect-fault database always exhausts.
        let db = db_with(FaultProfile { connect_fail: 1.0, ..FaultProfile::none() });
        assert!(connect_with_retry(&db, &cfg).is_err());
    }

    #[test]
    fn acquire_with_retry_waits_out_a_briefly_saturated_pool() {
        let db = db_with(FaultProfile::none());
        let pool = ConnectionPool::new(Arc::clone(&db), 1, Duration::from_millis(5));
        let cfg = RetryConfig { max_attempts: 50, ..quick_retry() };
        let held = pool.get().unwrap();
        let pool2 = pool.clone();
        let cfg2 = cfg;
        let waiter = std::thread::spawn(move || acquire_with_retry(&pool2, &cfg2).is_ok());
        // Release the connection while the waiter is still inside its
        // retry budget (50 × ≥5ms timeouts ≫ 30ms).
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert!(waiter.join().unwrap(), "retry must absorb the transient saturation");
        // A pool that never frees up exhausts the budget with a Timeout.
        let _held = pool.get().unwrap();
        let err = acquire_with_retry(&pool, &RetryConfig { max_attempts: 2, ..quick_retry() })
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, TasteError::Timeout(_)), "{err:?}");
    }
}
