//! The four per-table stages of the TASTE framework (§3.1).
//!
//! Each phase splits into *data preparation* (S1: database I/O + CPU) and
//! *inference* (S2: model compute). Keeping the stages as free functions
//! lets the engine run them sequentially or interleave them under the
//! Algorithm 1 scheduler without duplicating any logic.

use crate::config::TasteConfig;
use crate::watchdog::CancelToken;
use std::sync::Arc;
use taste_core::{LabelSet, Result, TableId, TypeId};
use taste_model::cache::CacheKey;
use taste_model::prepare::{build_chunks, TableChunk};
use taste_model::{Adtd, ContentBatchItem, Inferencer, LatentCache, MetaEncoding};
use taste_db::Connection;
use taste_tokenizer::ColumnContent;

/// Output of the Phase 1 data-preparation stage.
pub struct P1Prep {
    /// Metadata chunks (≤ `l` columns each).
    pub chunks: Vec<TableChunk>,
    /// Total columns in the table.
    pub ncols: usize,
}

/// Output of the Phase 1 inference stage.
#[derive(Clone)]
pub struct P1Infer {
    /// Admitted types per column after P1 (`A_1^c = {s | p ≥ β}`).
    pub admitted: Vec<LabelSet>,
    /// Ordinals of the uncertain columns (`C_u`).
    pub uncertain: Vec<u16>,
    /// Whether the metadata tower emitted any non-finite probability —
    /// the rollout subsystem's sentinel for a numerically broken model
    /// (a NaN compares false against both thresholds, so it would
    /// otherwise silently read as "rejected").
    pub nonfinite: bool,
}

/// The verdicts a table settles on when its P2 work is skipped — by
/// graceful degradation (scan budget exhausted) or by overload shedding:
/// the P1 metadata-only admitted sets, for every column. Shared by both
/// paths so a shed table is byte-identical to a degraded one.
pub fn shed_finals(infer1: &P1Infer) -> Vec<LabelSet> {
    infer1.admitted.clone()
}

/// Output of the Phase 2 data-preparation stage: per chunk, per column,
/// the scanned content (`Some` exactly for uncertain columns).
pub struct P2Prep {
    /// Aligned with the chunk/column layout of [`P1Prep::chunks`].
    pub contents: Vec<Vec<Option<ColumnContent>>>,
}

/// P1-S1: fetch table + column metadata through the connection and build
/// model chunks.
pub fn prep_phase1(conn: &Connection, tid: TableId, cfg: &TasteConfig) -> Result<P1Prep> {
    let meta = conn.fetch_table_meta(tid)?;
    let columns = conn.fetch_columns_meta(tid)?;
    let ncols = columns.len();
    let chunks = build_chunks(&meta, &columns, cfg.l, cfg.use_histograms);
    Ok(P1Prep { chunks, ncols })
}

/// P1-S2: metadata-tower inference + threshold classification (§3.2).
///
/// Under latent caching (`cfg.caching` and a cache supplied), each
/// chunk's encoding is stored under `(tid, chunk_index)` for P2 to reuse;
/// the *w/o caching* variant stores nothing and P2 recomputes.
///
/// Model compute runs on `inf`, the calling worker's long-lived
/// [`Inferencer`] (tape-free by default; see
/// [`crate::config::ExecutionConfig`]).
pub fn infer_phase1(
    model: &Adtd,
    cfg: &TasteConfig,
    tid: TableId,
    prep: &P1Prep,
    cache: Option<&LatentCache>,
    inf: &mut Inferencer,
) -> P1Infer {
    let mut admitted = Vec::with_capacity(prep.ncols);
    let mut uncertain = Vec::new();
    let mut nonfinite = false;
    for (chunk_idx, chunk) in prep.chunks.iter().enumerate() {
        let enc = Arc::new(inf.encode_meta(model, chunk));
        let probs = inf.predict_meta(model, &enc, &chunk.nonmeta);
        for (j, row) in probs.iter().enumerate() {
            let ordinal = chunk.ordinals[j];
            let mut a1 = LabelSet::empty();
            let mut is_uncertain = false;
            for (s, &p) in row.iter().enumerate() {
                nonfinite |= !p.is_finite();
                if p >= cfg.beta {
                    a1.insert(TypeId(s as u32));
                } else if p > cfg.alpha {
                    is_uncertain = true;
                }
            }
            admitted.push(a1);
            if is_uncertain && cfg.p2_possible() {
                uncertain.push(ordinal);
            }
        }
        if cfg.caching {
            if let Some(cache) = cache {
                let key: CacheKey = (tid, chunk_idx as u32);
                cache.put(key, enc);
            }
        }
    }
    P1Infer { admitted, uncertain, nonfinite }
}

/// P2-S1: scan the uncertain columns' content (only theirs — columns in
/// `C \ C_u` are never read, §3.3) and select the first `n` non-empty
/// values per column.
///
/// The row-selection loop observes `cancel` so a watchdog-abandoned
/// table stops scanning mid-stage instead of running to completion.
pub fn prep_phase2(
    conn: &Connection,
    tid: TableId,
    prep1: &P1Prep,
    uncertain: &[u16],
    cfg: &TasteConfig,
    cancel: &CancelToken,
) -> Result<P2Prep> {
    let mut contents: Vec<Vec<Option<ColumnContent>>> = prep1
        .chunks
        .iter()
        .map(|c| vec![None; c.ordinals.len()])
        .collect();
    if uncertain.is_empty() {
        return Ok(P2Prep { contents });
    }
    let mut ordinals = uncertain.to_vec();
    ordinals.sort_unstable();
    ordinals.dedup();
    cancel.check("prep_phase2 scan")?;
    let rows = conn.scan_columns(tid, &ordinals, cfg.scan_method())?;
    // rows are projected in ascending-ordinal order.
    let mut selected: Vec<ColumnContent> = vec![ColumnContent::default(); ordinals.len()];
    for row in &rows {
        cancel.check("prep_phase2 row loop")?;
        for (k, cell) in row.iter().enumerate() {
            let bucket = &mut selected[k].cells;
            if bucket.len() < cfg.n && !cell.is_empty() {
                bucket.push(cell.render());
            }
        }
    }
    // Route each scanned column's content to its chunk slot.
    for (k, &ordinal) in ordinals.iter().enumerate() {
        'outer: for (chunk_idx, chunk) in prep1.chunks.iter().enumerate() {
            for (j, &o) in chunk.ordinals.iter().enumerate() {
                if o == ordinal {
                    contents[chunk_idx][j] = Some(selected[k].clone());
                    break 'outer;
                }
            }
        }
    }
    Ok(P2Prep { contents })
}

/// P2-S2: content-tower inference over the uncertain columns, combining
/// `A^c = A_1^c` for certain columns and `A^c = A_2^c` for uncertain
/// ones (§3.3). Returns the final admitted sets per column.
#[allow(clippy::too_many_arguments)] // the stage's full upstream state
pub fn infer_phase2(
    model: &Adtd,
    cfg: &TasteConfig,
    tid: TableId,
    prep1: &P1Prep,
    infer1: &P1Infer,
    prep2: &P2Prep,
    cache: Option<&LatentCache>,
    inf: &mut Inferencer,
) -> Vec<LabelSet> {
    let mut finals = infer1.admitted.clone();
    if infer1.uncertain.is_empty() {
        return finals;
    }
    let mut col_base = 0usize;
    for (chunk_idx, chunk) in prep1.chunks.iter().enumerate() {
        let chunk_contents = &prep2.contents[chunk_idx];
        let any = chunk_contents.iter().any(Option::is_some);
        if !any {
            col_base += chunk.ordinals.len();
            continue;
        }
        // Latent cache path: reuse the P1 encoding when cached, else
        // recompute the metadata tower (the w/o-caching variant, or a
        // cache eviction under very large batches).
        let key: CacheKey = (tid, chunk_idx as u32);
        let enc: Arc<MetaEncoding> = match cache.and_then(|c| c.get(&key)) {
            Some(enc) => enc,
            None => Arc::new(inf.encode_meta(model, chunk)),
        };
        let probs = inf.predict_content(model, &enc, chunk_contents, &chunk.nonmeta);
        for (j, p) in probs.iter().enumerate() {
            if let Some(row) = p {
                let a2 = LabelSet::from_iter(
                    row.iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= cfg.p2_threshold)
                        .map(|(s, _)| TypeId(s as u32)),
                );
                finals[col_base + j] = a2;
            }
        }
        col_base += chunk.ordinals.len();
    }
    finals
}

// ---- cross-table micro-batched inference stages ------------------------
//
// The batched variants run one fused model pass over chunks drawn from
// many tables and scatter per-table results back in input order. They
// are bit-identical to looping the per-table functions above: row-wise
// ops are unchanged under row-stacking and attention is computed
// block-diagonal per sequence (see `taste_model::Adtd::encode_meta_batched`).

/// One table's P1 inference stage inside a micro-batch.
pub struct P1Item<'a> {
    /// The owning table.
    pub tid: TableId,
    /// Its P1 preparation output.
    pub prep: &'a P1Prep,
}

/// Batched P1-S2: [`infer_phase1`] over many tables in fused forward
/// passes. Returns one [`P1Infer`] per item, in input order, each
/// bit-identical to the per-table call; cache writes are identical too
/// (same `(tid, chunk_index)` keys, same encodings).
pub fn infer_phase1_batched(
    model: &Adtd,
    cfg: &TasteConfig,
    items: &[P1Item<'_>],
    cache: Option<&LatentCache>,
    inf: &mut Inferencer,
) -> Vec<P1Infer> {
    let chunk_refs: Vec<&TableChunk> =
        items.iter().flat_map(|it| it.prep.chunks.iter()).collect();
    let encs = inf.encode_meta_batch(model, &chunk_refs);
    let meta_items: Vec<(&MetaEncoding, &[Vec<f32>])> = encs
        .iter()
        .zip(&chunk_refs)
        .map(|(e, c)| (e, c.nonmeta.as_slice()))
        .collect();
    let probs_per_chunk = inf.predict_meta_batch(model, &meta_items);

    let mut encs = encs.into_iter();
    let mut probs_per_chunk = probs_per_chunk.into_iter();
    let mut out = Vec::with_capacity(items.len());
    for it in items {
        let mut admitted = Vec::with_capacity(it.prep.ncols);
        let mut uncertain = Vec::new();
        let mut nonfinite = false;
        for (chunk_idx, chunk) in it.prep.chunks.iter().enumerate() {
            let enc = Arc::new(encs.next().expect("one encoding per chunk"));
            let probs = probs_per_chunk.next().expect("one prob block per chunk");
            for (j, row) in probs.iter().enumerate() {
                let ordinal = chunk.ordinals[j];
                let mut a1 = LabelSet::empty();
                let mut is_uncertain = false;
                for (s, &p) in row.iter().enumerate() {
                    nonfinite |= !p.is_finite();
                    if p >= cfg.beta {
                        a1.insert(TypeId(s as u32));
                    } else if p > cfg.alpha {
                        is_uncertain = true;
                    }
                }
                admitted.push(a1);
                if is_uncertain && cfg.p2_possible() {
                    uncertain.push(ordinal);
                }
            }
            if cfg.caching {
                if let Some(cache) = cache {
                    let key: CacheKey = (it.tid, chunk_idx as u32);
                    cache.put(key, enc);
                }
            }
        }
        out.push(P1Infer { admitted, uncertain, nonfinite });
    }
    out
}

/// One table's P2 inference stage inside a micro-batch.
pub struct P2Item<'a> {
    /// The owning table.
    pub tid: TableId,
    /// Its P1 preparation output.
    pub prep1: &'a P1Prep,
    /// Its P1 inference output.
    pub infer1: &'a P1Infer,
    /// Its P2 preparation output (scanned content).
    pub prep2: &'a P2Prep,
}

/// A chunk with scanned content, staged for the fused content pass.
struct ActiveChunk {
    item: usize,
    chunk_idx: usize,
    col_base: usize,
    enc: Option<Arc<MetaEncoding>>,
}

/// Batched P2-S2: [`infer_phase2`] over many tables in fused content
/// passes. Returns each table's final admitted sets, in input order,
/// bit-identical to the per-table calls — including the latent-cache
/// hit/miss pattern (one `get` per chunk with content, recompute on
/// miss).
pub fn infer_phase2_batched(
    model: &Adtd,
    cfg: &TasteConfig,
    items: &[P2Item<'_>],
    cache: Option<&LatentCache>,
    inf: &mut Inferencer,
) -> Vec<Vec<LabelSet>> {
    let mut finals: Vec<Vec<LabelSet>> =
        items.iter().map(|it| it.infer1.admitted.clone()).collect();

    // Stage every chunk that has scanned content, looking up its cached
    // P1 encoding exactly as the per-table path would.
    let mut actives: Vec<ActiveChunk> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        if it.infer1.uncertain.is_empty() {
            continue;
        }
        let mut col_base = 0usize;
        for (chunk_idx, chunk) in it.prep1.chunks.iter().enumerate() {
            let any = it.prep2.contents[chunk_idx].iter().any(Option::is_some);
            if any {
                let key: CacheKey = (it.tid, chunk_idx as u32);
                let enc = cache.and_then(|c| c.get(&key));
                actives.push(ActiveChunk { item: i, chunk_idx, col_base, enc });
            }
            col_base += chunk.ordinals.len();
        }
    }
    if actives.is_empty() {
        return finals;
    }

    // Recompute the metadata tower for cache misses in one fused pass.
    let missing: Vec<usize> =
        (0..actives.len()).filter(|&a| actives[a].enc.is_none()).collect();
    if !missing.is_empty() {
        let chunk_refs: Vec<&TableChunk> = missing
            .iter()
            .map(|&a| &items[actives[a].item].prep1.chunks[actives[a].chunk_idx])
            .collect();
        let encs = inf.encode_meta_batch(model, &chunk_refs);
        for (&a, enc) in missing.iter().zip(encs) {
            actives[a].enc = Some(Arc::new(enc));
        }
    }

    // One fused content pass over every active chunk.
    let content_items: Vec<ContentBatchItem<'_>> = actives
        .iter()
        .map(|a| {
            let it = &items[a.item];
            let chunk = &it.prep1.chunks[a.chunk_idx];
            let enc = a.enc.as_deref().expect("every active chunk has an encoding");
            (enc, it.prep2.contents[a.chunk_idx].as_slice(), chunk.nonmeta.as_slice())
        })
        .collect();
    let probs_per_chunk = inf.predict_content_batch(model, &content_items);

    // Scatter thresholded verdicts back to the owning tables.
    for (a, probs) in actives.iter().zip(probs_per_chunk) {
        for (j, p) in probs.iter().enumerate() {
            if let Some(row) = p {
                let a2 = LabelSet::from_iter(
                    row.iter()
                        .enumerate()
                        .filter(|(_, &p)| p >= cfg.p2_threshold)
                        .map(|(s, _)| TypeId(s as u32)),
                );
                finals[a.item][a.col_base + j] = a2;
            }
        }
    }
    finals
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{Cell, ColumnId, ColumnMeta, RawType, Table, TableMeta};
    use taste_db::{Database, LatencyProfile};
    use taste_model::ModelConfig;
    use taste_tokenizer::{Tokenizer, VocabBuilder};

    fn tokenizer() -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in ["users", "city", "num", "text", "int", "demo", "alpha"] {
            b.add_word(w);
            b.add_word(w);
        }
        Tokenizer::new(b.build(100, 1))
    }

    fn model(ntypes: usize) -> Adtd {
        Adtd::new(ModelConfig::tiny(), tokenizer(), ntypes, 1)
    }

    fn inf() -> Inferencer {
        Inferencer::default()
    }

    fn db_with_table(ncols: usize) -> (Arc<Database>, TableId) {
        let db = Database::new("d", LatencyProfile::zero());
        let tid = TableId(0);
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|i| ColumnMeta {
                id: ColumnId::new(tid, i as u16),
                name: if i % 2 == 0 { "city".into() } else { format!("num{i}") },
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows: Vec<Vec<Cell>> = (0..20)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r + c))).collect())
            .collect();
        let table = Table {
            meta: TableMeta { id: tid, name: "users_demo".into(), comment: None, row_count: 20 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        let tid = db.create_table(&table).unwrap();
        (db, tid)
    }

    #[test]
    fn prep_phase1_builds_chunks_under_l() {
        let (db, tid) = db_with_table(5);
        let conn = db.connect();
        let cfg = TasteConfig { l: 2, ..Default::default() };
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        assert_eq!(prep.ncols, 5);
        assert_eq!(prep.chunks.len(), 3);
    }

    #[test]
    fn infer_phase1_threshold_algebra() {
        let (db, tid) = db_with_table(4);
        let conn = db.connect();
        // With alpha=beta the uncertain band is empty regardless of the
        // (untrained) model's outputs.
        let cfg = TasteConfig::default().without_p2();
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let m = model(5);
        let out = infer_phase1(&m, &cfg, tid, &prep, None, &mut inf());
        assert!(out.uncertain.is_empty(), "alpha == beta must yield no uncertain columns");
        assert_eq!(out.admitted.len(), 4);

        // With the widest band every column is uncertain for an
        // untrained model (probabilities hover near 0.5).
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let out = infer_phase1(&m, &cfg, tid, &prep, None, &mut inf());
        assert_eq!(out.uncertain.len(), 4);
    }

    #[test]
    fn infer_phase1_populates_cache_when_enabled() {
        let (db, tid) = db_with_table(3);
        let conn = db.connect();
        let cfg = TasteConfig { l: 2, ..Default::default() };
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let m = model(4);
        let cache = LatentCache::new(8);
        let _out = infer_phase1(&m, &cfg, tid, &prep, Some(&cache), &mut inf());
        assert_eq!(cache.len(), 2, "one entry per chunk");

        let no_cache_cfg = TasteConfig { caching: false, ..cfg };
        let cache2 = LatentCache::new(8);
        let _out2 = infer_phase1(&m, &no_cache_cfg, tid, &prep, Some(&cache2), &mut inf());
        assert!(cache2.is_empty());
    }

    #[test]
    fn prep_phase2_scans_only_uncertain_columns() {
        let (db, tid) = db_with_table(4);
        let conn = db.connect();
        let cfg = TasteConfig { n: 3, ..Default::default() };
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let before = db.ledger().snapshot();
        let p2 = prep_phase2(&conn, tid, &prep, &[1, 3], &cfg, &CancelToken::new()).unwrap();
        let delta = db.ledger().snapshot().since(&before);
        assert_eq!(delta.columns_scanned, 2);
        let flat: Vec<&Option<ColumnContent>> = p2.contents.iter().flatten().collect();
        assert!(flat[0].is_none() && flat[2].is_none());
        assert_eq!(flat[1].as_ref().unwrap().cells.len(), 3);
        assert_eq!(flat[3].as_ref().unwrap().cells.len(), 3);
    }

    #[test]
    fn prep_phase2_empty_uncertain_is_free() {
        let (db, tid) = db_with_table(3);
        let conn = db.connect();
        let cfg = TasteConfig::default();
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let before = db.ledger().snapshot();
        let p2 = prep_phase2(&conn, tid, &prep, &[], &cfg, &CancelToken::new()).unwrap();
        assert_eq!(db.ledger().snapshot().since(&before).scan_queries, 0);
        assert!(p2.contents.iter().flatten().all(Option::is_none));
    }

    #[test]
    fn prep_phase2_observes_cancellation() {
        use crate::watchdog::CancelReason;
        let (db, tid) = db_with_table(3);
        let conn = db.connect();
        let cfg = TasteConfig::default();
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let token = CancelToken::new();
        token.cancel(CancelReason::StageTimeout);
        let err =
            prep_phase2(&conn, tid, &prep, &[0, 1], &cfg, &token).map(|_| ()).unwrap_err();
        assert!(matches!(err, taste_core::TasteError::Cancelled(_)), "{err:?}");
        // An empty uncertain set short-circuits before the scan and
        // never observes the token.
        assert!(prep_phase2(&conn, tid, &prep, &[], &cfg, &token).is_ok());
    }

    #[test]
    fn infer_phase2_overrides_only_uncertain_columns() {
        let (db, tid) = db_with_table(4);
        let conn = db.connect();
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, ..Default::default() };
        let m = model(4);
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let infer1 = infer_phase1(&m, &cfg, tid, &prep, None, &mut inf());
        // Only scan columns 0 and 2.
        let p2 = prep_phase2(&conn, tid, &prep, &[0, 2], &cfg, &CancelToken::new()).unwrap();
        let finals = infer_phase2(&m, &cfg, tid, &prep, &infer1, &p2, None, &mut inf());
        assert_eq!(finals.len(), 4);
        // Unscanned columns keep their P1 admitted sets.
        assert_eq!(finals[1], infer1.admitted[1]);
        assert_eq!(finals[3], infer1.admitted[3]);
    }

    #[test]
    fn stages_agree_across_execution_backends() {
        // The same P1 + P2 pass, served tape-free and on the tape, must
        // produce identical verdicts (the detect_batch-level version of
        // this check lives in engine.rs).
        use taste_model::ExecMode;
        let (db, tid) = db_with_table(4);
        let conn = db.connect();
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, l: 2, ..Default::default() };
        let m = model(4);
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();

        let mut free = Inferencer::new(ExecMode::TapeFree);
        let mut taped = Inferencer::new(ExecMode::Taped);
        let i1_free = infer_phase1(&m, &cfg, tid, &prep, None, &mut free);
        let i1_taped = infer_phase1(&m, &cfg, tid, &prep, None, &mut taped);
        assert_eq!(i1_free.admitted, i1_taped.admitted);
        assert_eq!(i1_free.uncertain, i1_taped.uncertain);

        let p2 = prep_phase2(&conn, tid, &prep, &i1_free.uncertain, &cfg, &CancelToken::new()).unwrap();
        let f_free = infer_phase2(&m, &cfg, tid, &prep, &i1_free, &p2, None, &mut free);
        let f_taped = infer_phase2(&m, &cfg, tid, &prep, &i1_taped, &p2, None, &mut taped);
        assert_eq!(f_free, f_taped, "backends must agree on final verdicts");
    }

    fn db_with_tables(widths: &[usize]) -> (Arc<Database>, Vec<TableId>) {
        let db = Database::new("d", LatencyProfile::zero());
        let tids = widths
            .iter()
            .enumerate()
            .map(|(k, &ncols)| {
                let tid = TableId(k as u32);
                let columns: Vec<ColumnMeta> = (0..ncols)
                    .map(|i| ColumnMeta {
                        id: ColumnId::new(tid, i as u16),
                        name: if (i + k) % 2 == 0 { "city".into() } else { format!("num{i}") },
                        comment: None,
                        raw_type: RawType::Text,
                        nullable: false,
                        stats: Default::default(),
                        histogram: None,
                    })
                    .collect();
                let rows: Vec<Vec<Cell>> = (0..12)
                    .map(|r| {
                        (0..ncols).map(|c| Cell::Text(format!("alpha{}", r + c + k))).collect()
                    })
                    .collect();
                let table = Table {
                    meta: TableMeta {
                        id: tid,
                        name: format!("users_demo{k}"),
                        comment: None,
                        row_count: 12,
                    },
                    columns,
                    rows,
                    labels: vec![LabelSet::empty(); ncols],
                };
                db.create_table(&table).unwrap()
            })
            .collect();
        (db, tids)
    }

    #[test]
    fn batched_p1_matches_per_table_and_fills_cache_identically() {
        let (db, tids) = db_with_tables(&[1, 3, 2, 5]);
        let conn = db.connect();
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, l: 2, ..Default::default() };
        let m = model(4);
        let preps: Vec<P1Prep> =
            tids.iter().map(|&tid| prep_phase1(&conn, tid, &cfg).unwrap()).collect();

        let solo_cache = LatentCache::new(64);
        let solo: Vec<P1Infer> = tids
            .iter()
            .zip(&preps)
            .map(|(&tid, p)| infer_phase1(&m, &cfg, tid, p, Some(&solo_cache), &mut inf()))
            .collect();

        let batch_cache = LatentCache::new(64);
        let items: Vec<P1Item> =
            tids.iter().zip(&preps).map(|(&tid, prep)| P1Item { tid, prep }).collect();
        let batched = infer_phase1_batched(&m, &cfg, &items, Some(&batch_cache), &mut inf());

        assert_eq!(batched.len(), solo.len());
        for (b, s) in batched.iter().zip(&solo) {
            assert_eq!(b.admitted, s.admitted);
            assert_eq!(b.uncertain, s.uncertain);
        }
        // Same keys, same cached bytes.
        assert_eq!(batch_cache.len(), solo_cache.len());
        for (&tid, prep) in tids.iter().zip(&preps) {
            for chunk_idx in 0..prep.chunks.len() {
                let key: CacheKey = (tid, chunk_idx as u32);
                let a = solo_cache.get(&key).expect("per-table path cached this chunk");
                let b = batch_cache.get(&key).expect("batched path must cache this chunk");
                assert_eq!(a.layer_latents, b.layer_latents, "cache entry {key:?}");
                assert_eq!(a.col_marker_pos, b.col_marker_pos);
            }
        }
    }

    #[test]
    fn batched_p2_matches_per_table_with_and_without_cache() {
        let (db, tids) = db_with_tables(&[2, 4, 1]);
        let conn = db.connect();
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, l: 2, ..Default::default() };
        let m = model(4);
        for use_cache in [true, false] {
            let cache = use_cache.then(|| LatentCache::new(64));
            let preps: Vec<P1Prep> =
                tids.iter().map(|&tid| prep_phase1(&conn, tid, &cfg).unwrap()).collect();
            let infer1s: Vec<P1Infer> = tids
                .iter()
                .zip(&preps)
                .map(|(&tid, p)| infer_phase1(&m, &cfg, tid, p, cache.as_ref(), &mut inf()))
                .collect();
            // One table rides along with no uncertain columns at all.
            let mut infer1s = infer1s;
            infer1s[2].uncertain.clear();
            let p2s: Vec<P2Prep> = tids
                .iter()
                .zip(&preps)
                .zip(&infer1s)
                .map(|((&tid, p), i1)| {
                    prep_phase2(&conn, tid, p, &i1.uncertain, &cfg, &CancelToken::new()).unwrap()
                })
                .collect();

            let solo: Vec<Vec<LabelSet>> = tids
                .iter()
                .enumerate()
                .map(|(k, &tid)| {
                    infer_phase2(
                        &m, &cfg, tid, &preps[k], &infer1s[k], &p2s[k], cache.as_ref(),
                        &mut inf(),
                    )
                })
                .collect();

            let items: Vec<P2Item> = tids
                .iter()
                .enumerate()
                .map(|(k, &tid)| P2Item {
                    tid,
                    prep1: &preps[k],
                    infer1: &infer1s[k],
                    prep2: &p2s[k],
                })
                .collect();
            let batched = infer_phase2_batched(&m, &cfg, &items, cache.as_ref(), &mut inf());
            assert_eq!(batched, solo, "use_cache={use_cache}");
        }
    }

    #[test]
    fn infer_phase2_with_cache_equals_recompute() {
        let (db, tid) = db_with_table(3);
        let conn = db.connect();
        let cfg = TasteConfig { alpha: 0.0001, beta: 0.9999, l: 2, ..Default::default() };
        let m = model(4);
        let prep = prep_phase1(&conn, tid, &cfg).unwrap();
        let cache = LatentCache::new(8);
        let infer1 = infer_phase1(&m, &cfg, tid, &prep, Some(&cache), &mut inf());
        let p2 = prep_phase2(&conn, tid, &prep, &infer1.uncertain, &cfg, &CancelToken::new()).unwrap();
        let cached = infer_phase2(&m, &cfg, tid, &prep, &infer1, &p2, Some(&cache), &mut inf());

        let nc_cfg = TasteConfig { caching: false, ..cfg };
        let infer1_nc = infer_phase1(&m, &nc_cfg, tid, &prep, None, &mut inf());
        let recomputed = infer_phase2(&m, &nc_cfg, tid, &prep, &infer1_nc, &p2, None, &mut inf());
        assert_eq!(cached, recomputed, "caching must not change results");
    }
}
