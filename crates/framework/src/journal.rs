//! The resumable verdict journal.
//!
//! Every table that reaches a *final* outcome during a journaled run has
//! its verdicts appended here as one self-validating record (length
//! prefix + CRC32C, see [`taste_core::checksum`]). If the process dies
//! mid-batch, [`replay`] recovers every fully-written record, truncates
//! the torn tail left by an interrupted `write`, and quarantines (skips
//! and counts) any record whose payload no longer matches its checksum —
//! so [`crate::TasteEngine::resume`] can skip finished tables and run
//! only the remainder.
//!
//! Cancelled tables are deliberately *not* journaled: cancellation is a
//! non-final outcome, and leaving those tables out of the journal is
//! exactly what makes the resumed run pick them up again.

use crate::report::{ResilienceSummary, TableResult};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use taste_core::checksum::{decode_record, encode_record, DecodeStep};
use taste_core::{LabelSet, Result, TableId, TableOutcome, TasteError};

/// One journaled table: its final outcome and everything needed to
/// rebuild its [`TableResult`] on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Which table.
    pub table: TableId,
    /// The final outcome the table reached (never `Cancelled`).
    pub outcome: TableOutcome,
    /// Final admitted types per column.
    pub admitted: Vec<LabelSet>,
    /// Columns uncertain after P1.
    pub uncertain_columns: usize,
    /// Fault-handling telemetry for the table.
    pub resilience: ResilienceSummary,
    /// End-to-end latency of the table when it first ran. Records
    /// written before latency tracking existed deserialize to zero.
    #[serde(default)]
    pub latency: std::time::Duration,
    /// Version of the model the table's verdicts were served on, so a
    /// resumed run knows which weights produced them. Records written
    /// before the rollout subsystem existed deserialize to zero (the
    /// same value a rollout-disabled run stamps).
    #[serde(default)]
    pub model_version: u64,
}

impl JournalRecord {
    /// Rebuilds the report row this record stands for.
    pub fn into_result(self) -> TableResult {
        TableResult {
            table: self.table,
            admitted: self.admitted,
            uncertain_columns: self.uncertain_columns,
            outcome: self.outcome,
            resilience: self.resilience,
            latency: self.latency,
            model_version: self.model_version,
        }
    }
}

/// Append-only journal writer. Each [`append`](JournalWriter::append)
/// frames the record with [`encode_record`], writes it in one `write_all`
/// and flushes, so a crash can tear at most the final record.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) a journal at `path`.
    pub fn create(path: &Path) -> Result<JournalWriter> {
        let file = File::create(path)
            .map_err(|e| TasteError::Serde(format!("create journal {}: {e}", path.display())))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// Opens an existing journal for appending. Call only after
    /// [`replay`] has repaired the tail, so appends land on a record
    /// boundary.
    pub fn append_to(path: &Path) -> Result<JournalWriter> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| TasteError::Serde(format!("open journal {}: {e}", path.display())))?;
        Ok(JournalWriter { file, path: path.to_path_buf() })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, record: &JournalRecord) -> Result<()> {
        debug_assert!(record.outcome.is_final(), "only final outcomes are journaled");
        let payload = serde_json::to_vec(record)
            .map_err(|e| TasteError::Serde(format!("encode journal record: {e}")))?;
        let framed = encode_record(&payload);
        self.file
            .write_all(&framed)
            .and_then(|()| self.file.flush())
            .map_err(|e| TasteError::Serde(format!("append to journal {}: {e}", self.path.display())))?;
        // Best-effort durability; the record is already torn-tail-safe.
        let _ = self.file.sync_data();
        Ok(())
    }
}

/// What [`replay`] recovered from a journal.
#[derive(Debug, Default)]
pub struct JournalReplay {
    /// Every intact record, in append order.
    pub records: Vec<JournalRecord>,
    /// Records quarantined because their checksum or encoding was bad.
    pub corrupt_records: u64,
    /// Whether a torn (partially-written) tail was found and truncated.
    pub torn_tail: bool,
    /// Bytes removed when truncating the torn tail.
    pub truncated_bytes: u64,
}

/// Replays the journal at `path`: returns every intact record, skipping
/// and counting corrupt ones, and truncates the file past the last
/// decodable boundary so subsequent appends are well-framed.
pub fn replay(path: &Path) -> Result<JournalReplay> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| TasteError::Serde(format!("open journal {}: {e}", path.display())))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)
        .map_err(|e| TasteError::Serde(format!("read journal {}: {e}", path.display())))?;

    let mut replay = JournalReplay::default();
    let mut offset = 0usize;
    while offset < buf.len() {
        match decode_record(&buf[offset..]) {
            DecodeStep::Record { payload, consumed } => {
                match serde_json::from_slice::<JournalRecord>(payload) {
                    Ok(record) => replay.records.push(record),
                    // Checksum held but the payload is not a record we
                    // understand: quarantine it like a corrupt one.
                    Err(_) => replay.corrupt_records += 1,
                }
                offset += consumed;
            }
            DecodeStep::CorruptPayload { consumed } => {
                replay.corrupt_records += 1;
                offset += consumed;
            }
            DecodeStep::TornTail => {
                replay.torn_tail = true;
                replay.truncated_bytes = (buf.len() - offset) as u64;
                file.set_len(offset as u64)
                    .map_err(|e| TasteError::Serde(format!("truncate journal {}: {e}", path.display())))?;
                break;
            }
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use taste_core::TypeId;

    fn temp_path(tag: &str) -> PathBuf {
        let tid = format!("{:?}", std::thread::current().id());
        std::env::temp_dir().join(format!(
            "taste-journal-{tag}-{}-{}",
            std::process::id(),
            tid.replace(|c: char| !c.is_ascii_alphanumeric(), "")
        ))
    }

    fn record(t: u32, outcome: TableOutcome) -> JournalRecord {
        JournalRecord {
            table: TableId(t),
            outcome,
            admitted: vec![LabelSet::from_iter([TypeId(1), TypeId(3)]), LabelSet::empty()],
            uncertain_columns: 1,
            resilience: ResilienceSummary { attempts: 2, ..Default::default() },
            latency: std::time::Duration::from_millis(3),
            model_version: 5,
        }
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let path = temp_path("roundtrip");
        let mut w = JournalWriter::create(&path).unwrap();
        let records = vec![
            record(0, TableOutcome::Completed),
            record(1, TableOutcome::Degraded),
            record(2, TableOutcome::Panicked { stage: "P1Infer".into(), payload: "boom".into() }),
        ];
        for r in &records {
            w.append(r).unwrap();
        }
        drop(w);
        let replay = replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.corrupt_records, 0);
        assert!(!replay.torn_tail);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume_cleanly() {
        let path = temp_path("torn");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record(0, TableOutcome::Completed)).unwrap();
        w.append(&record(1, TableOutcome::Completed)).unwrap();
        drop(w);
        // Tear the last record: chop off its final 5 bytes.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();

        let first = replay(&path).unwrap();
        assert_eq!(first.records.len(), 1);
        assert!(first.torn_tail);
        assert!(first.truncated_bytes > 0);

        // After truncation, appending and replaying again is clean.
        let mut w = JournalWriter::append_to(&path).unwrap();
        w.append(&record(2, TableOutcome::TimedOut { stage: "P2Prep".into() })).unwrap();
        drop(w);
        let second = replay(&path).unwrap();
        assert_eq!(second.records.len(), 2);
        assert_eq!(second.records[0].table, TableId(0));
        assert_eq!(second.records[1].table, TableId(2));
        assert!(!second.torn_tail);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_is_quarantined_not_fatal() {
        let path = temp_path("corrupt");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(&record(0, TableOutcome::Completed)).unwrap();
        let boundary = fs::metadata(&path).unwrap().len() as usize;
        w.append(&record(1, TableOutcome::Completed)).unwrap();
        w.append(&record(2, TableOutcome::Completed)).unwrap();
        drop(w);
        // Flip one payload byte inside the middle record.
        let mut bytes = fs::read(&path).unwrap();
        let victim = boundary + taste_core::checksum::RECORD_HEADER_LEN + 3;
        bytes[victim] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let replay = replay(&path).unwrap();
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(
            replay.records.iter().map(|r| r.table).collect::<Vec<_>>(),
            vec![TableId(0), TableId(2)],
            "the records around the corrupt one must survive"
        );
        assert!(!replay.torn_tail);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_journal_is_an_error() {
        let err = replay(&temp_path("missing-never-created"));
        assert!(matches!(err, Err(TasteError::Serde(_))), "{err:?}");
    }

    #[test]
    fn record_rebuilds_its_table_result() {
        let r = record(7, TableOutcome::Degraded);
        let tr = r.clone().into_result();
        assert_eq!(tr.table, TableId(7));
        assert_eq!(tr.admitted, r.admitted);
        assert_eq!(tr.uncertain_columns, 1);
        assert_eq!(tr.outcome, TableOutcome::Degraded);
        assert_eq!(tr.resilience, r.resilience);
        assert_eq!(tr.latency, std::time::Duration::from_millis(3));
        assert_eq!(tr.model_version, 5);
    }

    #[test]
    fn pre_rollout_records_deserialize_with_version_zero() {
        let mut v = serde_json::to_value(record(0, TableOutcome::Completed)).unwrap();
        v.as_object_mut().unwrap().remove("model_version");
        let r: JournalRecord = serde_json::from_value(v).unwrap();
        assert_eq!(r.model_version, 0);
    }

    #[test]
    fn pre_latency_records_deserialize_with_zero_latency() {
        let mut v = serde_json::to_value(record(0, TableOutcome::Completed)).unwrap();
        v.as_object_mut().unwrap().remove("latency");
        let r: JournalRecord = serde_json::from_value(v).unwrap();
        assert_eq!(r.latency, std::time::Duration::ZERO);
    }
}
