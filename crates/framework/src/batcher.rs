//! Cross-table micro-batch planning for the inference stages.
//!
//! The pipelined scheduler historically dispatched one table's inference
//! stage per job, so every `P1Infer`/`P2Infer` pass ran the model over a
//! single table's chunks. Cloud catalogs are dominated by *small* tables,
//! which leaves the fused kernels running at a fraction of their useful
//! row count. The [`BatchPlanner`] changes the unit of inference: eligible
//! inference stages are queued per phase, and one dispatched job serves a
//! micro-batch of columns drawn from many tables in row-stacked forward
//! passes (see [`taste_model::Adtd::encode_meta_batched`]).
//!
//! A phase's queue is flushed by whichever trigger fires first:
//!
//! * **Size** — the queued column count reaches
//!   [`BatchingConfig::max_batch_columns`].
//! * **Deadline** — the oldest queued item has waited
//!   [`BatchingConfig::flush_deadline`], bounding the latency a small
//!   table can pay for batching.
//! * **Drain** — the scheduler has nothing else to dispatch and both
//!   pools are idle, so waiting any longer cannot improve fill.
//!
//! The planner is a passive, clock-free data structure: the scheduler
//! thread owns it, supplies `Instant`s, and decides when to ask for a
//! flush. Shed or cancelled tables are kept out of batches twice — the
//! scheduler routes tables that already have an outcome around the
//! planner, and the batched job re-checks every member under its state
//! lock at execution time.

use crate::config::BatchingConfig;
use crate::report::{BatchingSummary, PhaseBatchingSummary};
use std::collections::VecDeque;
use std::time::Instant;

/// Which inference phase a queued item belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPhase {
    /// Phase 1: metadata-tower inference.
    P1,
    /// Phase 2: content-tower inference.
    P2,
}

impl BatchPhase {
    fn index(self) -> usize {
        match self {
            BatchPhase::P1 => 0,
            BatchPhase::P2 => 1,
        }
    }
}

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The queued column count reached the size budget.
    Size,
    /// The oldest queued item exceeded the flush deadline.
    Deadline,
    /// The pipeline ran dry: nothing else to dispatch, pools idle.
    Drain,
}

/// One table's inference stage waiting for a batch slot.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Scheduler index of the owning table.
    pub t: usize,
    /// Columns this item contributes to the batch (total columns for
    /// P1, uncertain columns for P2).
    pub cols: usize,
    /// When the item became runnable and entered the queue.
    pub since: Instant,
}

/// Per-phase flush accounting, folded into the report at batch end.
#[derive(Debug, Clone, Default)]
struct PhaseStats {
    batches: u64,
    size_flushes: u64,
    deadline_flushes: u64,
    drain_flushes: u64,
    /// Fill ratio (queued columns over budget) of each flushed batch.
    fills: Vec<f64>,
}

impl PhaseStats {
    fn summary(&self) -> PhaseBatchingSummary {
        let mut sorted = self.fills.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("fill ratios are finite"));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let p95 = if sorted.is_empty() {
            0.0
        } else {
            let idx = ((sorted.len() as f64 * 0.95).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        PhaseBatchingSummary {
            batches: self.batches,
            batched_tables: 0,
            batched_columns: 0,
            mean_fill: mean,
            p95_fill: p95,
            size_flushes: self.size_flushes,
            deadline_flushes: self.deadline_flushes,
            drain_flushes: self.drain_flushes,
        }
    }
}

/// Size- and deadline-triggered micro-batch planner with one queue per
/// inference phase. Owned by the scheduler thread; see the module docs
/// for the flush protocol.
pub struct BatchPlanner {
    cfg: BatchingConfig,
    queues: [VecDeque<BatchItem>; 2],
    queued_cols: [usize; 2],
    stats: [PhaseStats; 2],
}

impl BatchPlanner {
    /// A planner with empty queues.
    pub fn new(cfg: BatchingConfig) -> BatchPlanner {
        BatchPlanner {
            cfg,
            queues: [VecDeque::new(), VecDeque::new()],
            queued_cols: [0, 0],
            stats: [PhaseStats::default(), PhaseStats::default()],
        }
    }

    /// Queues one table's inference stage for `phase`.
    pub fn push(&mut self, phase: BatchPhase, t: usize, cols: usize, now: Instant) {
        let p = phase.index();
        self.queued_cols[p] += cols;
        self.queues[p].push_back(BatchItem { t, cols, since: now });
    }

    /// Whether both phase queues are empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Items currently queued across both phases.
    pub fn items(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Whether `phase` should flush now, and why. Size wins over
    /// deadline when both hold, so a full batch is never misattributed
    /// to latency pressure.
    pub fn ready(&self, phase: BatchPhase, now: Instant) -> Option<FlushReason> {
        let p = phase.index();
        let oldest = self.queues[p].front()?;
        if self.queued_cols[p] >= self.cfg.max_batch_columns {
            return Some(FlushReason::Size);
        }
        if now.duration_since(oldest.since) >= self.cfg.flush_deadline {
            return Some(FlushReason::Deadline);
        }
        None
    }

    /// The instant at which `phase`'s oldest item hits its flush
    /// deadline, if anything is queued — the scheduler's wakeup bound.
    pub fn next_deadline(&self, phase: BatchPhase) -> Option<Instant> {
        self.queues[phase.index()].front().map(|it| it.since + self.cfg.flush_deadline)
    }

    /// Takes one batch off `phase`'s queue: the oldest item always, then
    /// more items while the column budget holds. Returns an empty vector
    /// when nothing is queued. Records the flush in the stats.
    pub fn flush(&mut self, phase: BatchPhase, reason: FlushReason) -> Vec<BatchItem> {
        let p = phase.index();
        let mut batch = Vec::new();
        let mut cols = 0usize;
        while let Some(item) = self.queues[p].front() {
            if !batch.is_empty() && cols + item.cols > self.cfg.max_batch_columns {
                break;
            }
            cols += item.cols;
            let item = self.queues[p].pop_front().expect("front observed above");
            self.queued_cols[p] -= item.cols;
            batch.push(item);
        }
        if batch.is_empty() {
            return batch;
        }
        let stats = &mut self.stats[p];
        stats.batches += 1;
        match reason {
            FlushReason::Size => stats.size_flushes += 1,
            FlushReason::Deadline => stats.deadline_flushes += 1,
            FlushReason::Drain => stats.drain_flushes += 1,
        }
        stats.fills.push(cols as f64 / self.cfg.max_batch_columns.max(1) as f64);
        batch
    }

    /// Folds the flush accounting into a report summary. The per-batch
    /// `batched_tables`/`batched_columns` counters are filled in by the
    /// executed jobs, which know how many members were still live.
    pub fn summary(&self) -> BatchingSummary {
        BatchingSummary {
            enabled: true,
            p1: self.stats[0].summary(),
            p2: self.stats[1].summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(max_cols: usize, deadline_ms: u64) -> BatchingConfig {
        BatchingConfig {
            enabled: true,
            max_batch_columns: max_cols,
            flush_deadline: Duration::from_millis(deadline_ms),
        }
    }

    #[test]
    fn size_trigger_fires_at_the_column_budget() {
        let mut p = BatchPlanner::new(cfg(8, 1_000));
        let now = Instant::now();
        p.push(BatchPhase::P1, 0, 3, now);
        p.push(BatchPhase::P1, 1, 4, now);
        assert_eq!(p.ready(BatchPhase::P1, now), None, "7 of 8 columns queued");
        p.push(BatchPhase::P1, 2, 1, now);
        assert_eq!(p.ready(BatchPhase::P1, now), Some(FlushReason::Size));
        // Phases are independent queues.
        assert_eq!(p.ready(BatchPhase::P2, now), None);
        let batch = p.flush(BatchPhase::P1, FlushReason::Size);
        assert_eq!(batch.iter().map(|b| b.t).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(p.is_empty());
    }

    #[test]
    fn deadline_trigger_fires_on_the_oldest_item() {
        let mut p = BatchPlanner::new(cfg(100, 5));
        let t0 = Instant::now();
        p.push(BatchPhase::P2, 4, 2, t0);
        assert_eq!(p.ready(BatchPhase::P2, t0), None);
        let late = t0 + Duration::from_millis(6);
        assert_eq!(p.ready(BatchPhase::P2, late), Some(FlushReason::Deadline));
        assert_eq!(p.next_deadline(BatchPhase::P2), Some(t0 + Duration::from_millis(5)));
        let batch = p.flush(BatchPhase::P2, FlushReason::Deadline);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].t, 4);
    }

    #[test]
    fn size_wins_over_deadline_when_both_hold() {
        let mut p = BatchPlanner::new(cfg(2, 1));
        let t0 = Instant::now();
        p.push(BatchPhase::P1, 0, 2, t0);
        let late = t0 + Duration::from_millis(10);
        assert_eq!(p.ready(BatchPhase::P1, late), Some(FlushReason::Size));
    }

    #[test]
    fn flush_respects_the_budget_but_never_starves_an_oversized_table() {
        let mut p = BatchPlanner::new(cfg(4, 1_000));
        let now = Instant::now();
        p.push(BatchPhase::P1, 0, 9, now); // wider than the whole budget
        p.push(BatchPhase::P1, 1, 1, now);
        assert_eq!(p.ready(BatchPhase::P1, now), Some(FlushReason::Size));
        let first = p.flush(BatchPhase::P1, FlushReason::Size);
        assert_eq!(first.len(), 1, "the oversized table flushes alone");
        assert_eq!(first[0].t, 0);
        // The remainder keeps its original enqueue stamp and flushes on
        // the next trigger.
        assert_eq!(p.items(), 1);
        let rest = p.flush(BatchPhase::P1, FlushReason::Drain);
        assert_eq!(rest[0].t, 1);
        assert!(p.is_empty());
    }

    #[test]
    fn zero_column_items_ride_along_for_free() {
        let mut p = BatchPlanner::new(cfg(2, 1_000));
        let now = Instant::now();
        p.push(BatchPhase::P2, 0, 0, now);
        p.push(BatchPhase::P2, 1, 2, now);
        p.push(BatchPhase::P2, 2, 0, now);
        let batch = p.flush(BatchPhase::P2, FlushReason::Size);
        assert_eq!(batch.iter().map(|b| b.t).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn stats_track_reasons_and_fill_ratios() {
        let mut p = BatchPlanner::new(cfg(8, 1_000));
        let now = Instant::now();
        p.push(BatchPhase::P1, 0, 8, now);
        p.flush(BatchPhase::P1, FlushReason::Size);
        p.push(BatchPhase::P1, 1, 2, now);
        p.flush(BatchPhase::P1, FlushReason::Deadline);
        p.push(BatchPhase::P1, 2, 4, now);
        p.flush(BatchPhase::P1, FlushReason::Drain);
        let s = p.summary();
        assert!(s.enabled);
        assert_eq!(s.p1.batches, 3);
        assert_eq!(s.p1.size_flushes, 1);
        assert_eq!(s.p1.deadline_flushes, 1);
        assert_eq!(s.p1.drain_flushes, 1);
        // Fills 1.0, 0.25, 0.5 → mean ~0.583, p95 = 1.0.
        assert!((s.p1.mean_fill - (1.0 + 0.25 + 0.5) / 3.0).abs() < 1e-12);
        assert!((s.p1.p95_fill - 1.0).abs() < 1e-12);
        assert_eq!(s.p2.batches, 0);
        assert_eq!(s.p2.mean_fill, 0.0);
    }

    #[test]
    fn empty_flush_records_nothing() {
        let mut p = BatchPlanner::new(cfg(8, 1));
        assert!(p.flush(BatchPhase::P1, FlushReason::Drain).is_empty());
        assert_eq!(p.summary().p1.batches, 0);
        assert_eq!(p.ready(BatchPhase::P1, Instant::now()), None);
    }
}
