//! Crash-safety integration tests: journal torn-write properties and
//! kill-and-resume determinism over a flaky tenant.
//!
//! The `#[ignore]`d test is the release-mode crash/resume scenario run
//! by CI via `cargo test --release -- --ignored`.

use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use taste_core::{
    Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta, TableOutcome, TypeId,
};
use taste_db::{Database, FaultProfile, LatencyProfile};
use taste_framework::journal::{replay, JournalRecord, JournalWriter};
use taste_framework::retry::RetryConfig;
use taste_framework::{HardeningConfig, ResilienceSummary, TasteConfig, TasteEngine};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

fn temp_path(tag: &str) -> PathBuf {
    let tid = format!("{:?}", std::thread::current().id());
    std::env::temp_dir().join(format!(
        "taste-crash-{tag}-{}-{}",
        std::process::id(),
        tid.replace(|c: char| !c.is_ascii_alphanumeric(), "")
    ))
}

fn sample_records(n: usize, salt: u64) -> Vec<JournalRecord> {
    (0..n)
        .map(|i| {
            let outcome = match (i as u64 + salt) % 4 {
                0 => TableOutcome::Completed,
                1 => TableOutcome::Degraded,
                2 => TableOutcome::Panicked { stage: "P1Infer".into(), payload: format!("p{salt}") },
                _ => TableOutcome::TimedOut { stage: "P2Prep".into() },
            };
            JournalRecord {
                table: TableId(i as u32),
                outcome,
                admitted: vec![
                    LabelSet::from_iter([TypeId((salt % 7) as u32), TypeId(i as u32 % 5)]);
                    1 + i % 3
                ],
                uncertain_columns: i % 2,
                resilience: ResilienceSummary::default(),
                latency: std::time::Duration::from_millis(1 + (i as u64 + salt) % 9),
                model_version: salt % 3,
            }
        })
        .collect()
}

fn write_journal(path: &Path, records: &[JournalRecord]) {
    let mut w = JournalWriter::create(path).unwrap();
    for r in records {
        w.append(r).unwrap();
    }
}

/// The satellite requirement, literally: truncating a valid journal at
/// EVERY byte offset must neither panic nor produce a record that was
/// never written — replay always yields an exact prefix.
#[test]
fn every_truncation_offset_yields_a_clean_prefix() {
    use taste_core::checksum::{decode_record, DecodeStep};
    let records = sample_records(3, 7);
    let path = temp_path("exhaustive-trunc");
    write_journal(&path, &records);
    let full = fs::read(&path).unwrap();

    // Record boundaries of the intact file, for exact expectations.
    let mut boundaries = vec![0usize];
    let mut off = 0usize;
    while off < full.len() {
        match decode_record(&full[off..]) {
            DecodeStep::Record { consumed, .. } => {
                off += consumed;
                boundaries.push(off);
            }
            other => panic!("intact journal must decode cleanly, got {other:?}"),
        }
    }
    assert_eq!(boundaries.len(), records.len() + 1);

    for cut in 0..=full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        let got = replay(&path).unwrap();
        let complete = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(got.records.len(), complete, "cut={cut}");
        for (g, want) in got.records.iter().zip(&records) {
            assert_eq!(g, want, "cut={cut}: replay must yield a prefix, never a mutant");
        }
        assert_eq!(
            got.torn_tail,
            !boundaries.contains(&cut),
            "cut={cut}: a cut off a record boundary must be flagged as torn"
        );
        assert_eq!(got.corrupt_records, 0, "cut={cut}: truncation is tearing, not corruption");
    }
    fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized variant of the truncation property over varying
    /// record shapes.
    #[test]
    fn truncating_anywhere_is_safe(
        n in 1usize..5,
        salt in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let records = sample_records(n, salt);
        let path = temp_path("prop-trunc");
        write_journal(&path, &records);
        let full = fs::read(&path).unwrap();
        let cut = ((full.len() as f64) * frac) as usize;
        fs::write(&path, &full[..cut]).unwrap();
        let got = replay(&path).unwrap();
        prop_assert!(got.records.len() <= n);
        for (g, want) in got.records.iter().zip(&records) {
            prop_assert_eq!(g, want);
        }
        fs::remove_file(&path).unwrap();
    }

    /// Flipping any single byte never panics and never yields a wrong
    /// verdict: every surviving record is byte-identical to one that was
    /// written (corruption quarantines, it does not mutate).
    #[test]
    fn single_bitflip_never_misreads(
        n in 1usize..5,
        salt in any::<u64>(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let records = sample_records(n, salt);
        let path = temp_path("prop-flip");
        write_journal(&path, &records);
        let mut bytes = fs::read(&path).unwrap();
        let victim = ((bytes.len() as f64 - 1.0) * frac) as usize;
        bytes[victim] ^= 1 << bit;
        fs::write(&path, &bytes).unwrap();
        let got = replay(&path).unwrap();
        prop_assert!(got.records.len() <= n);
        for g in &got.records {
            let original = records.iter().find(|r| r.table == g.table);
            prop_assert_eq!(Some(g), original, "a surviving record must match what was written");
        }
        fs::remove_file(&path).unwrap();
    }
}

// ---------------------------------------------------------------------
// Kill-and-resume determinism over a flaky tenant.
// ---------------------------------------------------------------------

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

fn fixture_db(n_tables: usize) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", LatencyProfile::zero());
    let mut ids = Vec::new();
    for i in 0..n_tables {
        let tid = TableId(0);
        let ncols = 2 + i % 3;
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("city{j}"),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..15)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
            .collect();
        let t = Table {
            meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn engine(cfg: TasteConfig) -> TasteEngine {
    TasteEngine::new(Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9)), cfg).unwrap()
}

fn flaky_profile() -> FaultProfile {
    FaultProfile { seed: 0xC0FFEE, scan_transient: 0.3, ..FaultProfile::none() }
}

fn base_cfg() -> TasteConfig {
    TasteConfig {
        pipelining: true,
        pool_size: 3,
        alpha: 0.0001,
        beta: 0.9999,
        retry: RetryConfig {
            max_attempts: 4,
            base_backoff: std::time::Duration::from_micros(10),
            max_backoff: std::time::Duration::from_micros(50),
            breaker_threshold: 10_000,
            degrade: true,
            ..RetryConfig::default()
        },
        ..Default::default()
    }
}

/// The headline acceptance criterion: a run killed mid-batch and then
/// resumed from its journal produces verdicts identical to the
/// uninterrupted run, with no table processed twice. Runs in release
/// mode via `cargo test --release -- --ignored` in CI.
#[test]
#[ignore = "crash/resume scenario for the release CI job"]
fn killed_and_resumed_run_matches_uninterrupted() {
    const TABLES: usize = 24;
    const HALT_AFTER: usize = 8;

    // Uninterrupted reference run on its own database replica.
    let (db_full, ids) = fixture_db(TABLES);
    db_full.set_fault_profile(flaky_profile());
    let full_path = temp_path("full");
    let full = engine(base_cfg()).detect_batch_journaled(&db_full, &ids, &full_path).unwrap();
    assert_eq!(full.tables.len(), TABLES);

    // The same catalog on a second replica: journaled run that "dies"
    // after HALT_AFTER journaled tables.
    let (db_crash, ids2) = fixture_db(TABLES);
    assert_eq!(ids, ids2, "replicas must agree on table ids");
    db_crash.set_fault_profile(flaky_profile());
    let halt_cfg = TasteConfig {
        hardening: HardeningConfig { halt_after_tables: Some(HALT_AFTER), ..Default::default() },
        ..base_cfg()
    };
    let crash_path = temp_path("crash");
    let aborted = engine(halt_cfg).detect_batch_journaled(&db_crash, &ids, &crash_path).unwrap();
    let unfinished = aborted.cancelled_tables();
    assert!(unfinished > 0, "the halt must interrupt the batch");

    // "Restart the process": reinstalling the profile resets the fault
    // layer's per-table attempt counters, exactly as a fresh process
    // would see them, so the re-run tables face the same fault rolls as
    // in the uninterrupted run.
    db_crash.set_fault_profile(flaky_profile());
    let resumed = engine(base_cfg()).resume(&db_crash, &ids, &crash_path).unwrap();

    assert!(resumed.replayed_tables >= HALT_AFTER as u64);
    assert_eq!(resumed.replayed_tables, (TABLES - unfinished) as u64);
    assert_eq!(resumed.tables.len(), full.tables.len());
    for (a, b) in full.tables.iter().zip(&resumed.tables) {
        assert_eq!(a.table, b.table);
        assert_eq!(a.admitted, b.admitted, "table {}: resume must match uninterrupted", a.table.0);
        assert_eq!(a.outcome, b.outcome, "table {}", a.table.0);
    }
    assert_eq!(resumed.total_columns, full.total_columns);

    // No table processed twice: the journal holds exactly one record
    // per table.
    let journal = replay(&crash_path).unwrap();
    let mut seen: Vec<u32> = journal.records.iter().map(|r| r.table.0).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), TABLES, "each table must be journaled exactly once");
    assert_eq!(journal.records.len(), TABLES);
    assert_eq!(journal.corrupt_records, 0);
    assert!(!journal.torn_tail);

    fs::remove_file(&full_path).unwrap();
    fs::remove_file(&crash_path).unwrap();
}

/// Smoke-sized (non-ignored) variant so the default test run still
/// exercises the full journal→halt→resume loop end to end.
#[test]
fn small_kill_and_resume_roundtrip() {
    let (db_full, ids) = fixture_db(6);
    let full_path = temp_path("small-full");
    let full = engine(base_cfg()).detect_batch_journaled(&db_full, &ids, &full_path).unwrap();

    let (db_crash, _) = fixture_db(6);
    let halt_cfg = TasteConfig {
        hardening: HardeningConfig { halt_after_tables: Some(2), ..Default::default() },
        ..base_cfg()
    };
    let crash_path = temp_path("small-crash");
    let aborted = engine(halt_cfg).detect_batch_journaled(&db_crash, &ids, &crash_path).unwrap();
    assert_eq!(aborted.tables.len(), 6, "a halted batch still reports every table");

    let resumed = engine(base_cfg()).resume(&db_crash, &ids, &crash_path).unwrap();
    assert_eq!(resumed.tables.len(), 6);
    for (a, b) in full.tables.iter().zip(&resumed.tables) {
        assert_eq!(a.table, b.table);
        assert_eq!(a.admitted, b.admitted);
    }
    fs::remove_file(&full_path).unwrap();
    fs::remove_file(&crash_path).unwrap();
}
