//! Hot-reload integration tests: swapping models under live traffic
//! must never tear a request. A healthy candidate promotes through its
//! canary, a corrupt artifact quarantines before it can serve, a
//! regressing candidate rolls back — and through all of it every table
//! completes on exactly one model version, recorded in its result.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{
    Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta, TableOutcome,
};
use taste_db::{Database, LatencyProfile};
use taste_framework::{EpisodeOutcome, RolloutConfig, RolloutSummary, TasteConfig, TasteEngine};
use taste_model::registry::{ModelRegistry, VersionedModel};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

const SEED: u64 = 9;

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

fn fixture_db(n_tables: usize, latency: LatencyProfile) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", latency);
    let mut ids = Vec::new();
    for i in 0..n_tables {
        let tid = TableId(0);
        let ncols = 2 + i % 3;
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("city{j}"),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..15)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
            .collect();
        let t = Table {
            meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn model() -> Arc<Adtd> {
    Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, SEED))
}

/// A candidate guaranteed to disagree with any freshly-seeded incumbent:
/// every parameter forced to a large positive constant saturates the
/// output probabilities to ~1.0, so it admits every type for every
/// column while the incumbent (whose probabilities sit mid-band under
/// the wide α/β thresholds) admits none.
fn saturated_model() -> Arc<Adtd> {
    let mut m = Adtd::new(ModelConfig::tiny(), tokenizer(), 4, SEED);
    let ids: Vec<_> = m.store.ids().collect();
    for id in ids {
        for v in m.store.value_mut(id).as_mut_slice() {
            *v = 8.0;
        }
    }
    Arc::new(m)
}

/// Wide α/β band: every column is uncertain after P1, so every table
/// exercises the full two-phase path.
fn wide_band(pipelining: bool) -> TasteConfig {
    TasteConfig { pipelining, alpha: 0.0001, beta: 0.9999, ..Default::default() }
}

/// Rollout knobs for tests: the latency gate is effectively disabled
/// (unit tests cover it; wall-clock ratios of micro-second inferences
/// are too noisy for an integration assertion).
fn rollout_cfg(canary_fraction: f64, min_canary_tables: u64) -> RolloutConfig {
    RolloutConfig {
        enabled: true,
        initial_version: 1,
        canary_fraction,
        min_canary_tables,
        min_agreement: 0.9,
        max_p99_latency_ratio: 1e6,
    }
}

fn engine(cfg: TasteConfig) -> TasteEngine {
    TasteEngine::new(model(), cfg).unwrap()
}

fn assert_all_completed(reports: &[taste_framework::DetectionReport]) {
    for report in reports {
        for tr in &report.tables {
            assert_eq!(
                tr.outcome,
                TableOutcome::Completed,
                "table {:?} harmed during a swap episode",
                tr.table
            );
        }
    }
}

fn version_counts(reports: &[taste_framework::DetectionReport]) -> std::collections::BTreeMap<u64, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for report in reports {
        for tr in &report.tables {
            *counts.entry(tr.model_version).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn disabled_rollout_is_inert() {
    let (db, ids) = fixture_db(6, LatencyProfile::zero());
    let cfg = wide_band(true);
    assert!(!cfg.rollout.enabled, "rollout must default off");
    let eng = engine(cfg);
    assert!(eng.rollout().is_none());
    let report = eng.detect_batch(&db, &ids).unwrap();
    assert_eq!(report.rollout, RolloutSummary::default());
    assert!(report.tables.iter().all(|t| t.model_version == 0));
}

#[test]
fn healthy_candidate_promotes_and_matches_the_static_run() {
    let (db, ids) = fixture_db(24, LatencyProfile::zero());
    // Reference: the same model served statically, rollout disabled.
    let reference = engine(wide_band(true)).detect_batch(&db, &ids).unwrap();

    let cfg = TasteConfig { rollout: rollout_cfg(1.0, 4), ..wide_band(true) };
    let eng = engine(cfg);
    let rc = Arc::clone(eng.rollout().expect("rollout enabled"));
    assert_eq!(rc.current_version(), 1);
    // Candidate with bit-identical weights: agreement must be exactly 1.
    assert!(rc.offer(VersionedModel { version: 2, model: model() }));
    let report = eng.detect_batch(&db, &ids).unwrap();

    assert_all_completed(std::slice::from_ref(&report));
    let s = &report.rollout;
    assert!(s.enabled);
    assert_eq!((s.promotions, s.rollbacks), (1, 0));
    assert_eq!((s.initial_version, s.final_version), (1, 2));
    assert_eq!(s.episodes.len(), 1);
    let ep = &s.episodes[0];
    assert_eq!(ep.outcome, EpisodeOutcome::Promoted);
    assert_eq!((ep.candidate_version, ep.incumbent_version), (2, 1));
    assert!(ep.gates.all_ok());
    assert!((ep.gates.agreement - 1.0).abs() < 1e-12, "identical weights must fully agree");
    assert!(ep.gates.canary_tables >= 4);

    // Every table served some version, and — weights being identical —
    // every verdict is bit-identical to the static run.
    for (tr, rf) in report.tables.iter().zip(&reference.tables) {
        assert!(tr.model_version == 1 || tr.model_version == 2);
        assert_eq!(tr.admitted, rf.admitted);
        assert_eq!(tr.uncertain_columns, rf.uncertain_columns);
    }
    assert!(
        report.tables.iter().any(|t| t.model_version == 2),
        "the promoted model must actually serve"
    );
}

/// The headline scenario: a background publisher drives the controller
/// through a healthy candidate (promotes), a corrupt artifact
/// (quarantined, never serves), and a regressing candidate (rolls back
/// on agreement) — all while the engine serves batch after batch.
/// Exactly one rollback per bad candidate, and zero tables fail or
/// degrade because of the swaps. (The non-finite output sentinel is
/// covered at unit level: in debug builds the NN executor asserts
/// finiteness inside the forward pass, so a NaN-emitting model cannot
/// even reach the engine's sentinel here.)
#[test]
fn swap_under_load_promotes_quarantines_and_rolls_back() {
    let latency = LatencyProfile {
        connect: Duration::from_micros(100),
        query_rtt: Duration::from_micros(300),
        ..LatencyProfile::zero()
    };
    let (db, ids) = fixture_db(40, latency);
    let cfg = TasteConfig { rollout: rollout_cfg(0.5, 3), ..wide_band(true) };
    let eng = engine(cfg);
    let rc = Arc::clone(eng.rollout().expect("rollout enabled"));

    let reg_dir = std::env::temp_dir()
        .join(format!("taste-rollout-swap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reg_dir);
    let registry = ModelRegistry::new(&reg_dir).unwrap();
    let corrupt_path = registry.path_for(3);

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs(60);
    let publisher = {
        let rc = Arc::clone(&rc);
        let done = Arc::clone(&done);
        let registry = ModelRegistry::new(&reg_dir).unwrap();
        std::thread::spawn(move || {
            let wait = |pred: &dyn Fn(&RolloutSummary) -> bool| {
                while !pred(&rc.summary()) {
                    assert!(Instant::now() < deadline, "publisher timed out");
                    std::thread::sleep(Duration::from_millis(2));
                }
            };
            // 1. Healthy candidate: identical weights, promotes.
            assert!(rc.offer(VersionedModel { version: 2, model: model() }));
            wait(&|s| s.promotions >= 1);
            // 2. Corrupt artifact: random garbage fails the CRC frame,
            //    quarantines, and no candidate enters canary.
            std::fs::write(registry.path_for(3), b"not a model artifact at all").unwrap();
            assert!(!rc.adopt_latest(&registry).unwrap());
            assert_eq!(rc.candidate_version(), None);
            // 3. Regressing candidate: saturated weights disagree on
            //    every column, so the agreement gate rolls it back.
            assert!(rc.offer(VersionedModel { version: 4, model: saturated_model() }));
            wait(&|s| s.rollbacks >= 1);
            done.store(true, Ordering::SeqCst);
        })
    };

    let mut reports = Vec::new();
    while !done.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "serving loop timed out");
        reports.push(eng.detect_batch(&db, &ids).unwrap());
    }
    publisher.join().unwrap();

    // Zero swap-attributable harm: every table of every batch completed.
    assert_all_completed(&reports);

    let s = rc.summary();
    assert_eq!(s.candidates_offered, 2, "corrupt artifact never became a candidate");
    assert_eq!(s.rejected_artifacts, 1);
    assert_eq!(s.promotions, 1);
    assert_eq!(s.rollbacks, 1, "exactly one rollback per bad candidate");
    assert_eq!((s.initial_version, s.final_version), (1, 2));
    assert_eq!(s.episodes.len(), 2);
    assert_eq!(s.episodes[0].outcome, EpisodeOutcome::Promoted);
    assert_eq!(s.episodes[0].candidate_version, 2);
    assert_eq!(s.episodes[1].outcome, EpisodeOutcome::RolledBack);
    assert_eq!(s.episodes[1].candidate_version, 4);
    assert!(
        s.episodes[1].cause.as_deref().unwrap().contains("agreement"),
        "saturated candidate must fail the agreement gate: {:?}",
        s.episodes[1].cause
    );

    // The quarantined artifact was renamed aside, mirroring checkpoint
    // semantics, and is skipped on the next poll instead of re-tried.
    assert!(!corrupt_path.exists(), "corrupt artifact must not stay loadable");
    assert!(
        corrupt_path.with_extension("model.corrupt").exists(),
        "corrupt artifact must be quarantined, not deleted"
    );

    // Version accounting: every verdict is attributed to the exact
    // model that produced it — v1 before the promotion, v2 after, and
    // v4 only as bounded canary exposure while it was being judged.
    let counts = version_counts(&reports);
    assert!(counts.keys().all(|v| [1, 2, 4].contains(v)), "unexpected versions {counts:?}");
    assert!(counts.get(&2).copied().unwrap_or(0) > 0, "promoted model must serve");

    let _ = std::fs::remove_dir_all(&reg_dir);
}

#[test]
fn corrupt_artifact_quarantines_without_serving() {
    let (db, ids) = fixture_db(8, LatencyProfile::zero());
    let cfg = TasteConfig { rollout: rollout_cfg(1.0, 2), ..wide_band(false) };
    let eng = engine(cfg);
    let rc = eng.rollout().unwrap();

    let reg_dir = std::env::temp_dir()
        .join(format!("taste-rollout-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&reg_dir);
    let registry = ModelRegistry::new(&reg_dir).unwrap();
    // A truncated/bit-flipped artifact: framing CRC rejects it.
    std::fs::write(registry.path_for(7), [0u8; 64]).unwrap();

    assert!(!rc.adopt_latest(&registry).unwrap(), "corrupt artifact must not enter canary");
    assert_eq!(rc.candidate_version(), None);
    assert_eq!(rc.current_version(), 1);

    let report = eng.detect_batch(&db, &ids).unwrap();
    assert!(report.tables.iter().all(|t| t.model_version == 1));
    assert_eq!(report.rollout.rejected_artifacts, 1);
    assert_eq!(report.rollout.candidates_offered, 0);
    assert!(registry.path_for(7).with_extension("model.corrupt").exists());
    // The registry is now empty of intact artifacts: polling again is a
    // clean no-op, not an error.
    assert!(!rc.adopt_latest(&registry).unwrap());
    let _ = std::fs::remove_dir_all(&reg_dir);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Runs `ids` through `eng` split at `k`: first chunk, then the
    /// offer, then the rest — returning all table results in order.
    fn run_with_offer(
        eng: &TasteEngine,
        db: &Arc<Database>,
        ids: &[TableId],
        k: usize,
        candidate: Arc<Adtd>,
    ) -> Vec<taste_framework::TableResult> {
        let mut tables = Vec::new();
        if k > 0 {
            tables.extend(eng.detect_batch(db, &ids[..k]).unwrap().tables);
        }
        assert!(eng
            .rollout()
            .unwrap()
            .offer(VersionedModel { version: 2, model: candidate }));
        tables.extend(eng.detect_batch(db, &ids[k..]).unwrap().tables);
        tables
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Linearizability of the swap: wherever the candidate is
        /// offered and whatever fraction canaries, every table's
        /// verdicts are bit-identical to the single-version run of
        /// whichever model its result says served it. The swap can
        /// change *which* version a table gets, never *what* that
        /// version would have said.
        #[test]
        fn any_swap_interleaving_is_linearizable(
            k in 0usize..12,
            frac_tenths in 1u8..=10,
        ) {
            let (db, ids) = fixture_db(12, LatencyProfile::zero());
            // Single-version references, sequential mode for determinism.
            let ref_inc = engine(wide_band(false)).detect_batch(&db, &ids).unwrap();
            let cand = saturated_model();
            let ref_cand =
                TasteEngine::new(Arc::clone(&cand), wide_band(false)).unwrap()
                    .detect_batch(&db, &ids).unwrap();

            // The candidate stays in canary for the whole run
            // (min_canary_tables is unreachable), so both versions serve.
            let rollout = rollout_cfg(f64::from(frac_tenths) / 10.0, 1_000_000);
            let cfg = TasteConfig { rollout, ..wide_band(false) };
            let eng = engine(cfg);
            let tables = run_with_offer(&eng, &db, &ids, k, cand);

            prop_assert_eq!(tables.len(), ids.len());
            for (i, tr) in tables.iter().enumerate() {
                prop_assert_eq!(tr.outcome.clone(), TableOutcome::Completed);
                let reference = match tr.model_version {
                    1 => &ref_inc.tables[i],
                    2 => &ref_cand.tables[i],
                    v => return Err(TestCaseError::fail(format!("unexpected version {v}"))),
                };
                prop_assert_eq!(&tr.admitted, &reference.admitted);
                prop_assert_eq!(tr.uncertain_columns, reference.uncertain_columns);
            }
            // Tables before the offer can only have seen the incumbent.
            for tr in &tables[..k] {
                prop_assert_eq!(tr.model_version, 1);
            }
            // With the full fraction, every post-offer table canaries.
            if frac_tenths == 10 {
                for tr in &tables[k..] {
                    prop_assert_eq!(tr.model_version, 2);
                }
            }
        }
    }
}
