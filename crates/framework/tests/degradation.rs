//! Deterministic graceful-degradation integration tests: a 100%-failure
//! window on one table's P2 content scans must not fail (or lose any
//! table from) the batch — the affected table falls back to its P1
//! metadata-only verdicts and the circuit breaker walks the full
//! closed → open → half-open → closed cycle.

use std::sync::Arc;
use std::time::Duration;
use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};
use taste_db::{Database, FaultProfile, LatencyProfile};
use taste_framework::retry::RetryConfig;
use taste_framework::stages::{infer_phase1, prep_phase1};
use taste_framework::{TasteConfig, TasteEngine};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

fn fixture_db(n_tables: usize) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", LatencyProfile::zero());
    let mut ids = Vec::new();
    for i in 0..n_tables {
        let tid = TableId(0);
        let ncols = 2 + i % 3;
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("city{j}"),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..15)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
            .collect();
        let t = Table {
            meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn model() -> Arc<Adtd> {
    Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9))
}

fn wide_band_cfg(retry: RetryConfig, pipelining: bool) -> TasteConfig {
    TasteConfig {
        pipelining,
        alpha: 0.0001,
        beta: 0.9999,
        retry,
        ..Default::default()
    }
}

fn fast_retry() -> RetryConfig {
    RetryConfig {
        max_attempts: 4,
        breaker_threshold: 4,
        breaker_cooldown: Duration::ZERO,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_micros(50),
        ..RetryConfig::default()
    }
}

#[test]
fn p2_total_failure_degrades_to_p1_and_cycles_the_breaker() {
    let (db, ids) = fixture_db(3);
    let target = ids[0];
    db.set_fault_profile(FaultProfile {
        seed: 7,
        scan_transient: 1.0,
        scan_target: Some(target),
        ..FaultProfile::none()
    });
    // breaker_threshold == max_attempts: exhausting the target's P2
    // retries trips the breaker exactly once, and the next table's first
    // operation is the half-open probe that closes it again.
    let cfg = wide_band_cfg(fast_retry(), false);
    let m = model();
    let report = TasteEngine::new(Arc::clone(&m), cfg).unwrap().detect_batch(&db, &ids).unwrap();

    // The batch completed with every table present, in order.
    assert_eq!(report.tables.len(), ids.len());
    for (tr, &tid) in report.tables.iter().zip(&ids) {
        assert_eq!(tr.table, tid);
    }

    // The target table is degraded, not failed: P2 fell back to P1.
    let degraded = &report.tables[0];
    assert!(degraded.resilience.degraded);
    assert!(!degraded.resilience.failed);
    assert!(!degraded.admitted.is_empty());
    // Wide band: every column was uncertain, so every column degraded.
    assert_eq!(degraded.uncertain_columns, degraded.admitted.len());
    assert_eq!(degraded.resilience.degraded_columns, degraded.admitted.len());
    // 1 clean P1 attempt + max_attempts failed P2 attempts.
    assert_eq!(degraded.resilience.attempts, 1 + 4);
    assert_eq!(degraded.resilience.retries, 3);
    assert!(degraded.resilience.backoff > Duration::ZERO);

    // Healthy tables ran clean.
    for tr in &report.tables[1..] {
        assert!(!tr.resilience.degraded && !tr.resilience.failed);
        assert_eq!(tr.resilience.retries, 0);
        assert_eq!(tr.resilience.degraded_columns, 0);
    }

    // Degraded verdicts are exactly the P1 metadata-only verdicts.
    db.set_fault_profile(FaultProfile::none());
    let conn = db.connect();
    let prep = prep_phase1(&conn, target, &cfg).unwrap();
    let p1 = infer_phase1(&m, &cfg, target, &prep, None, &mut taste_model::Inferencer::default());
    assert_eq!(degraded.admitted, p1.admitted);

    // Full breaker cycle, observed in order.
    assert_eq!(report.breaker_trips, 1);
    assert_eq!(
        report.breaker_transitions,
        vec!["closed->open", "open->half-open", "half-open->closed"]
    );

    // The intrusiveness ledger saw the injected failures...
    assert!(report.ledger.failed_queries >= 4);
    // ...and the healthy tables' scans still went through.
    assert!(report.ledger.columns_scanned > 0);

    // Report-level rollups agree with the per-table summaries.
    assert_eq!(report.degraded_tables(), 1);
    assert_eq!(report.degraded_columns(), degraded.admitted.len());
    assert!(report.total_backoff() >= degraded.resilience.backoff);
}

#[test]
fn pipelined_batch_survives_p2_total_failure() {
    let (db, ids) = fixture_db(5);
    let target = ids[2];
    db.set_fault_profile(FaultProfile {
        seed: 11,
        scan_transient: 1.0,
        scan_target: Some(target),
        ..FaultProfile::none()
    });
    // A huge threshold keeps the breaker out of the picture: this test is
    // about the pipelined scheduler not wedging or losing tables.
    let retry = RetryConfig { breaker_threshold: 1_000_000, ..fast_retry() };
    let cfg = wide_band_cfg(retry, true);
    let report = TasteEngine::new(model(), cfg).unwrap().detect_batch(&db, &ids).unwrap();
    assert_eq!(report.tables.len(), ids.len());
    for (tr, &tid) in report.tables.iter().zip(&ids) {
        assert_eq!(tr.table, tid);
    }
    assert_eq!(report.degraded_tables(), 1);
    assert!(report.tables[2].resilience.degraded);
    assert!(!report.tables[2].admitted.is_empty());
}

#[test]
fn degrade_disabled_fails_the_batch_instead() {
    let (db, ids) = fixture_db(2);
    db.set_fault_profile(FaultProfile {
        seed: 3,
        scan_transient: 1.0,
        scan_target: Some(ids[0]),
        ..FaultProfile::none()
    });
    let retry = RetryConfig { degrade: false, ..fast_retry() };
    let cfg = wide_band_cfg(retry, false);
    let err = TasteEngine::new(model(), cfg).unwrap().detect_batch(&db, &ids);
    assert!(err.is_err(), "strict mode must surface the exhausted fault");
    assert!(err.unwrap_err().is_retryable());
}

#[test]
fn clean_run_reports_zero_resilience_cost() {
    let (db, ids) = fixture_db(3);
    let cfg = wide_band_cfg(RetryConfig::default(), false);
    let report = TasteEngine::new(model(), cfg).unwrap().detect_batch(&db, &ids).unwrap();
    for tr in &report.tables {
        assert_eq!(tr.resilience.retries, 0);
        assert_eq!(tr.resilience.backoff, Duration::ZERO);
        assert!(!tr.resilience.degraded && !tr.resilience.failed);
    }
    assert_eq!(report.breaker_trips, 0);
    assert!(report.breaker_transitions.is_empty());
    assert_eq!(report.ledger.failed_queries, 0);
    assert_eq!(report.degraded_columns(), 0);
}

#[test]
fn transient_faults_below_budget_are_invisible_in_results() {
    // A mid-rate flaky profile: retries absorb every fault, so admitted
    // sets must equal the clean run's exactly (determinism + monotone
    // fault rolls make this reproducible).
    let (db, ids) = fixture_db(4);
    let m = model();
    let cfg = wide_band_cfg(
        RetryConfig {
            max_attempts: 10,
            breaker_threshold: 1_000_000,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            ..RetryConfig::default()
        },
        false,
    );
    let clean = TasteEngine::new(Arc::clone(&m), cfg).unwrap().detect_batch(&db, &ids).unwrap();
    db.set_fault_profile(FaultProfile::flaky(5, 0.3));
    let flaky = TasteEngine::new(Arc::clone(&m), cfg).unwrap().detect_batch(&db, &ids).unwrap();
    assert!(flaky.total_retries() > 0, "0.3 fault rate must cause retries");
    assert_eq!(flaky.degraded_columns(), 0, "10 attempts must outlast 0.3-rate faults");
    for (a, b) in clean.tables.iter().zip(&flaky.tables) {
        assert_eq!(a.admitted, b.admitted, "absorbed faults must not change verdicts");
    }
}
