//! Property tests for the fault-injection + retry stack: under *any*
//! seeded [`FaultProfile`], the pipelined engine must terminate, keep
//! stage ordering per table, and report every table exactly once — a
//! table either carries full verdicts or is explicitly marked
//! failed/degraded, never silently dropped.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};
use taste_db::{Database, FaultProfile, LatencyProfile};
use taste_framework::retry::RetryConfig;
use taste_framework::{TasteConfig, TasteEngine};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

fn fixture_db(n_tables: usize) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", LatencyProfile::zero());
    let mut ids = Vec::new();
    for i in 0..n_tables {
        let tid = TableId(0);
        let ncols = 2 + i % 3;
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("city{j}"),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..15)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
            .collect();
        let t = Table {
            meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn cfg() -> TasteConfig {
    TasteConfig {
        pipelining: true,
        pool_size: 2,
        alpha: 0.0001,
        beta: 0.9999,
        retry: RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            breaker_threshold: 10_000,
            degrade: true,
            ..RetryConfig::default()
        },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The load-bearing invariant of graceful degradation: no fault mix
    /// can wedge the scheduler, drop a table, or produce a half-filled
    /// verdict vector.
    #[test]
    fn any_fault_profile_terminates_with_every_table_reported(
        seed in any::<u64>(),
        scan_transient in 0.0f64..0.9,
        scan_drop in 0.0f64..0.5,
        connect_fail in 0.0f64..0.5,
        n_tables in 1usize..5,
    ) {
        let (db, ids) = fixture_db(n_tables);
        db.set_fault_profile(FaultProfile {
            seed,
            scan_transient,
            scan_drop,
            connect_fail,
            ..FaultProfile::none()
        });
        let cfg = cfg();
        let engine = TasteEngine::new(
            Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9)),
            cfg,
        ).unwrap();
        let report = engine.detect_batch(&db, &ids).unwrap();

        // Every table appears exactly once, in input order.
        prop_assert_eq!(report.tables.len(), ids.len());
        for (tr, &tid) in report.tables.iter().zip(&ids) {
            prop_assert_eq!(tr.table, tid);
        }

        // Stage ordering per table: verdicts are either complete (one
        // LabelSet per column — P1 then P2 or P1-only fallback) or the
        // table is explicitly failed with an empty verdict vector.
        for (i, tr) in report.tables.iter().enumerate() {
            let ncols = 2 + i % 3;
            if tr.resilience.failed {
                prop_assert!(tr.admitted.is_empty());
            } else {
                prop_assert_eq!(tr.admitted.len(), ncols);
                if tr.resilience.degraded {
                    prop_assert!(tr.resilience.degraded_columns > 0);
                    prop_assert!(tr.resilience.degraded_columns <= ncols);
                }
            }
            // Retries never exceed the configured budget per stage
            // (at most 2 retried stages: P1 prep + P2 prep).
            prop_assert!(tr.resilience.retries <= 2 * (4 - 1));
        }

        // The rollups are consistent with the per-table summaries.
        let degraded: usize = report.tables.iter()
            .map(|t| t.resilience.degraded_columns)
            .sum();
        prop_assert_eq!(report.degraded_columns(), degraded);
    }

    /// Determinism: the same profile on the same catalog yields the same
    /// report-level outcome, twice.
    #[test]
    fn same_profile_same_outcome(
        seed in any::<u64>(),
        scan_transient in 0.0f64..0.9,
    ) {
        let profile = |db: &Arc<Database>| db.set_fault_profile(FaultProfile {
            seed,
            scan_transient,
            ..FaultProfile::none()
        });
        let cfg = cfg();
        let run = || {
            let (db, ids) = fixture_db(3);
            profile(&db);
            let engine = TasteEngine::new(
                Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9)),
                cfg,
            ).unwrap();
            engine.detect_batch(&db, &ids).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.tables.len(), b.tables.len());
        for (x, y) in a.tables.iter().zip(&b.tables) {
            prop_assert_eq!(&x.admitted, &y.admitted);
            prop_assert_eq!(x.resilience.degraded, y.resilience.degraded);
            prop_assert_eq!(x.resilience.failed, y.resilience.failed);
        }
        prop_assert_eq!(a.degraded_columns(), b.degraded_columns());
    }
}
