//! Overload-control integration tests: offered load well beyond pool
//! capacity must keep the queue bounded, shed P2 work onto P1
//! metadata-only verdicts instead of stalling, account for every
//! submitted table exactly once, and deliver strictly better goodput
//! under a latency budget than the control-disabled engine.

use std::sync::Arc;
use std::time::Duration;
use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta, TableOutcome};
use taste_db::{Database, LatencyProfile};
use taste_framework::{OverloadConfig, OverloadSummary, TasteConfig, TasteEngine};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in ["users", "city", "num", "text", "demo", "alpha", "beta"] {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

fn fixture_db(n_tables: usize, latency: LatencyProfile) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", latency);
    let mut ids = Vec::new();
    for i in 0..n_tables {
        let tid = TableId(0);
        let ncols = 2 + i % 3;
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("city{j}"),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..15)
            .map(|r| (0..ncols).map(|c| Cell::Text(format!("alpha{}", r * c))).collect())
            .collect();
        let t = Table {
            meta: TableMeta { id: tid, name: format!("users_demo_{i}"), comment: None, row_count: 15 },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn engine(cfg: TasteConfig) -> TasteEngine {
    let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
    TasteEngine::new(model, cfg).unwrap()
}

/// Wide α/β band: every column is uncertain after P1, so every table
/// carries a full P2 content scan unless the controller sheds it.
fn wide_band(pipelining: bool) -> TasteConfig {
    TasteConfig { pipelining, alpha: 0.0001, beta: 0.9999, ..Default::default() }
}

#[test]
fn disabled_overload_control_is_inert() {
    let (db, ids) = fixture_db(6, LatencyProfile::zero());
    let cfg = wide_band(true);
    assert!(!cfg.overload.enabled, "overload control must default off");
    let report = engine(cfg).detect_batch(&db, &ids).unwrap();
    assert_eq!(report.overload, OverloadSummary::default());
    assert_eq!(report.shed_tables(), 0);
    assert_eq!(report.rejected_tables(), 0);
    assert_eq!(report.ledger.shed_stages, 0);
    for tr in &report.tables {
        assert_eq!(tr.outcome, TableOutcome::Completed);
        assert!(tr.latency > Duration::ZERO, "latency is stamped even without the controller");
    }
}

#[test]
fn admission_rejects_beyond_occupancy_and_accounts_every_table() {
    // 12 tables against an occupancy bound of 5: exactly 7 are turned
    // away at the gate, before any of them can queue without bound.
    let (db, ids) = fixture_db(12, LatencyProfile::zero());
    let overload = OverloadConfig {
        enabled: true,
        max_in_flight: 2,
        max_queued: 3,
        ..OverloadConfig::default()
    };
    let cfg = TasteConfig { overload, pool_size: 2, ..wide_band(true) };
    let report = engine(cfg).detect_batch(&db, &ids).unwrap();

    assert_eq!(report.tables.len(), 12, "every submitted table appears in the report");
    assert_eq!(report.rejected_tables(), 7);
    let s = &report.overload;
    assert!(s.enabled);
    assert_eq!(s.submitted, 12);
    assert_eq!(s.rejected, 7);
    assert_eq!(s.admitted, 5);
    // Stage-queue depth stays bounded by the in-flight budget: at most
    // `max_in_flight` tables × 4 stages are ever queued at once.
    assert!(
        s.queue_peak <= 4 * overload.max_in_flight as u64,
        "queue peak {} exceeds the admission bound",
        s.queue_peak
    );

    // Zero unaccounted tables: each is either rejected (non-final, to be
    // re-submitted) or reached a final outcome with verdicts.
    for (tr, &tid) in report.tables.iter().zip(&ids) {
        assert_eq!(tr.table, tid);
        if tr.outcome == TableOutcome::Rejected {
            assert!(tr.admitted.is_empty(), "rejected tables never ran");
            assert_eq!(tr.latency, Duration::ZERO);
            assert!(!tr.outcome.is_final(), "rejection is retryable, not final");
        } else {
            assert_eq!(tr.outcome, TableOutcome::Completed);
            assert!(!tr.admitted.is_empty());
        }
    }
    let finished = report.tables.iter().filter(|t| t.outcome.is_final()).count();
    assert_eq!(finished + report.rejected_tables(), 12);
}

#[test]
fn pressure_sheds_p2_to_p1_verdicts_and_beats_uncontrolled_goodput() {
    // Offered load ≥ 2× capacity: 32 P2-heavy tables against pool_size 2
    // with per-query latency, so the prep queue stands well above the
    // CoDel target. The controlled run must shed P2 work (keeping P1
    // verdicts), keep admitted tables inside their deadline at p99, and
    // finish strictly more tables within the latency budget than the
    // uncontrolled run.
    let latency = LatencyProfile {
        query_rtt: Duration::from_millis(6),
        connect: Duration::from_millis(1),
        ..LatencyProfile::zero()
    };
    // The per-table deadline is generous (slow CI machines must not trip
    // the watchdog spuriously); the goodput budget is tight enough that
    // the uncontrolled run's queueing delay clearly blows it.
    let deadline = Duration::from_millis(300);
    let budget = Duration::from_millis(150);
    let (db, ids) = fixture_db(32, latency);

    let off = engine(TasteConfig { pool_size: 2, ..wide_band(true) })
        .detect_batch(&db, &ids)
        .unwrap();
    let goodput_off = off.tables_within(budget);

    let overload = OverloadConfig {
        enabled: true,
        max_in_flight: 6,
        max_queued: 64,
        deadline: Some(deadline),
        queue_target: Duration::from_millis(1),
        queue_window: Duration::from_millis(4),
        ..OverloadConfig::default()
    };
    let cfg = TasteConfig { overload, pool_size: 2, ..wide_band(true) };
    let on = engine(cfg).detect_batch(&db, &ids).unwrap();

    // Every table is accounted for exactly once, none rejected (the
    // queue bound comfortably covers the batch).
    assert_eq!(on.tables.len(), 32);
    assert_eq!(on.rejected_tables(), 0);
    assert!(on.tables.iter().all(|t| t.outcome.is_final()));
    assert_eq!(on.overload.submitted, 32);
    assert_eq!(on.overload.admitted, 32);
    assert!(on.overload.queue_peak <= 4 * 6, "stage queue must stay bounded");
    assert!(on.overload.queue_wait_hist.is_some(), "dispatch waits feed the histogram");

    // The standing prep queue forces shedding; shed tables keep their
    // P1 metadata-only verdicts and are mirrored in the ledger.
    let shed = on.shed_tables();
    assert!(shed > 0, "≥2× capacity must shed some P2 work: {:?}", on.overload);
    assert_eq!(on.overload.shed_tables as usize, shed);
    assert_eq!(on.ledger.shed_stages as usize, shed);
    for tr in on.tables.iter().filter(|t| matches!(t.outcome, TableOutcome::Shed { .. })) {
        assert!(!tr.admitted.is_empty(), "shed tables keep P1 verdicts");
        assert_eq!(tr.uncertain_columns, tr.admitted.len(), "wide band: all columns uncertain");
    }

    // Admitted tables meet their deadline at p99 (≤1 of 32 may miss).
    assert!(
        on.tables_within(deadline) >= 31,
        "p99 of admitted tables must finish within {deadline:?}: {} did",
        on.tables_within(deadline)
    );

    // Goodput under the budget is strictly higher with control on.
    assert!(
        on.tables_within(budget) > goodput_off,
        "controlled goodput {} must beat uncontrolled {}",
        on.tables_within(budget),
        goodput_off
    );
}
