//! Property tests for the [`LoadController`]: under *any* interleaving
//! of offers, promotions, completions, queue-wait observations, and
//! stage outcomes, the controller must hold its three contracts —
//! bounded occupancy, clamped AIMD limits, and exact admission
//! accounting (`submitted == admitted + rejected + queued`).
//!
//! Time is synthetic: every operation executes at an explicit
//! `epoch + offset` instant, so a schedule's behavior is a pure function
//! of the generated op list and the tests are deterministic.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use taste_framework::{LoadController, OverloadConfig};

/// One operation against the controller, with any time advance encoded
/// by the op's position in the schedule.
#[derive(Debug, Clone)]
enum Op {
    Offer,
    Promote,
    /// Completes the oldest outstanding admission (no-op when none are
    /// in flight), reporting `ok` to the brownout probe machinery.
    Complete { ok: bool },
    ObserveWait { wait_ms: u16 },
    ObserveStage { service_ms: u16, failed: bool, is_p2: bool },
    NoteDepth { depth: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Offer),
        3 => Just(Op::Promote),
        2 => any::<bool>().prop_map(|ok| Op::Complete { ok }),
        2 => (0u16..40).prop_map(|wait_ms| Op::ObserveWait { wait_ms }),
        2 => (0u16..20, any::<bool>(), any::<bool>())
            .prop_map(|(service_ms, failed, is_p2)| Op::ObserveStage { service_ms, failed, is_p2 }),
        1 => (0u8..32).prop_map(|depth| Op::NoteDepth { depth }),
    ]
}

fn cfg_strategy() -> impl Strategy<Value = (OverloadConfig, usize)> {
    (1usize..6, 0usize..8, 1usize..4, 1u32..4, 1usize..6).prop_map(
        |(max_in_flight, max_queued, min_workers, increase_every, pool_size)| {
            let cfg = OverloadConfig {
                enabled: true,
                max_in_flight,
                max_queued,
                min_workers,
                increase_every,
                decrease_ratio: 0.5,
                deadline: Some(Duration::from_millis(100)),
                queue_target: Duration::from_millis(5),
                queue_window: Duration::from_millis(12),
                aimd_window: Duration::from_millis(6),
                brownout_after: Duration::from_millis(25),
                brownout_probe_every: 3,
                brownout_exit_probes: 2,
            };
            (cfg, pool_size)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-based check of every controller contract at every step:
    /// occupancy never exceeds `occupancy_bound`, in-flight never
    /// exceeds `max_in_flight`, the AIMD limits stay inside
    /// `[min(min_workers, pool_size), pool_size]`, the controller's
    /// occupancy counters track a reference model exactly, and in
    /// brownout `p2_allowed` is granted only to probes.
    #[test]
    fn contracts_hold_under_any_schedule(
        (cfg, pool_size) in cfg_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        prop_assert!(cfg.validate().is_ok());
        let c = LoadController::new(cfg, pool_size);
        let bound = cfg.occupancy_bound();
        let floor = cfg.min_workers.min(pool_size.max(1));
        let ceil = pool_size.max(1);
        let epoch = Instant::now();

        // Reference model: what the counters must read at every step.
        let mut queued = 0usize;
        let mut in_flight: Vec<taste_framework::Admission> = Vec::new();
        let mut submitted = 0u64;
        let mut admitted = 0u64;
        let mut rejected = 0u64;

        for (i, op) in ops.iter().enumerate() {
            // Ops are spaced 3ms apart so wait/stage schedules can cross
            // the CoDel window, the AIMD window, and brownout_after.
            let now = epoch + Duration::from_millis(3 * i as u64);
            match *op {
                Op::Offer => {
                    let accepted = c.offer();
                    submitted += 1;
                    let expect = queued + in_flight.len() < bound;
                    prop_assert_eq!(accepted, expect, "admission must be a pure occupancy check");
                    if accepted { queued += 1; } else { rejected += 1; }
                }
                Op::Promote => {
                    let adm = c.promote();
                    let expect = queued > 0 && in_flight.len() < cfg.max_in_flight;
                    prop_assert_eq!(adm.is_some(), expect, "promotion needs queue + free slot");
                    if let Some(a) = adm {
                        queued -= 1;
                        admitted += 1;
                        if c.is_brownout() {
                            prop_assert_eq!(a.p2_allowed, a.probe, "brownout grants P2 only to probes");
                        } else {
                            prop_assert!(a.p2_allowed && !a.probe);
                        }
                        in_flight.push(a);
                    }
                }
                Op::Complete { ok } => {
                    if !in_flight.is_empty() {
                        let a = in_flight.remove(0);
                        c.complete(a.probe, ok, now);
                    }
                }
                Op::ObserveWait { wait_ms } => {
                    c.observe_queue_wait(Duration::from_millis(wait_ms.into()), now);
                }
                Op::ObserveStage { service_ms, failed, is_p2 } => {
                    c.observe_stage(Duration::from_millis(service_ms.into()), failed, is_p2, now);
                }
                Op::NoteDepth { depth } => c.note_queue_depth(depth.into()),
            }

            // Invariants after *every* op, not just at the end.
            prop_assert_eq!(c.queued(), queued);
            prop_assert_eq!(c.in_flight(), in_flight.len());
            prop_assert!(c.in_flight() + c.queued() <= bound, "occupancy bound breached");
            prop_assert!(c.in_flight() <= cfg.max_in_flight);
            for limit in [c.tp1_limit(), c.tp2_limit(), c.conn_limit()] {
                prop_assert!(
                    (floor..=ceil).contains(&limit),
                    "AIMD limit {} escaped [{}, {}]", limit, floor, ceil
                );
            }
        }

        // Final accounting: every offer is admitted, rejected, or still
        // queued — nothing double-counted, nothing lost.
        let s = c.summary();
        prop_assert_eq!(s.submitted, submitted);
        prop_assert_eq!(s.admitted, admitted);
        prop_assert_eq!(s.rejected, rejected);
        prop_assert_eq!(s.submitted, s.admitted + s.rejected + c.queued() as u64);
        prop_assert_eq!(s.final_tp1_limit as usize, c.tp1_limit());
    }

    /// The brownout ledger is coherent on any wait schedule: transitions
    /// strictly alternate `normal->brownout` / `brownout->normal`,
    /// `brownout_entries` counts exactly the entries, and the current
    /// state matches the parity of the transition list.
    #[test]
    fn brownout_transitions_alternate_and_count(
        waits in prop::collection::vec((0u16..40, 1u16..8), 1..80),
        exits in prop::collection::vec(any::<bool>(), 0..12),
    ) {
        let cfg = OverloadConfig {
            enabled: true,
            queue_target: Duration::from_millis(5),
            queue_window: Duration::from_millis(10),
            brownout_after: Duration::from_millis(20),
            brownout_exit_probes: 1,
            ..OverloadConfig::default()
        };
        let c = LoadController::new(cfg, 2);
        let epoch = Instant::now();
        let mut t = Duration::ZERO;
        let mut exits = exits.into_iter();
        for &(wait_ms, step_ms) in &waits {
            t += Duration::from_millis(step_ms.into());
            c.observe_queue_wait(Duration::from_millis(wait_ms.into()), epoch + t);
            // Occasionally run a successful probe, which exits brownout
            // when active (exit_probes = 1).
            if c.is_brownout() && exits.next() == Some(true) {
                c.offer();
                // Promote until the probe admission appears, then
                // complete it successfully.
                while let Some(a) = c.promote() {
                    c.complete(a.probe, true, epoch + t);
                    if a.probe { break; }
                    c.offer();
                }
            }
        }
        let s = c.summary();
        let mut expect_entry = true;
        for tr in &s.transitions {
            if expect_entry {
                prop_assert!(tr.starts_with("normal->brownout"), "unexpected transition {tr}");
            } else {
                prop_assert!(tr.starts_with("brownout->normal"), "unexpected transition {tr}");
            }
            expect_entry = !expect_entry;
        }
        let entries = s.transitions.iter().filter(|t| t.starts_with("normal->brownout")).count();
        prop_assert_eq!(s.brownout_entries as usize, entries);
        // State parity: an odd number of transitions means we are still
        // in brownout; even means normal.
        prop_assert_eq!(c.is_brownout(), s.transitions.len() % 2 == 1);
    }

    /// The occupancy bound is tight, not just safe: a schedule of pure
    /// offers fills the queue to exactly the bound and rejects the rest,
    /// and draining via promote+complete readmits exactly as many.
    #[test]
    fn admission_bound_is_exact(
        max_in_flight in 1usize..5,
        max_queued in 0usize..6,
        extra in 0usize..10,
    ) {
        let cfg = OverloadConfig { enabled: true, max_in_flight, max_queued, ..OverloadConfig::default() };
        let c = LoadController::new(cfg, 2);
        let bound = cfg.occupancy_bound();
        let mut accepted = 0;
        for _ in 0..bound + extra {
            if c.offer() { accepted += 1; }
        }
        prop_assert_eq!(accepted, bound);
        prop_assert_eq!(c.summary().rejected as usize, extra);
        // Drain one table end-to-end: exactly one more offer fits.
        if let Some(a) = c.promote() {
            c.complete(a.probe, true, Instant::now());
            prop_assert!(c.offer());
            prop_assert!(!c.offer());
        }
    }
}
