//! Engine-level micro-batching parity: for random mixes of tables, the
//! batched pipelined engine must produce **bit-identical** verdicts to
//! the unbatched pipelined engine at every batch size × kernel thread
//! width, with identical latent-cache traffic. Batching is a throughput
//! knob, never a results knob.

use proptest::prelude::*;
use std::sync::Arc;
use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};
use taste_db::{Database, LatencyProfile};
use taste_framework::{BatchingConfig, ExecutionConfig, TasteConfig, TasteEngine};
use taste_model::{Adtd, ModelConfig};
use taste_tokenizer::{Tokenizer, VocabBuilder};

const WORDS: [&str; 7] = ["users", "city", "num", "text", "demo", "alpha", "beta"];

fn tokenizer() -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in WORDS {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(100, 1))
}

/// Builds a database from a generated mix: one entry per table holding
/// the column count and a per-table seed that varies names and content.
fn mix_db(mix: &[(usize, u8)]) -> (Arc<Database>, Vec<TableId>) {
    let db = Database::new("d", LatencyProfile::zero());
    let mut ids = Vec::new();
    for (i, &(ncols, seed)) in mix.iter().enumerate() {
        let tid = TableId(0);
        let columns: Vec<ColumnMeta> = (0..ncols)
            .map(|j| ColumnMeta {
                id: ColumnId::new(tid, j as u16),
                name: format!("{}{j}", WORDS[(seed as usize + j) % WORDS.len()]),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            })
            .collect();
        let rows = (0..10)
            .map(|r| {
                (0..ncols)
                    .map(|c| Cell::Text(format!("{}{}", WORDS[(r + c) % WORDS.len()], r + seed as usize)))
                    .collect()
            })
            .collect();
        let t = Table {
            meta: TableMeta {
                id: tid,
                name: format!("{}_{i}", WORDS[seed as usize % WORDS.len()]),
                comment: None,
                row_count: 10,
            },
            columns,
            rows,
            labels: vec![LabelSet::empty(); ncols],
        };
        ids.push(db.create_table(&t).unwrap());
    }
    (db, ids)
}

fn engine(cfg: TasteConfig) -> TasteEngine {
    let model = Arc::new(Adtd::new(ModelConfig::tiny(), tokenizer(), 4, 9));
    TasteEngine::new(model, cfg).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn random_table_mixes_are_batch_size_and_thread_invariant(
        mix in prop::collection::vec((1usize..=5, 0u8..64), 1..=5),
    ) {
        // Wide uncertainty band: every column takes the full P1 → P2
        // path, so both fused passes and the latent cache are exercised.
        let base = TasteConfig {
            pipelining: true,
            pool_size: 2,
            alpha: 0.0001,
            beta: 0.9999,
            ..Default::default()
        };
        let (db, ids) = mix_db(&mix);
        let reference = engine(base).detect_batch(&db, &ids).unwrap();

        for threads in [1usize, 4] {
            for max in [1usize, 3, 8] {
                let cfg = TasteConfig {
                    execution: ExecutionConfig { kernel_threads: threads, ..Default::default() },
                    batching: BatchingConfig {
                        enabled: true,
                        max_batch_columns: max,
                        ..Default::default()
                    },
                    ..base
                };
                let batched = engine(cfg).detect_batch(&db, &ids).unwrap();
                prop_assert_eq!(reference.tables.len(), batched.tables.len());
                for (a, b) in reference.tables.iter().zip(&batched.tables) {
                    prop_assert_eq!(a.table, b.table);
                    prop_assert_eq!(
                        &a.admitted, &b.admitted,
                        "verdicts diverged at max_batch_columns={} threads={}", max, threads
                    );
                    prop_assert_eq!(a.uncertain_columns, b.uncertain_columns);
                }
                // Identical latent traffic: the batched path populates and
                // hits the cache with exactly the per-table keys.
                prop_assert_eq!(reference.cache_hits, batched.cache_hits);
                prop_assert_eq!(reference.cache_misses, batched.cache_misses);
                prop_assert!(batched.batching.enabled);
                prop_assert_eq!(batched.batching.p1.batched_columns, batched.total_columns);
            }
        }
    }
}
