//! Vocabulary construction with special tokens and subword units.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// Reserved special token ids. The fixed block at the front of every
/// vocabulary; [`Vocab::special_len`] returns its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// Padding (unused by the per-sample pipeline, reserved for parity).
    Pad = 0,
    /// Unknown word.
    Unk = 1,
    /// Sequence-level classification marker.
    Cls = 2,
    /// Segment separator.
    Sep = 3,
    /// Masked-token marker for MLM pre-training.
    Mask = 4,
    /// Column-metadata marker; its latent feeds the metadata classifier.
    Col = 5,
    /// Column-content marker; its latent feeds the content classifier.
    Val = 6,
}

/// Number of digit-shape tokens `<d1> .. <dN>`; digit runs longer than
/// this are clamped to the last bucket.
pub const DIGIT_SHAPES: usize = 24;

/// A frozen vocabulary: special tokens, digit shapes, word pieces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vocab {
    tokens: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, u32>,
}

impl Vocab {
    fn specials() -> Vec<String> {
        let mut v: Vec<String> = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[COL]", "[VAL]"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for i in 1..=DIGIT_SHAPES {
            v.push(format!("<d{i}>"));
        }
        v
    }

    /// Number of reserved (special + digit shape) tokens.
    pub fn special_len() -> usize {
        7 + DIGIT_SHAPES
    }

    /// Id of a special token.
    pub fn special(&self, s: Special) -> u32 {
        s as u32
    }

    /// Id of the digit-shape token for a digit run of length `len >= 1`.
    pub fn digit_shape(&self, len: usize) -> u32 {
        let bucket = len.clamp(1, DIGIT_SHAPES);
        (7 + bucket - 1) as u32
    }

    /// Vocabulary size (model embedding rows).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// A vocabulary always holds the special block.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Id lookup for a surface token (word or `##piece`).
    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Surface form of an id.
    pub fn token(&self, id: u32) -> Option<&str> {
        self.tokens.get(id as usize).map(String::as_str)
    }

    /// Whether `id` is in the reserved special/digit-shape block. MLM
    /// pre-training never masks these.
    pub fn is_reserved(&self, id: u32) -> bool {
        (id as usize) < Vocab::special_len()
    }

    /// Rebuilds the token index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
    }
}

/// Streaming vocabulary builder: feed normalized words, then freeze.
///
/// The builder keeps the `max_words` most frequent whole words seen at
/// least `min_count` times, plus single-character pieces (`x` and `##x`)
/// for every ASCII alphanumeric character, so greedy WordPiece matching
/// always terminates with at worst a character decomposition.
#[derive(Debug, Default)]
pub struct VocabBuilder {
    counts: FxHashMap<String, u64>,
}

impl VocabBuilder {
    /// New empty builder.
    pub fn new() -> VocabBuilder {
        VocabBuilder::default()
    }

    /// Counts one normalized word occurrence.
    pub fn add_word(&mut self, word: &str) {
        if word.is_empty() {
            return;
        }
        *self.counts.entry(word.to_owned()).or_insert(0) += 1;
    }

    /// Counts every word of an already-normalized word iterator.
    pub fn add_words<'a>(&mut self, words: impl IntoIterator<Item = &'a str>) {
        for w in words {
            self.add_word(w);
        }
    }

    /// Number of distinct words observed so far.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Freezes into a [`Vocab`] with the top `max_words` words of
    /// frequency `>= min_count`, plus the character fallback pieces.
    pub fn build(self, max_words: usize, min_count: u64) -> Vocab {
        let mut tokens = Vocab::specials();
        // Character fallback: 'a'..'z', '0'..'9' as head and continuation.
        for c in ('a'..='z').chain('0'..='9') {
            tokens.push(c.to_string());
            tokens.push(format!("##{c}"));
        }
        let mut words: Vec<(String, u64)> = self
            .counts
            .into_iter()
            .filter(|(w, c)| *c >= min_count && w.len() > 1)
            .collect();
        // Sort by descending count, then lexicographic for determinism.
        words.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        words.truncate(max_words);
        let existing: std::collections::HashSet<&str> =
            tokens.iter().map(String::as_str).collect();
        let mut new_tokens: Vec<String> = Vec::with_capacity(words.len());
        for (w, _) in words {
            if !existing.contains(w.as_str()) {
                new_tokens.push(w);
            }
        }
        tokens.extend(new_tokens);
        let mut vocab = Vocab { tokens, index: FxHashMap::default() };
        vocab.rebuild_index();
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_occupy_fixed_front_block() {
        let v = VocabBuilder::new().build(10, 1);
        assert_eq!(v.special(Special::Pad), 0);
        assert_eq!(v.special(Special::Unk), 1);
        assert_eq!(v.special(Special::Cls), 2);
        assert_eq!(v.special(Special::Sep), 3);
        assert_eq!(v.special(Special::Mask), 4);
        assert_eq!(v.special(Special::Col), 5);
        assert_eq!(v.special(Special::Val), 6);
        assert_eq!(v.token(2), Some("[CLS]"));
        assert!(v.is_reserved(0));
        assert!(v.is_reserved((Vocab::special_len() - 1) as u32));
        assert!(!v.is_reserved(Vocab::special_len() as u32));
    }

    #[test]
    fn digit_shapes_bucket_and_clamp() {
        let v = VocabBuilder::new().build(10, 1);
        assert_eq!(v.token(v.digit_shape(1)), Some("<d1>"));
        assert_eq!(v.token(v.digit_shape(4)), Some("<d4>"));
        assert_eq!(v.digit_shape(100), v.digit_shape(DIGIT_SHAPES));
        assert_eq!(v.digit_shape(0), v.digit_shape(1));
    }

    #[test]
    fn frequent_words_enter_vocab_in_count_order() {
        let mut b = VocabBuilder::new();
        for _ in 0..5 {
            b.add_word("city");
        }
        for _ in 0..3 {
            b.add_word("name");
        }
        b.add_word("rare");
        let v = b.build(100, 2);
        let city = v.id("city").unwrap();
        let name = v.id("name").unwrap();
        assert!(city < name, "more frequent word gets smaller id");
        assert_eq!(v.id("rare"), None, "below min_count");
    }

    #[test]
    fn max_words_caps_vocabulary() {
        let mut b = VocabBuilder::new();
        for i in 0..100 {
            for _ in 0..(100 - i) {
                b.add_word(&format!("word{i:03}"));
            }
        }
        let v = b.build(10, 1);
        assert!(v.id("word000").is_some());
        assert!(v.id("word050").is_none());
    }

    #[test]
    fn char_fallback_always_present() {
        let v = VocabBuilder::new().build(0, 1);
        assert!(v.id("a").is_some());
        assert!(v.id("##z").is_some());
        assert!(v.id("7").is_some());
        assert!(v.id("##0").is_some());
    }

    #[test]
    fn single_char_words_do_not_duplicate_fallback() {
        let mut b = VocabBuilder::new();
        b.add_word("a");
        b.add_word("a");
        let v = b.build(10, 1);
        // 'a' exists exactly once.
        let count = (0..v.len() as u32).filter(|&i| v.token(i) == Some("a")).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn build_is_deterministic_under_tied_counts() {
        let mk = || {
            let mut b = VocabBuilder::new();
            b.add_words(["beta", "alpha", "gamma"]);
            b.build(10, 1)
        };
        let v1 = mk();
        let v2 = mk();
        assert_eq!(v1.id("alpha"), v2.id("alpha"));
        assert_eq!(v1.id("beta"), v2.id("beta"));
        // Ties resolve lexicographically.
        assert!(v1.id("alpha").unwrap() < v1.id("beta").unwrap());
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let mut b = VocabBuilder::new();
        b.add_words(["hello", "hello", "world", "world"]);
        let v = b.build(10, 1);
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocab = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.id("hello"), v.id("hello"));
        assert_eq!(back.len(), v.len());
    }
}
