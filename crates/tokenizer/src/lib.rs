//! # taste-tokenizer
//!
//! WordPiece-style subword tokenization and sequence packing for tabular
//! input, mirroring how the paper feeds the ADTD encoders:
//!
//! * [`vocab`] — vocabulary construction from a corpus with frequency
//!   cutoffs, special tokens, and a character-level fallback so every
//!   string tokenizes.
//! * [`tokenize`] — normalization (lowercasing, identifier splitting,
//!   digit-shape tokens) and greedy longest-match WordPiece encoding.
//! * [`packing`] — assembling the metadata-tower and content-tower input
//!   sequences with per-segment token budgets (the paper reserves 150
//!   tokens for table metadata, 10 per column's metadata, and 10 per cell)
//!   and recording the per-column marker positions whose latent vectors
//!   feed the classifier heads.

#![warn(missing_docs)]

pub mod packing;
pub mod tokenize;
pub mod vocab;

pub use packing::{ColumnContent, PackedContent, PackedMeta, Packer, PackingBudget};
pub use tokenize::{normalize, Tokenizer};
pub use vocab::{Vocab, VocabBuilder};
