//! Text normalization and greedy WordPiece encoding.

use crate::vocab::{Special, Vocab};

/// Splits raw text into normalized words:
///
/// * lowercases ASCII;
/// * splits on any non-alphanumeric character (so `ship_to-City` becomes
///   `ship`, `to`, `city`), which also breaks snake_case identifiers;
/// * splits camelCase boundaries (`shipToCity` → `ship`, `to`, `city`);
/// * keeps digit runs as separate words (encoded later as shape tokens).
pub fn normalize(text: &str) -> Vec<String> {
    let mut words = Vec::new();
    let mut current = String::new();
    let mut current_is_digit = false;
    let mut prev_lower = false;
    for ch in text.chars() {
        if ch.is_ascii_alphabetic() {
            let lower = ch.is_ascii_lowercase();
            if !current.is_empty() && (current_is_digit || (prev_lower && !lower)) {
                words.push(std::mem::take(&mut current));
            }
            current.push(ch.to_ascii_lowercase());
            current_is_digit = false;
            prev_lower = lower;
        } else if ch.is_ascii_digit() {
            if !current.is_empty() && !current_is_digit {
                words.push(std::mem::take(&mut current));
            }
            current.push(ch);
            current_is_digit = true;
            prev_lower = false;
        } else {
            if !current.is_empty() {
                words.push(std::mem::take(&mut current));
            }
            current_is_digit = false;
            prev_lower = false;
        }
    }
    if !current.is_empty() {
        words.push(current);
    }
    words
}

/// Greedy longest-match WordPiece tokenizer over a frozen [`Vocab`].
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vocab,
}

impl Tokenizer {
    /// Wraps a vocabulary.
    pub fn new(vocab: Vocab) -> Tokenizer {
        Tokenizer { vocab }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes raw text into token ids (no special markers added).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for word in normalize(text) {
            self.encode_word(&word, &mut out);
        }
        out
    }

    /// Encodes raw text into at most `budget` token ids, truncating the
    /// tail (the paper truncates inputs beyond segment budgets).
    pub fn encode_budgeted(&self, text: &str, budget: usize) -> Vec<u32> {
        let mut ids = self.encode(text);
        ids.truncate(budget);
        ids
    }

    fn encode_word(&self, word: &str, out: &mut Vec<u32>) {
        // Digit runs become shape tokens: "2024" -> <d4>.
        if word.bytes().all(|b| b.is_ascii_digit()) {
            out.push(self.vocab.digit_shape(word.len()));
            return;
        }
        // Whole-word hit.
        if let Some(id) = self.vocab.id(word) {
            out.push(id);
            return;
        }
        // Greedy longest-prefix WordPiece with ## continuations.
        let chars: Vec<char> = word.chars().collect();
        let mut start = 0usize;
        let mut pieces: Vec<u32> = Vec::new();
        while start < chars.len() {
            let mut matched = None;
            let mut end = chars.len();
            while end > start {
                let piece: String = chars[start..end].iter().collect();
                let key = if start == 0 { piece } else { format!("##{piece}") };
                if let Some(id) = self.vocab.id(&key) {
                    matched = Some((id, end));
                    break;
                }
                end -= 1;
            }
            match matched {
                Some((id, next)) => {
                    pieces.push(id);
                    start = next;
                }
                None => {
                    // Unmatchable character (non-ASCII): whole word -> UNK.
                    out.push(self.vocab.special(Special::Unk));
                    return;
                }
            }
        }
        out.extend(pieces);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabBuilder;

    fn tokenizer_with(words: &[&str]) -> Tokenizer {
        let mut b = VocabBuilder::new();
        for w in words {
            for _ in 0..2 {
                b.add_word(w);
            }
        }
        Tokenizer::new(b.build(1000, 1))
    }

    #[test]
    fn normalize_splits_snake_and_camel_case() {
        assert_eq!(normalize("ship_to_city"), vec!["ship", "to", "city"]);
        assert_eq!(normalize("shipToCity"), vec!["ship", "to", "city"]);
        assert_eq!(normalize("HTTPServer2"), vec!["httpserver", "2"]);
        assert_eq!(normalize("order-id"), vec!["order", "id"]);
    }

    #[test]
    fn normalize_separates_digit_runs() {
        assert_eq!(normalize("q3_2024"), vec!["q", "3", "2024"]);
        assert_eq!(normalize("abc123def"), vec!["abc", "123", "def"]);
        assert_eq!(normalize(""), Vec::<String>::new());
        assert_eq!(normalize("  ,,  "), Vec::<String>::new());
    }

    #[test]
    fn digit_runs_become_shape_tokens() {
        let t = tokenizer_with(&[]);
        let ids = t.encode("2024");
        assert_eq!(ids, vec![t.vocab().digit_shape(4)]);
        let ids = t.encode("4111111111111111"); // 16-digit card number
        assert_eq!(ids, vec![t.vocab().digit_shape(16)]);
    }

    #[test]
    fn known_words_hit_whole_word_entries() {
        let t = tokenizer_with(&["city", "name"]);
        let ids = t.encode("city name");
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0], t.vocab().id("city").unwrap());
        assert_eq!(ids[1], t.vocab().id("name").unwrap());
    }

    #[test]
    fn unknown_words_fall_back_to_characters() {
        let t = tokenizer_with(&[]);
        let ids = t.encode("cat");
        // 'c', '##a', '##t' via fallback pieces.
        assert_eq!(ids.len(), 3);
        assert_eq!(t.vocab().token(ids[0]), Some("c"));
        assert_eq!(t.vocab().token(ids[1]), Some("##a"));
        assert_eq!(t.vocab().token(ids[2]), Some("##t"));
    }

    #[test]
    fn non_ascii_words_become_unk() {
        let t = tokenizer_with(&[]);
        let ids = t.encode("héllo");
        // normalize keeps only ascii alpha: "h" "llo"; "llo" decomposes via
        // fallback, "h" hits fallback. Pure non-ascii word -> UNK.
        assert!(!ids.is_empty());
        let ids2 = t.encode("日本語");
        assert!(ids2.is_empty(), "non-ascii chars are separators: {ids2:?}");
    }

    #[test]
    fn budget_truncates_tail() {
        let t = tokenizer_with(&["alpha", "beta", "gamma"]);
        let full = t.encode("alpha beta gamma");
        assert_eq!(full.len(), 3);
        let cut = t.encode_budgeted("alpha beta gamma", 2);
        assert_eq!(cut, &full[..2]);
        assert!(t.encode_budgeted("alpha", 0).is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let t = tokenizer_with(&["customer", "id"]);
        assert_eq!(t.encode("customer_id"), t.encode("customer_id"));
    }

    #[test]
    fn greedy_prefers_longest_match() {
        // With both "data" and "database" known, "database" must match
        // whole rather than decomposing into "data" + pieces.
        let t = tokenizer_with(&["data", "database"]);
        let ids = t.encode("database");
        assert_eq!(ids, vec![t.vocab().id("database").unwrap()]);
    }
}
