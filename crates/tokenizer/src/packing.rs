//! Sequence assembly for the two ADTD towers.
//!
//! The metadata-tower input is one sequence per (split) table:
//!
//! ```text
//! [CLS] table-meta… [SEP] [COL] col0-meta… [SEP] [COL] col1-meta… [SEP] …
//! ```
//!
//! and the content-tower input packs, for every column whose content was
//! scanned:
//!
//! ```text
//! [VAL] cell… [SEP] cell… [SEP] …  [VAL] …
//! ```
//!
//! Each segment is budgeted in tokens (the paper uses 150 for table
//! metadata, 10 per column metadata, 10 per cell; the reproduction scales
//! these via [`PackingBudget`]). The positions of the `[COL]` / `[VAL]`
//! markers are recorded: the encoder latent at a marker position is the
//! column's representation fed to the classifier heads.

use crate::tokenize::Tokenizer;
use crate::vocab::Special;
use serde::{Deserialize, Serialize};

/// Per-segment token budgets.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PackingBudget {
    /// Max tokens for table-level metadata (paper: 150).
    pub table: usize,
    /// Max tokens per column's metadata (paper: 10).
    pub column: usize,
    /// Max tokens per cell value (paper: 10).
    pub cell: usize,
    /// Hard cap on the assembled sequence length (paper: `W_max = 512`).
    pub max_len: usize,
}

impl Default for PackingBudget {
    fn default() -> Self {
        // Reduced-scale defaults matching the default experiment config;
        // the paper-scale values (150/10/10/512) are constructible.
        PackingBudget { table: 24, column: 8, cell: 6, max_len: 256 }
    }
}

impl PackingBudget {
    /// The paper's production budgets.
    pub fn paper() -> PackingBudget {
        PackingBudget { table: 150, column: 10, cell: 10, max_len: 512 }
    }
}

/// Packed metadata-tower input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedMeta {
    /// Token ids.
    pub tokens: Vec<u32>,
    /// Position of each column's `[COL]` marker; `col_marker_pos[j]` is
    /// the sequence index whose latent represents column `j`.
    pub col_marker_pos: Vec<usize>,
}

/// Content of one scanned column: the first `n` non-empty cell renderings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnContent {
    /// Rendered cell values in scan order.
    pub cells: Vec<String>,
}

/// Packed content-tower input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedContent {
    /// Token ids (empty when no column had content).
    pub tokens: Vec<u32>,
    /// Per input column: position of its `[VAL]` marker, or `None` for
    /// columns whose content was not scanned.
    pub val_marker_pos: Vec<Option<usize>>,
}

/// Assembles tower inputs under a [`PackingBudget`].
#[derive(Debug, Clone, Copy)]
pub struct Packer {
    /// Budgets in effect.
    pub budget: PackingBudget,
}

impl Packer {
    /// Creates a packer.
    pub fn new(budget: PackingBudget) -> Packer {
        Packer { budget }
    }

    /// Packs the metadata sequence for one table. `col_texts[j]` is the
    /// concatenated textual metadata of column `j` (name, comment, raw
    /// type token). Columns beyond the `max_len` cap are still given a
    /// marker (pointing at the last in-cap `[COL]`) so downstream shapes
    /// stay aligned; in practice the column-split threshold `l` keeps
    /// sequences within the cap.
    pub fn pack_meta(&self, tok: &Tokenizer, table_text: &str, col_texts: &[String]) -> PackedMeta {
        let v = tok.vocab();
        let cls = v.special(Special::Cls);
        let sep = v.special(Special::Sep);
        let col = v.special(Special::Col);
        let mut tokens = Vec::with_capacity(self.budget.max_len.min(128));
        tokens.push(cls);
        tokens.extend(tok.encode_budgeted(table_text, self.budget.table));
        tokens.push(sep);
        let mut col_marker_pos = Vec::with_capacity(col_texts.len());
        for text in col_texts {
            let body = tok.encode_budgeted(text, self.budget.column);
            // +2 for the [COL] and [SEP] markers.
            if tokens.len() + body.len() + 2 > self.budget.max_len {
                let fallback = col_marker_pos.last().copied().unwrap_or(0);
                col_marker_pos.push(fallback);
                continue;
            }
            col_marker_pos.push(tokens.len());
            tokens.push(col);
            tokens.extend(body);
            tokens.push(sep);
        }
        PackedMeta { tokens, col_marker_pos }
    }

    /// Packs the content sequence. `contents[j]` is `Some` exactly for the
    /// columns whose content was scanned (the uncertain columns in P2).
    pub fn pack_content(&self, tok: &Tokenizer, contents: &[Option<ColumnContent>]) -> PackedContent {
        let v = tok.vocab();
        let sep = v.special(Special::Sep);
        let val = v.special(Special::Val);
        let mut tokens = Vec::new();
        let mut val_marker_pos = Vec::with_capacity(contents.len());
        for content in contents {
            let Some(content) = content else {
                val_marker_pos.push(None);
                continue;
            };
            if tokens.len() + 2 > self.budget.max_len {
                val_marker_pos.push(None);
                continue;
            }
            val_marker_pos.push(Some(tokens.len()));
            tokens.push(val);
            for cell in &content.cells {
                let body = tok.encode_budgeted(cell, self.budget.cell);
                if tokens.len() + body.len() + 1 > self.budget.max_len {
                    break;
                }
                tokens.extend(body);
                tokens.push(sep);
            }
        }
        PackedContent { tokens, val_marker_pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabBuilder;

    fn tok() -> Tokenizer {
        let mut b = VocabBuilder::new();
        b.add_words(["orders", "sales", "city", "name", "amount", "shenzhen", "beijing", "int", "text"]);
        b.add_words(["orders", "sales", "city", "name", "amount", "shenzhen", "beijing", "int", "text"]);
        Tokenizer::new(b.build(1000, 1))
    }

    #[test]
    fn meta_packing_layout_and_markers() {
        let t = tok();
        let p = Packer::new(PackingBudget::default());
        let packed = p.pack_meta(&t, "orders sales", &["city text".into(), "amount int".into()]);
        let v = t.vocab();
        assert_eq!(packed.tokens[0], v.special(Special::Cls));
        assert_eq!(packed.col_marker_pos.len(), 2);
        for &pos in &packed.col_marker_pos {
            assert_eq!(packed.tokens[pos], v.special(Special::Col));
        }
        // Markers are strictly increasing in the normal (uncapped) case.
        assert!(packed.col_marker_pos[0] < packed.col_marker_pos[1]);
    }

    #[test]
    fn meta_packing_respects_table_budget() {
        let t = tok();
        let budget = PackingBudget { table: 1, column: 8, cell: 4, max_len: 64 };
        let p = Packer::new(budget);
        let packed = p.pack_meta(&t, "orders sales city name amount", &[]);
        // [CLS] + 1 table token + [SEP].
        assert_eq!(packed.tokens.len(), 3);
    }

    #[test]
    fn meta_packing_caps_total_length() {
        let t = tok();
        let budget = PackingBudget { table: 2, column: 4, cell: 4, max_len: 12 };
        let p = Packer::new(budget);
        let cols: Vec<String> = (0..10).map(|_| "city name".to_string()).collect();
        let packed = p.pack_meta(&t, "orders", &cols);
        assert!(packed.tokens.len() <= 12);
        assert_eq!(packed.col_marker_pos.len(), 10, "every column keeps a marker");
        for &pos in &packed.col_marker_pos {
            assert!(pos < packed.tokens.len());
        }
    }

    #[test]
    fn content_packing_skips_unscanned_columns() {
        let t = tok();
        let p = Packer::new(PackingBudget::default());
        let contents = vec![
            None,
            Some(ColumnContent { cells: vec!["shenzhen".into(), "beijing".into()] }),
            None,
        ];
        let packed = p.pack_content(&t, &contents);
        assert_eq!(packed.val_marker_pos.len(), 3);
        assert!(packed.val_marker_pos[0].is_none());
        assert!(packed.val_marker_pos[2].is_none());
        let pos = packed.val_marker_pos[1].unwrap();
        assert_eq!(packed.tokens[pos], t.vocab().special(Special::Val));
        // Two cells and two separators follow the marker.
        assert!(packed.tokens.len() >= 5);
    }

    #[test]
    fn content_packing_empty_input_is_empty() {
        let t = tok();
        let p = Packer::new(PackingBudget::default());
        let packed = p.pack_content(&t, &[None, None]);
        assert!(packed.tokens.is_empty());
        assert_eq!(packed.val_marker_pos, vec![None, None]);
    }

    #[test]
    fn content_cell_budget_truncates_long_cells() {
        let t = tok();
        let budget = PackingBudget { table: 8, column: 8, cell: 2, max_len: 64 };
        let p = Packer::new(budget);
        let contents = vec![Some(ColumnContent {
            cells: vec!["city name amount orders sales".into()],
        })];
        let packed = p.pack_content(&t, &contents);
        // [VAL] + 2 budgeted tokens + [SEP].
        assert_eq!(packed.tokens.len(), 4);
    }

    #[test]
    fn content_max_len_stops_new_columns() {
        let t = tok();
        let budget = PackingBudget { table: 8, column: 8, cell: 4, max_len: 8 };
        let p = Packer::new(budget);
        let many: Vec<Option<ColumnContent>> = (0..5)
            .map(|_| Some(ColumnContent { cells: vec!["shenzhen".into()] }))
            .collect();
        let packed = p.pack_content(&t, &many);
        assert!(packed.tokens.len() <= 8);
        let with_marker = packed.val_marker_pos.iter().filter(|p| p.is_some()).count();
        assert!(with_marker < 5, "later columns must be dropped");
    }

    #[test]
    fn paper_budget_values() {
        let b = PackingBudget::paper();
        assert_eq!((b.table, b.column, b.cell, b.max_len), (150, 10, 10, 512));
    }
}
