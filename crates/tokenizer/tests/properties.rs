//! Property-based tests for normalization, encoding, and packing.

use proptest::prelude::*;
use taste_tokenizer::packing::{ColumnContent, Packer, PackingBudget};
use taste_tokenizer::{normalize, Tokenizer, VocabBuilder};

fn tokenizer_from(words: &[String]) -> Tokenizer {
    let mut b = VocabBuilder::new();
    for w in words {
        b.add_word(w);
        b.add_word(w);
    }
    Tokenizer::new(b.build(500, 1))
}

proptest! {
    #[test]
    fn normalize_output_is_lowercase_alnum(text in ".{0,60}") {
        for word in normalize(&text) {
            prop_assert!(!word.is_empty());
            prop_assert!(
                word.chars().all(|c| c.is_ascii_lowercase()) || word.chars().all(|c| c.is_ascii_digit()),
                "mixed word {word:?}"
            );
        }
    }

    #[test]
    fn normalize_is_idempotent_on_its_output(text in "[a-zA-Z0-9_ -]{0,50}") {
        let once = normalize(&text);
        let joined = once.join(" ");
        let twice = normalize(&joined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn encode_is_deterministic_and_in_vocab(text in "[a-zA-Z0-9_ .@-]{0,50}") {
        let tok = tokenizer_from(&["city".into(), "name".into()]);
        let a = tok.encode(&text);
        let b = tok.encode(&text);
        prop_assert_eq!(&a, &b);
        for id in a {
            prop_assert!(tok.vocab().token(id).is_some(), "unknown id {id}");
        }
    }

    #[test]
    fn budget_is_a_prefix(text in "[a-z ]{0,60}", budget in 0usize..20) {
        let tok = tokenizer_from(&[]);
        let full = tok.encode(&text);
        let cut = tok.encode_budgeted(&text, budget);
        prop_assert!(cut.len() <= budget);
        prop_assert_eq!(&cut[..], &full[..cut.len()]);
    }

    #[test]
    fn digit_runs_become_single_shape_tokens(digits in "[1-9][0-9]{0,18}") {
        let tok = tokenizer_from(&[]);
        let ids = tok.encode(&digits);
        prop_assert_eq!(ids.len(), 1);
        prop_assert_eq!(ids[0], tok.vocab().digit_shape(digits.len()));
    }

    #[test]
    fn meta_packing_never_exceeds_cap_and_markers_valid(
        ncols in 0usize..12,
        table_words in 0usize..10,
        max_len in 8usize..64,
    ) {
        let tok = tokenizer_from(&["city".into(), "orders".into()]);
        let budget = PackingBudget { table: 6, column: 4, cell: 3, max_len };
        let packer = Packer::new(budget);
        let table_text = vec!["orders"; table_words].join(" ");
        let cols: Vec<String> = (0..ncols).map(|i| format!("city{i}")).collect();
        let packed = packer.pack_meta(&tok, &table_text, &cols);
        prop_assert!(packed.tokens.len() <= max_len.max(2 + budget.table));
        prop_assert_eq!(packed.col_marker_pos.len(), ncols);
        for &pos in &packed.col_marker_pos {
            prop_assert!(pos < packed.tokens.len().max(1));
        }
    }

    #[test]
    fn content_packing_marker_parity(present in prop::collection::vec(any::<bool>(), 0..10)) {
        let tok = tokenizer_from(&["alpha".into()]);
        let packer = Packer::new(PackingBudget::default());
        let contents: Vec<Option<ColumnContent>> = present
            .iter()
            .map(|&p| p.then(|| ColumnContent { cells: vec!["alpha".into()] }))
            .collect();
        let packed = packer.pack_content(&tok, &contents);
        prop_assert_eq!(packed.val_marker_pos.len(), present.len());
        for (marker, &p) in packed.val_marker_pos.iter().zip(&present) {
            // Absent content never gets a marker; present content gets
            // one unless the cap dropped it (cap is large here).
            if !p {
                prop_assert!(marker.is_none());
            } else {
                prop_assert!(marker.is_some());
            }
        }
    }
}
