//! # taste-db
//!
//! A simulated cloud relational database, standing in for the paper's
//! "RDS for MySQL in a VPC" testbed (§6.1.3). It provides everything the
//! end-to-end detection pipeline touches on a real user database:
//!
//! * [`engine`] — an in-memory storage engine with byte-encoded rows,
//!   table creation, `ANALYZE` (statistics + histograms), and scans
//!   (first-`m` rows or seeded random sampling, per selected columns).
//! * [`catalog`] — the `information_schema`-style metadata views Phase 1
//!   reads instead of scanning content.
//! * [`connection`] — connection objects with open/close costs, through
//!   which every operation flows (connection reuse across the tables of a
//!   batch is part of the paper's implementation guidance).
//! * [`latency`] — a configurable latency model realized as *real* sleeps
//!   (connect cost, per-query RTT, per-row and per-byte scan costs), so
//!   the pipelined scheduler's I/O-compute overlap shows up in measured
//!   wall time exactly as it does in the paper's evaluation.
//! * [`ledger`] — the intrusiveness ledger: columns scanned, rows read,
//!   bytes moved, metadata queries, connections opened. The "ratio of
//!   scanned columns" metric (Fig. 5) is computed from it.
//! * [`rowcodec`] — the compact cell/row byte encoding used by the engine.
//! * [`faults`] — deterministic, seeded fault injection (transient errors,
//!   connection drops, query timeouts, throttling windows), so the
//!   framework's retry/degradation machinery can be exercised and measured
//!   reproducibly.

#![warn(missing_docs)]

pub mod catalog;
pub mod connection;
pub mod engine;
pub mod faults;
pub mod latency;
pub mod ledger;
pub mod pool;
pub mod rowcodec;
pub mod sql;

pub use connection::Connection;
pub use engine::{Database, ScanMethod};
pub use faults::{FaultDecision, FaultInjector, FaultProfile, Throttle};
pub use latency::LatencyProfile;
pub use ledger::{Ledger, LedgerSnapshot};
pub use pool::{ConnectionPool, PooledConnection};
