//! A bounded connection pool.
//!
//! Real user databases cap concurrent connections, and the paper counts
//! "increased I/O and connections on user data sources" among the
//! intrusions a detection service must limit (§1). The pool enforces a
//! hard ceiling: connections are created lazily up to `max_connections`,
//! reused after checkin (connection establishment is the most expensive
//! database operation in the latency model), and further checkouts block
//! until one is returned or the acquire timeout expires.

use crate::connection::Connection;
use crate::engine::Database;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{Result, TasteError};

struct PoolState {
    idle: Vec<Connection>,
    created: usize,
    in_use: usize,
    discarded: usize,
}

struct PoolInner {
    db: Arc<Database>,
    max_connections: usize,
    acquire_timeout: Duration,
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A bounded, blocking pool of database connections.
#[derive(Clone)]
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
}

/// RAII guard over a pooled connection; returns it to the pool on drop.
pub struct PooledConnection {
    conn: Option<Connection>,
    pool: Arc<PoolInner>,
}

impl ConnectionPool {
    /// Creates a pool over `db` with at most `max_connections` live
    /// connections and the given acquire timeout.
    ///
    /// # Panics
    /// Panics when `max_connections == 0`.
    pub fn new(db: Arc<Database>, max_connections: usize, acquire_timeout: Duration) -> ConnectionPool {
        assert!(max_connections > 0, "pool must allow at least one connection");
        ConnectionPool {
            inner: Arc::new(PoolInner {
                db,
                max_connections,
                acquire_timeout,
                state: Mutex::new(PoolState { idle: Vec::new(), created: 0, in_use: 0, discarded: 0 }),
                available: Condvar::new(),
            }),
        }
    }

    /// Checks a connection out, creating one lazily if under the cap,
    /// otherwise blocking until a checkin or the acquire timeout.
    ///
    /// # Errors
    /// Returns the retryable [`TasteError::Timeout`] on acquire timeout
    /// (the user database's connection limit is saturated — a later
    /// attempt may find a freed slot). An injected connect fault while
    /// creating a fresh connection surfaces as [`TasteError::Transient`].
    pub fn get(&self) -> Result<PooledConnection> {
        let deadline = Instant::now() + self.inner.acquire_timeout;
        let mut state = self.inner.state.lock();
        loop {
            if let Some(conn) = state.idle.pop() {
                state.in_use += 1;
                return Ok(PooledConnection { conn: Some(conn), pool: Arc::clone(&self.inner) });
            }
            if state.created < self.inner.max_connections {
                state.created += 1;
                state.in_use += 1;
                // Pay the connect cost outside the lock.
                drop(state);
                match self.inner.db.try_connect() {
                    Ok(conn) => {
                        return Ok(PooledConnection { conn: Some(conn), pool: Arc::clone(&self.inner) })
                    }
                    Err(e) => {
                        // Roll back the reservation so the slot stays usable.
                        let mut state = self.inner.state.lock();
                        state.created -= 1;
                        state.in_use -= 1;
                        drop(state);
                        self.inner.available.notify_one();
                        return Err(e);
                    }
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(TasteError::timeout(format!(
                    "connection pool exhausted ({} in use) after {:?}",
                    state.in_use, self.inner.acquire_timeout
                )));
            }
            if self.inner.available.wait_until(&mut state, deadline).timed_out() && state.idle.is_empty() {
                return Err(TasteError::timeout(format!(
                    "connection pool exhausted ({} in use) after {:?}",
                    state.in_use, self.inner.acquire_timeout
                )));
            }
        }
    }

    /// Connections currently checked out.
    pub fn in_use(&self) -> usize {
        self.inner.state.lock().in_use
    }

    /// Connections ever created (≤ `max_connections`).
    pub fn created(&self) -> usize {
        self.inner.state.lock().created
    }

    /// The configured ceiling.
    pub fn max_connections(&self) -> usize {
        self.inner.max_connections
    }

    /// Fault-poisoned connections discarded at checkin instead of reused.
    pub fn discarded(&self) -> usize {
        self.inner.state.lock().discarded
    }
}

impl PooledConnection {
    /// The underlying connection.
    pub fn conn(&self) -> &Connection {
        self.conn.as_ref().expect("present until drop")
    }
}

impl std::ops::Deref for PooledConnection {
    type Target = Connection;

    fn deref(&self) -> &Connection {
        self.conn()
    }
}

impl Drop for PooledConnection {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            let mut state = self.pool.state.lock();
            if conn.is_poisoned() {
                // A fault dropped this connection mid-query: discard it so
                // the next checkout opens a fresh one instead of handing a
                // broken connection to another worker.
                state.created -= 1;
                state.discarded += 1;
            } else {
                state.idle.push(conn);
            }
            state.in_use -= 1;
            drop(state);
            self.pool.available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;
    use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};

    fn db(latency: LatencyProfile) -> Arc<Database> {
        let db = Database::new("pooled", latency);
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "t".into(), comment: None, row_count: 3 },
            columns: vec![ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "x".into(),
                comment: None,
                raw_type: RawType::Integer,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            }],
            rows: (0..3).map(|i| vec![Cell::Int(i)]).collect(),
            labels: vec![LabelSet::empty()],
        };
        db.create_table(&table).unwrap();
        db
    }

    #[test]
    fn connections_are_reused_not_recreated() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(Arc::clone(&db), 2, Duration::from_millis(100));
        for _ in 0..10 {
            let c = pool.get().unwrap();
            let _ = c.fetch_tables();
        }
        // Serial checkouts reuse one connection; the database saw a
        // single handshake.
        assert_eq!(pool.created(), 1);
        assert_eq!(db.ledger().snapshot().connections_opened, 1);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn cap_is_enforced_with_timeout() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 2, Duration::from_millis(50));
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        assert_eq!(pool.in_use(), 2);
        let t0 = Instant::now();
        let err = pool.get();
        assert!(err.is_err(), "third checkout must time out");
        assert!(t0.elapsed() >= Duration::from_millis(45));
        drop(a);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert!(pool.get().is_ok());
    }

    #[test]
    fn blocked_checkout_wakes_on_checkin() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_secs(5));
        let held = pool.get().unwrap();
        let pool2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            let t0 = Instant::now();
            let c = pool2.get().unwrap();
            let _ = c.fetch_tables();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(60));
        drop(held);
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(50), "waiter released too early: {waited:?}");
        assert!(waited < Duration::from_secs(5), "waiter should not have timed out");
    }

    #[test]
    fn concurrent_users_never_exceed_cap() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(Arc::clone(&db), 3, Duration::from_secs(5));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let c = pool.get().unwrap();
                    let _ = c.fetch_tables();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.created() <= 3, "created {}", pool.created());
        assert!(db.ledger().snapshot().connections_opened <= 3);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_cap_rejected() {
        let db = db(LatencyProfile::zero());
        let _ = ConnectionPool::new(db, 0, Duration::from_millis(1));
    }

    #[test]
    fn deref_gives_direct_connection_access() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_millis(50));
        let c = pool.get().unwrap();
        // Deref: call Connection methods directly on the guard.
        assert_eq!(c.fetch_tables().unwrap().len(), 1);
    }

    #[test]
    fn acquire_timeout_is_retryable_timeout() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_millis(20));
        let _held = pool.get().unwrap();
        let err = pool.get().unwrap_err();
        assert!(matches!(err, TasteError::Timeout(_)), "got {err:?}");
        assert!(err.is_retryable());
    }

    #[test]
    fn poisoned_connections_are_discarded_not_reused() {
        use crate::engine::ScanMethod;
        use crate::faults::FaultProfile;
        let db = db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile { scan_drop: 1.0, ..FaultProfile::none() });
        let pool = ConnectionPool::new(Arc::clone(&db), 2, Duration::from_millis(100));
        {
            let c = pool.get().unwrap();
            assert!(c.scan_columns(TableId(0), &[0], ScanMethod::FirstM { m: 1 }).is_err());
            assert!(c.is_poisoned());
        }
        assert_eq!(pool.discarded(), 1);
        assert_eq!(pool.created(), 0, "poisoned connection must free its slot");
        // Disable faults: the next checkout opens a fresh, healthy connection.
        db.set_fault_profile(FaultProfile::none());
        let c = pool.get().unwrap();
        assert!(!c.is_poisoned());
        assert!(c.fetch_tables().is_ok());
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn failed_create_rolls_back_reservation() {
        use crate::faults::FaultProfile;
        let db = db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile { connect_fail: 1.0, ..FaultProfile::none() });
        let pool = ConnectionPool::new(Arc::clone(&db), 1, Duration::from_millis(20));
        let err = pool.get().unwrap_err();
        assert!(matches!(err, TasteError::Transient(_)), "got {err:?}");
        assert_eq!(pool.created(), 0);
        assert_eq!(pool.in_use(), 0);
        // Slot is free again once faults clear.
        db.set_fault_profile(FaultProfile::none());
        assert!(pool.get().is_ok());
    }
}
