//! A bounded connection pool with FIFO-fair acquisition.
//!
//! Real user databases cap concurrent connections, and the paper counts
//! "increased I/O and connections on user data sources" among the
//! intrusions a detection service must limit (§1). The pool enforces a
//! hard ceiling: connections are created lazily up to `max_connections`,
//! reused after checkin (connection establishment is the most expensive
//! database operation in the latency model), and further checkouts block
//! until one is returned or the acquire timeout expires.
//!
//! ## Fairness
//!
//! Waiters acquire in strict FIFO order via a ticket queue. A bare
//! condvar wakes an *arbitrary* waiter, so under contention a hot batch
//! hammering [`ConnectionPool::get`] could starve another tenant's
//! tables indefinitely; with tickets, a checkin always serves the
//! longest-waiting caller first and starvation is impossible while
//! checkins keep happening.
//!
//! ## Dynamic limit
//!
//! [`ConnectionPool::set_limit`] lowers (or restores) the *effective*
//! ceiling at runtime without rebuilding the pool, clamped to
//! `[1, max_connections]`. The overload controller uses this to narrow
//! the per-database connection budget when the breaker or latency
//! telemetry says the database is struggling. Shrinking never revokes a
//! checked-out connection: excess connections are retired at checkin.

use crate::connection::Connection;
use crate::engine::Database;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};
use taste_core::{Result, TasteError};

struct PoolState {
    idle: Vec<Connection>,
    created: usize,
    in_use: usize,
    discarded: usize,
    /// Effective ceiling, `1 ..= max_connections`; adjustable at runtime.
    limit: usize,
    /// FIFO ticket queue: front is the next waiter allowed to acquire.
    waiters: VecDeque<u64>,
    next_ticket: u64,
}

struct PoolInner {
    db: Arc<Database>,
    max_connections: usize,
    acquire_timeout: Duration,
    state: Mutex<PoolState>,
    available: Condvar,
}

/// A bounded, blocking, FIFO-fair pool of database connections.
#[derive(Clone)]
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
}

/// RAII guard over a pooled connection; returns it to the pool on drop.
pub struct PooledConnection {
    conn: Option<Connection>,
    pool: Arc<PoolInner>,
}

impl std::fmt::Debug for PooledConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConnection").field("conn", &self.conn).finish_non_exhaustive()
    }
}

impl ConnectionPool {
    /// Creates a pool over `db` with at most `max_connections` live
    /// connections and the given acquire timeout.
    ///
    /// # Panics
    /// Panics when `max_connections == 0`.
    pub fn new(db: Arc<Database>, max_connections: usize, acquire_timeout: Duration) -> ConnectionPool {
        assert!(max_connections > 0, "pool must allow at least one connection");
        ConnectionPool {
            inner: Arc::new(PoolInner {
                db,
                max_connections,
                acquire_timeout,
                state: Mutex::new(PoolState {
                    idle: Vec::new(),
                    created: 0,
                    in_use: 0,
                    discarded: 0,
                    limit: max_connections,
                    waiters: VecDeque::new(),
                    next_ticket: 0,
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Checks a connection out, creating one lazily if under the
    /// effective limit, otherwise blocking (FIFO behind earlier waiters)
    /// until a checkin or the acquire timeout.
    ///
    /// # Errors
    /// Returns the retryable [`TasteError::Timeout`] on acquire timeout
    /// (the user database's connection limit is saturated — a later
    /// attempt may find a freed slot). An injected connect fault while
    /// creating a fresh connection surfaces as [`TasteError::Transient`].
    pub fn get(&self) -> Result<PooledConnection> {
        let deadline = Instant::now() + self.inner.acquire_timeout;
        let mut state = self.inner.state.lock();
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiters.push_back(ticket);
        loop {
            // Only the head-of-line ticket may acquire: a woken waiter
            // that is not at the front goes back to sleep, so checkins
            // always serve the longest-waiting caller first.
            if state.waiters.front() == Some(&ticket) {
                if let Some(conn) = state.idle.pop() {
                    state.waiters.pop_front();
                    state.in_use += 1;
                    drop(state);
                    // More idle connections (or creatable slots) may
                    // remain for the next head-of-line waiter.
                    self.inner.available.notify_all();
                    return Ok(PooledConnection { conn: Some(conn), pool: Arc::clone(&self.inner) });
                }
                if state.created < state.limit {
                    state.waiters.pop_front();
                    state.created += 1;
                    state.in_use += 1;
                    // Pay the connect cost outside the lock.
                    drop(state);
                    self.inner.available.notify_all();
                    match self.inner.db.try_connect() {
                        Ok(conn) => {
                            return Ok(PooledConnection {
                                conn: Some(conn),
                                pool: Arc::clone(&self.inner),
                            })
                        }
                        Err(e) => {
                            // Roll back the reservation so the slot stays usable.
                            let mut state = self.inner.state.lock();
                            state.created -= 1;
                            state.in_use -= 1;
                            drop(state);
                            self.inner.available.notify_all();
                            return Err(e);
                        }
                    }
                }
            }
            if Instant::now() >= deadline {
                // Leave the queue so later waiters are not blocked behind
                // a ticket that gave up.
                if let Some(pos) = state.waiters.iter().position(|&t| t == ticket) {
                    state.waiters.remove(pos);
                }
                let in_use = state.in_use;
                drop(state);
                self.inner.available.notify_all();
                return Err(TasteError::timeout(format!(
                    "connection pool exhausted ({} in use) after {:?}",
                    in_use, self.inner.acquire_timeout
                )));
            }
            self.inner.available.wait_until(&mut state, deadline);
        }
    }

    /// Connections currently checked out.
    pub fn in_use(&self) -> usize {
        self.inner.state.lock().in_use
    }

    /// Connections ever created and still live (≤ `max_connections`).
    pub fn created(&self) -> usize {
        self.inner.state.lock().created
    }

    /// The configured hard ceiling.
    pub fn max_connections(&self) -> usize {
        self.inner.max_connections
    }

    /// The current effective limit (≤ `max_connections`).
    pub fn limit(&self) -> usize {
        self.inner.state.lock().limit
    }

    /// Callers currently blocked in [`ConnectionPool::get`].
    pub fn waiting(&self) -> usize {
        self.inner.state.lock().waiters.len()
    }

    /// Fault-poisoned connections discarded at checkin instead of reused.
    pub fn discarded(&self) -> usize {
        self.inner.state.lock().discarded
    }

    /// Adjusts the effective connection limit at runtime, clamped to
    /// `[1, max_connections]`. Returns the applied limit.
    ///
    /// Raising the limit wakes blocked waiters (new slots may now be
    /// creatable). Lowering it never revokes checked-out connections:
    /// excess live connections are retired as they are checked back in,
    /// and idle connections above the new limit are retired immediately.
    pub fn set_limit(&self, limit: usize) -> usize {
        let applied = limit.clamp(1, self.inner.max_connections);
        let mut state = self.inner.state.lock();
        state.limit = applied;
        // Retire surplus idle connections right away.
        while state.created > state.limit {
            if state.idle.pop().is_some() {
                state.created -= 1;
            } else {
                break;
            }
        }
        drop(state);
        self.inner.available.notify_all();
        applied
    }
}

impl PooledConnection {
    /// The underlying connection.
    pub fn conn(&self) -> &Connection {
        self.conn.as_ref().expect("present until drop")
    }
}

impl std::ops::Deref for PooledConnection {
    type Target = Connection;

    fn deref(&self) -> &Connection {
        self.conn()
    }
}

impl Drop for PooledConnection {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            let mut state = self.pool.state.lock();
            if conn.is_poisoned() {
                // A fault dropped this connection mid-query: discard it so
                // the next checkout opens a fresh one instead of handing a
                // broken connection to another worker.
                state.created -= 1;
                state.discarded += 1;
            } else if state.created > state.limit {
                // The limit was lowered while this connection was out:
                // retire it instead of returning it to the idle set.
                state.created -= 1;
            } else {
                state.idle.push(conn);
            }
            state.in_use -= 1;
            drop(state);
            self.pool.available.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;
    use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableId, TableMeta};

    fn db(latency: LatencyProfile) -> Arc<Database> {
        let db = Database::new("pooled", latency);
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "t".into(), comment: None, row_count: 3 },
            columns: vec![ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "x".into(),
                comment: None,
                raw_type: RawType::Integer,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            }],
            rows: (0..3).map(|i| vec![Cell::Int(i)]).collect(),
            labels: vec![LabelSet::empty()],
        };
        db.create_table(&table).unwrap();
        db
    }

    #[test]
    fn connections_are_reused_not_recreated() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(Arc::clone(&db), 2, Duration::from_millis(100));
        for _ in 0..10 {
            let c = pool.get().unwrap();
            let _ = c.fetch_tables();
        }
        // Serial checkouts reuse one connection; the database saw a
        // single handshake.
        assert_eq!(pool.created(), 1);
        assert_eq!(db.ledger().snapshot().connections_opened, 1);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn cap_is_enforced_with_timeout() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 2, Duration::from_millis(50));
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        assert_eq!(pool.in_use(), 2);
        let t0 = Instant::now();
        let err = pool.get();
        assert!(err.is_err(), "third checkout must time out");
        assert!(t0.elapsed() >= Duration::from_millis(45));
        drop(a);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert!(pool.get().is_ok());
    }

    #[test]
    fn blocked_checkout_wakes_on_checkin() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_secs(5));
        let held = pool.get().unwrap();
        let pool2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            let t0 = Instant::now();
            let c = pool2.get().unwrap();
            let _ = c.fetch_tables();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(60));
        drop(held);
        let waited = waiter.join().unwrap();
        assert!(waited >= Duration::from_millis(50), "waiter released too early: {waited:?}");
        assert!(waited < Duration::from_secs(5), "waiter should not have timed out");
    }

    #[test]
    fn concurrent_users_never_exceed_cap() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(Arc::clone(&db), 3, Duration::from_secs(5));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    let c = pool.get().unwrap();
                    let _ = c.fetch_tables();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pool.created() <= 3, "created {}", pool.created());
        assert!(db.ledger().snapshot().connections_opened <= 3);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_cap_rejected() {
        let db = db(LatencyProfile::zero());
        let _ = ConnectionPool::new(db, 0, Duration::from_millis(1));
    }

    #[test]
    fn deref_gives_direct_connection_access() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_millis(50));
        let c = pool.get().unwrap();
        // Deref: call Connection methods directly on the guard.
        assert_eq!(c.fetch_tables().unwrap().len(), 1);
    }

    #[test]
    fn acquire_timeout_is_retryable_timeout() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_millis(20));
        let _held = pool.get().unwrap();
        let err = pool.get().unwrap_err();
        assert!(matches!(err, TasteError::Timeout(_)), "got {err:?}");
        assert!(err.is_retryable());
        // A timed-out waiter leaves the queue: nobody is waiting now.
        assert_eq!(pool.waiting(), 0);
    }

    #[test]
    fn poisoned_connections_are_discarded_not_reused() {
        use crate::engine::ScanMethod;
        use crate::faults::FaultProfile;
        let db = db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile { scan_drop: 1.0, ..FaultProfile::none() });
        let pool = ConnectionPool::new(Arc::clone(&db), 2, Duration::from_millis(100));
        {
            let c = pool.get().unwrap();
            assert!(c.scan_columns(TableId(0), &[0], ScanMethod::FirstM { m: 1 }).is_err());
            assert!(c.is_poisoned());
        }
        assert_eq!(pool.discarded(), 1);
        assert_eq!(pool.created(), 0, "poisoned connection must free its slot");
        // Disable faults: the next checkout opens a fresh, healthy connection.
        db.set_fault_profile(FaultProfile::none());
        let c = pool.get().unwrap();
        assert!(!c.is_poisoned());
        assert!(c.fetch_tables().is_ok());
        assert_eq!(pool.created(), 1);
    }

    #[test]
    fn failed_create_rolls_back_reservation() {
        use crate::faults::FaultProfile;
        let db = db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile { connect_fail: 1.0, ..FaultProfile::none() });
        let pool = ConnectionPool::new(Arc::clone(&db), 1, Duration::from_millis(20));
        let err = pool.get().unwrap_err();
        assert!(matches!(err, TasteError::Transient(_)), "got {err:?}");
        assert_eq!(pool.created(), 0);
        assert_eq!(pool.in_use(), 0);
        // Slot is free again once faults clear.
        db.set_fault_profile(FaultProfile::none());
        assert!(pool.get().is_ok());
    }

    #[test]
    fn waiters_acquire_in_fifo_order() {
        // Regression test for starvation: with a bare condvar an arbitrary
        // waiter wins each checkin; the ticket queue must hand the
        // connection to waiters in exactly their arrival order.
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 1, Duration::from_secs(10));
        let held = pool.get().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..5u32 {
            let worker_pool = pool.clone();
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let c = worker_pool.get().unwrap();
                order.lock().push(i);
                // Hold briefly so the next waiter's acquisition is
                // strictly after ours.
                std::thread::sleep(Duration::from_millis(2));
                drop(c);
            }));
            // Wait until waiter i is enqueued before spawning i+1, so the
            // arrival order is deterministic.
            let deadline = Instant::now() + Duration::from_secs(5);
            while pool.waiting() < (i + 1) as usize {
                assert!(Instant::now() < deadline, "waiter {i} never enqueued");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        drop(held);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4], "acquisition order must match arrival order");
        assert_eq!(pool.waiting(), 0);
    }

    #[test]
    fn set_limit_clamps_and_gates_creation() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 4, Duration::from_millis(20));
        assert_eq!(pool.limit(), 4);
        assert_eq!(pool.set_limit(0), 1, "limit clamps up to 1");
        assert_eq!(pool.set_limit(99), 4, "limit clamps down to max_connections");
        assert_eq!(pool.set_limit(2), 2);
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        // Third checkout exceeds the narrowed limit even though
        // max_connections would allow it.
        assert!(pool.get().is_err());
        drop(a);
        drop(b);
        // Restoring the limit re-opens the slots.
        pool.set_limit(4);
        let _c = pool.get().unwrap();
        let _d = pool.get().unwrap();
        let _e = pool.get().unwrap();
        assert_eq!(pool.in_use(), 3);
    }

    #[test]
    fn shrinking_limit_retires_connections_at_checkin() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 3, Duration::from_millis(50));
        let a = pool.get().unwrap();
        let b = pool.get().unwrap();
        let c = pool.get().unwrap();
        assert_eq!(pool.created(), 3);
        pool.set_limit(1);
        // Checked-out connections are not revoked...
        assert_eq!(pool.in_use(), 3);
        // ...but checkins retire the surplus instead of idling it.
        drop(a);
        drop(b);
        drop(c);
        assert_eq!(pool.created(), 1, "surplus connections must be retired");
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn raising_limit_wakes_blocked_waiters() {
        let db = db(LatencyProfile::zero());
        let pool = ConnectionPool::new(db, 2, Duration::from_secs(5));
        pool.set_limit(1);
        let held = pool.get().unwrap();
        let pool2 = pool.clone();
        let waiter = std::thread::spawn(move || pool2.get().map(drop).is_ok());
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.waiting() < 1 {
            assert!(Instant::now() < deadline, "waiter never enqueued");
            std::thread::sleep(Duration::from_millis(1));
        }
        // Raising the limit opens a second slot; the waiter must proceed
        // without `held` ever being returned.
        pool.set_limit(2);
        assert!(waiter.join().unwrap(), "waiter should acquire after limit raise");
        drop(held);
    }
}
