//! Compact byte encoding of rows — the storage engine's on-"disk" format.
//!
//! Each row is a sequence of tagged cells:
//!
//! | tag | payload |
//! |-----|---------|
//! | 0   | NULL, no payload |
//! | 1   | `i64` little-endian |
//! | 2   | `f64` little-endian |
//! | 3   | `u32` length + UTF-8 bytes |
//! | 4   | one `bool` byte |
//!
//! The codec exists so scans have a real byte cost to account (the
//! per-byte term of the latency model) rather than handing out references
//! to parsed values for free.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use taste_core::{Cell, Result, TasteError};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Encodes one row of cells into its byte representation.
pub fn encode_row(cells: &[Cell]) -> Bytes {
    let mut buf = BytesMut::with_capacity(cells.len() * 9);
    for cell in cells {
        match cell {
            Cell::Null => buf.put_u8(TAG_NULL),
            Cell::Int(v) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*v);
            }
            Cell::Float(v) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*v);
            }
            Cell::Text(s) => {
                buf.put_u8(TAG_TEXT);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Cell::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                buf.put_u8(u8::from(*b));
            }
        }
    }
    buf.freeze()
}

/// Decodes a full row.
pub fn decode_row(mut bytes: &[u8], width: usize) -> Result<Vec<Cell>> {
    let mut cells = Vec::with_capacity(width);
    for _ in 0..width {
        cells.push(decode_cell(&mut bytes)?);
    }
    if !bytes.is_empty() {
        return Err(TasteError::Database(format!(
            "trailing {} bytes after decoding {width} cells",
            bytes.len()
        )));
    }
    Ok(cells)
}

/// Decodes only the cells at the given (ascending) ordinals, skipping the
/// rest — the projection path used by column scans. Returns the projected
/// cells and the number of bytes *touched* (the projected cells' bytes),
/// which the ledger accounts as transferred.
pub fn decode_projection(mut bytes: &[u8], width: usize, ordinals: &[u16]) -> Result<(Vec<Cell>, usize)> {
    debug_assert!(ordinals.windows(2).all(|w| w[0] < w[1]), "ordinals must ascend");
    let mut cells = Vec::with_capacity(ordinals.len());
    let mut touched = 0usize;
    let mut next = ordinals.iter().copied().peekable();
    for ordinal in 0..width as u16 {
        let before = bytes.len();
        if next.peek() == Some(&ordinal) {
            cells.push(decode_cell(&mut bytes)?);
            touched += before - bytes.len();
            next.next();
        } else {
            skip_cell(&mut bytes)?;
        }
    }
    if let Some(o) = next.next() {
        return Err(TasteError::Database(format!("projection ordinal {o} beyond width {width}")));
    }
    Ok((cells, touched))
}

fn decode_cell(bytes: &mut &[u8]) -> Result<Cell> {
    if bytes.is_empty() {
        return Err(TasteError::Database("truncated row: missing tag".into()));
    }
    let tag = bytes.get_u8();
    match tag {
        TAG_NULL => Ok(Cell::Null),
        TAG_INT => {
            ensure(bytes, 8)?;
            Ok(Cell::Int(bytes.get_i64_le()))
        }
        TAG_FLOAT => {
            ensure(bytes, 8)?;
            Ok(Cell::Float(bytes.get_f64_le()))
        }
        TAG_TEXT => {
            ensure(bytes, 4)?;
            let len = bytes.get_u32_le() as usize;
            ensure(bytes, len)?;
            let s = std::str::from_utf8(&bytes[..len])
                .map_err(|e| TasteError::Database(format!("invalid utf8 in text cell: {e}")))?
                .to_owned();
            bytes.advance(len);
            Ok(Cell::Text(s))
        }
        TAG_BOOL => {
            ensure(bytes, 1)?;
            Ok(Cell::Bool(bytes.get_u8() != 0))
        }
        other => Err(TasteError::Database(format!("unknown cell tag {other}"))),
    }
}

fn skip_cell(bytes: &mut &[u8]) -> Result<()> {
    if bytes.is_empty() {
        return Err(TasteError::Database("truncated row: missing tag".into()));
    }
    let tag = bytes.get_u8();
    let skip = match tag {
        TAG_NULL => 0,
        TAG_INT | TAG_FLOAT => 8,
        TAG_BOOL => 1,
        TAG_TEXT => {
            ensure(bytes, 4)?;
            bytes.get_u32_le() as usize
        }
        other => return Err(TasteError::Database(format!("unknown cell tag {other}"))),
    };
    ensure(bytes, skip)?;
    bytes.advance(skip);
    Ok(())
}

fn ensure(bytes: &[u8], need: usize) -> Result<()> {
    if bytes.len() < need {
        return Err(TasteError::Database(format!(
            "truncated row: need {need} bytes, have {}",
            bytes.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Vec<Cell> {
        vec![
            Cell::Int(-42),
            Cell::Null,
            Cell::Text("Shenzhen".into()),
            Cell::Float(3.25),
            Cell::Bool(true),
        ]
    }

    #[test]
    fn roundtrip_all_cell_kinds() {
        let row = sample_row();
        let bytes = encode_row(&row);
        let back = decode_row(&bytes, row.len()).unwrap();
        assert_eq!(back, row);
    }

    #[test]
    fn empty_row_roundtrip() {
        let bytes = encode_row(&[]);
        assert!(bytes.is_empty());
        assert_eq!(decode_row(&bytes, 0).unwrap(), Vec::<Cell>::new());
    }

    #[test]
    fn projection_selects_requested_ordinals() {
        let row = sample_row();
        let bytes = encode_row(&row);
        let (cells, touched) = decode_projection(&bytes, row.len(), &[0, 2, 4]).unwrap();
        assert_eq!(cells, vec![Cell::Int(-42), Cell::Text("Shenzhen".into()), Cell::Bool(true)]);
        assert!(touched > 0 && touched < bytes.len(), "touched {touched} of {}", bytes.len());
    }

    #[test]
    fn projection_of_nothing_touches_nothing() {
        let row = sample_row();
        let bytes = encode_row(&row);
        let (cells, touched) = decode_projection(&bytes, row.len(), &[]).unwrap();
        assert!(cells.is_empty());
        assert_eq!(touched, 0);
    }

    #[test]
    fn decode_errors_on_truncation() {
        let row = vec![Cell::Text("hello".into())];
        let bytes = encode_row(&row);
        let cut = &bytes[..bytes.len() - 2];
        assert!(decode_row(cut, 1).is_err());
    }

    #[test]
    fn decode_errors_on_trailing_garbage() {
        let row = vec![Cell::Int(1)];
        let mut bytes = encode_row(&row).to_vec();
        bytes.push(0xFF);
        assert!(decode_row(&bytes, 1).is_err());
    }

    #[test]
    fn decode_errors_on_unknown_tag() {
        let bytes = vec![200u8];
        assert!(decode_row(&bytes, 1).is_err());
    }

    #[test]
    fn projection_rejects_out_of_range_ordinal() {
        let row = sample_row();
        let bytes = encode_row(&row);
        assert!(decode_projection(&bytes, row.len(), &[7]).is_err());
    }

    #[test]
    fn unicode_text_roundtrips() {
        let row = vec![Cell::Text("深圳市 🌆".into())];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes, 1).unwrap(), row);
    }
}
