//! The intrusiveness ledger: what the detection service did *to* the user
//! database.
//!
//! The paper's third headline metric — the **ratio of scanned columns**
//! (Fig. 5) — measures intrusiveness into user data sources. The ledger
//! tracks every observable interaction with atomic counters so concurrent
//! pipeline stages can record without locking.
//!
//! ## Consistency under concurrent readers
//!
//! Every counter is monotone and every fault event increments **exactly
//! one** underlying counter; the aggregate `failed_queries` is *derived*
//! at snapshot time as `other_failures + injected_timeouts +
//! dropped_connections + throttled_queries`, computed from the very
//! values the snapshot loaded. A snapshot taken mid-storm can therefore
//! lag individual counters, but it can never violate the invariant
//! `failed_queries >= injected_timeouts + dropped_connections +
//! throttled_queries`, and neither can any delta between two snapshots
//! (each component is independently monotone). This is why the recorders
//! use `Relaxed` ordering: no cross-counter ordering is ever required.
//!
//! (The previous scheme stored `failed_queries` as its own counter and
//! incremented it *alongside* the specific fault counter in two separate
//! atomic operations — a concurrent reader could observe the specific
//! increment without the aggregate one, producing deltas where a fault
//! was double-counted or negative-skewed.)

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe interaction counters for one database.
#[derive(Debug, Default)]
pub struct Ledger {
    connections_opened: AtomicU64,
    metadata_queries: AtomicU64,
    scan_queries: AtomicU64,
    columns_scanned: AtomicU64,
    rows_read: AtomicU64,
    bytes_read: AtomicU64,
    /// Failed queries *not* attributable to a specific fault class below;
    /// the snapshot's `failed_queries` aggregate is derived, not stored.
    other_failures: AtomicU64,
    injected_timeouts: AtomicU64,
    dropped_connections: AtomicU64,
    throttled_queries: AtomicU64,
    wasted_bytes: AtomicU64,
    reconnects: AtomicU64,
    panicked_stages: AtomicU64,
    timed_out_stages: AtomicU64,
    cancelled_stages: AtomicU64,
    shed_stages: AtomicU64,
}

/// A point-in-time copy of the ledger counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerSnapshot {
    /// Connections opened against the database.
    pub connections_opened: u64,
    /// information_schema-style metadata queries issued.
    pub metadata_queries: u64,
    /// Content scan queries issued.
    pub scan_queries: u64,
    /// Distinct column scans performed (a column scanned in two queries
    /// counts twice — it was read twice).
    pub columns_scanned: u64,
    /// Rows materialized by scans.
    pub rows_read: u64,
    /// Cell bytes transferred by scans.
    pub bytes_read: u64,
    /// Queries that failed from an injected fault (any kind).
    #[serde(default)]
    pub failed_queries: u64,
    /// Queries that failed specifically by exceeding their deadline.
    #[serde(default)]
    pub injected_timeouts: u64,
    /// Connections dropped (poisoned) mid-query by an injected fault.
    #[serde(default)]
    pub dropped_connections: u64,
    /// Queries rejected by a throttling window.
    #[serde(default)]
    pub throttled_queries: u64,
    /// Bytes transferred by scans whose query ultimately failed.
    #[serde(default)]
    pub wasted_bytes: u64,
    /// Reconnects performed to replace poisoned connections.
    #[serde(default)]
    pub reconnects: u64,
    /// Engine stages that panicked and were isolated at the stage
    /// boundary (work the database may have partially served for nothing).
    #[serde(default)]
    pub panicked_stages: u64,
    /// Engine stages abandoned by the watchdog after exceeding their
    /// deadline.
    #[serde(default)]
    pub timed_out_stages: u64,
    /// Engine stages skipped because their batch was cancelled or halted.
    #[serde(default)]
    pub cancelled_stages: u64,
    /// Engine P2 stages dropped by the overload controller (load shed):
    /// work the database was spared while the service was saturated.
    #[serde(default)]
    pub shed_stages: u64,
}

impl LedgerSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            connections_opened: self.connections_opened - earlier.connections_opened,
            metadata_queries: self.metadata_queries - earlier.metadata_queries,
            scan_queries: self.scan_queries - earlier.scan_queries,
            columns_scanned: self.columns_scanned - earlier.columns_scanned,
            rows_read: self.rows_read - earlier.rows_read,
            bytes_read: self.bytes_read - earlier.bytes_read,
            failed_queries: self.failed_queries - earlier.failed_queries,
            injected_timeouts: self.injected_timeouts - earlier.injected_timeouts,
            dropped_connections: self.dropped_connections - earlier.dropped_connections,
            throttled_queries: self.throttled_queries - earlier.throttled_queries,
            wasted_bytes: self.wasted_bytes - earlier.wasted_bytes,
            reconnects: self.reconnects - earlier.reconnects,
            panicked_stages: self.panicked_stages - earlier.panicked_stages,
            timed_out_stages: self.timed_out_stages - earlier.timed_out_stages,
            cancelled_stages: self.cancelled_stages - earlier.cancelled_stages,
            shed_stages: self.shed_stages - earlier.shed_stages,
        }
    }

    /// The paper's intrusiveness ratio: scanned columns over `total`.
    pub fn scanned_ratio(&self, total_columns: u64) -> f64 {
        if total_columns == 0 {
            0.0
        } else {
            self.columns_scanned as f64 / total_columns as f64
        }
    }
}

impl Ledger {
    /// Fresh ledger with all counters at zero.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    pub(crate) fn record_connection(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_metadata_query(&self) {
        self.metadata_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_scan(&self, columns: u64, rows: u64, bytes: u64) {
        self.scan_queries.fetch_add(1, Ordering::Relaxed);
        self.columns_scanned.fetch_add(columns, Ordering::Relaxed);
        self.rows_read.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_failed_query(&self) {
        self.other_failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_injected_timeout(&self) {
        self.injected_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped_connection(&self) {
        self.dropped_connections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_throttled_query(&self) {
        self.throttled_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an engine stage whose panic was caught and isolated.
    ///
    /// Public (unlike the query recorders) because panics happen in the
    /// detection engine, above the database boundary.
    pub fn record_panicked_stage(&self) {
        self.panicked_stages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an engine stage abandoned past its watchdog deadline.
    pub fn record_timed_out_stage(&self) {
        self.timed_out_stages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an engine stage skipped by a batch cancellation or halt.
    pub fn record_cancelled_stage(&self) {
        self.cancelled_stages.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an engine P2 stage dropped by the overload controller.
    pub fn record_shed_stage(&self) {
        self.shed_stages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_wasted_bytes(&self, bytes: u64) {
        self.wasted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    ///
    /// `failed_queries` is derived from the component counters loaded by
    /// this very call, so the invariant `failed_queries >=
    /// injected_timeouts + dropped_connections + throttled_queries` holds
    /// in every snapshot — and in every delta between two snapshots —
    /// even while writers are mid-storm on other threads.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let other_failures = self.other_failures.load(Ordering::Relaxed);
        let injected_timeouts = self.injected_timeouts.load(Ordering::Relaxed);
        let dropped_connections = self.dropped_connections.load(Ordering::Relaxed);
        let throttled_queries = self.throttled_queries.load(Ordering::Relaxed);
        LedgerSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            metadata_queries: self.metadata_queries.load(Ordering::Relaxed),
            scan_queries: self.scan_queries.load(Ordering::Relaxed),
            columns_scanned: self.columns_scanned.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            failed_queries: other_failures
                + injected_timeouts
                + dropped_connections
                + throttled_queries,
            injected_timeouts,
            dropped_connections,
            throttled_queries,
            wasted_bytes: self.wasted_bytes.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            panicked_stages: self.panicked_stages.load(Ordering::Relaxed),
            timed_out_stages: self.timed_out_stages.load(Ordering::Relaxed),
            cancelled_stages: self.cancelled_stages.load(Ordering::Relaxed),
            shed_stages: self.shed_stages.load(Ordering::Relaxed),
        }
    }

    /// Counter delta since `baseline`, advancing `baseline` to now.
    ///
    /// Back-to-back experiments in one process share the database's ledger;
    /// this lets each run report only its own interaction counts without
    /// destructively resetting the ledger under a concurrent reader.
    ///
    /// The `&mut` borrow makes each reader's baseline exclusive by
    /// construction: two readers tracking their own baselines see
    /// non-overlapping, non-double-counted deltas of the same event
    /// stream. Sharing one baseline between readers requires external
    /// synchronization around the whole read-modify cycle — hand each
    /// reader its own baseline instead.
    pub fn snapshot_delta(&self, baseline: &mut LedgerSnapshot) -> LedgerSnapshot {
        let now = self.snapshot();
        let delta = now.since(baseline);
        *baseline = now;
        delta
    }

    /// Resets every counter to zero (between experiment runs).
    pub fn reset(&self) {
        self.connections_opened.store(0, Ordering::Relaxed);
        self.metadata_queries.store(0, Ordering::Relaxed);
        self.scan_queries.store(0, Ordering::Relaxed);
        self.columns_scanned.store(0, Ordering::Relaxed);
        self.rows_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.other_failures.store(0, Ordering::Relaxed);
        self.injected_timeouts.store(0, Ordering::Relaxed);
        self.dropped_connections.store(0, Ordering::Relaxed);
        self.throttled_queries.store(0, Ordering::Relaxed);
        self.wasted_bytes.store(0, Ordering::Relaxed);
        self.reconnects.store(0, Ordering::Relaxed);
        self.panicked_stages.store(0, Ordering::Relaxed);
        self.timed_out_stages.store(0, Ordering::Relaxed);
        self.cancelled_stages.store(0, Ordering::Relaxed);
        self.shed_stages.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let l = Ledger::new();
        l.record_connection();
        l.record_metadata_query();
        l.record_scan(3, 50, 1024);
        l.record_scan(2, 10, 64);
        let s = l.snapshot();
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.metadata_queries, 1);
        assert_eq!(s.scan_queries, 2);
        assert_eq!(s.columns_scanned, 5);
        assert_eq!(s.rows_read, 60);
        assert_eq!(s.bytes_read, 1088);
    }

    #[test]
    fn reset_zeroes_everything() {
        let l = Ledger::new();
        l.record_scan(1, 1, 1);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn since_computes_deltas() {
        let l = Ledger::new();
        l.record_scan(2, 5, 10);
        let before = l.snapshot();
        l.record_scan(3, 5, 10);
        let delta = l.snapshot().since(&before);
        assert_eq!(delta.columns_scanned, 3);
        assert_eq!(delta.scan_queries, 1);
    }

    #[test]
    fn snapshot_delta_advances_baseline() {
        let l = Ledger::new();
        let mut baseline = l.snapshot();
        l.record_scan(2, 5, 10);
        let d1 = l.snapshot_delta(&mut baseline);
        assert_eq!(d1.columns_scanned, 2);
        l.record_scan(3, 1, 1);
        let d2 = l.snapshot_delta(&mut baseline);
        assert_eq!(d2.columns_scanned, 3);
        // No further activity → empty delta.
        assert_eq!(l.snapshot_delta(&mut baseline), LedgerSnapshot::default());
    }

    #[test]
    fn fault_counters_accumulate_and_reset() {
        let l = Ledger::new();
        l.record_failed_query();
        l.record_injected_timeout();
        l.record_dropped_connection();
        l.record_throttled_query();
        l.record_wasted_bytes(512);
        l.record_reconnect();
        let s = l.snapshot();
        assert_eq!(s.failed_queries, 4);
        assert_eq!(s.injected_timeouts, 1);
        assert_eq!(s.dropped_connections, 1);
        assert_eq!(s.throttled_queries, 1);
        assert_eq!(s.wasted_bytes, 512);
        assert_eq!(s.reconnects, 1);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn stage_outcome_counters_accumulate_and_reset() {
        let l = Ledger::new();
        l.record_panicked_stage();
        l.record_timed_out_stage();
        l.record_timed_out_stage();
        l.record_cancelled_stage();
        l.record_shed_stage();
        l.record_shed_stage();
        l.record_shed_stage();
        let s = l.snapshot();
        assert_eq!(s.panicked_stages, 1);
        assert_eq!(s.timed_out_stages, 2);
        assert_eq!(s.cancelled_stages, 1);
        assert_eq!(s.shed_stages, 3);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn fault_invariant_holds_in_every_concurrent_snapshot() {
        // Writers hammer the fault recorders while a reader snapshots
        // continuously. The derived aggregate must never undercount the
        // specific fault classes — in any snapshot or any delta.
        let l = Arc::new(Ledger::new());
        let mut writers = Vec::new();
        for w in 0..4 {
            let l = Arc::clone(&l);
            writers.push(std::thread::spawn(move || {
                for i in 0..5000 {
                    match (w + i) % 4 {
                        0 => l.record_injected_timeout(),
                        1 => l.record_dropped_connection(),
                        2 => l.record_throttled_query(),
                        _ => l.record_failed_query(),
                    }
                }
            }));
        }
        let reader = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                let mut prev = LedgerSnapshot::default();
                for _ in 0..2000 {
                    let s = l.snapshot();
                    assert!(
                        s.failed_queries
                            >= s.injected_timeouts + s.dropped_connections + s.throttled_queries,
                        "snapshot undercounts: {s:?}"
                    );
                    let d = s.since(&prev);
                    assert!(
                        d.failed_queries
                            >= d.injected_timeouts + d.dropped_connections + d.throttled_queries,
                        "delta undercounts: {d:?}"
                    );
                    prev = s;
                }
            })
        };
        for h in writers {
            h.join().unwrap();
        }
        reader.join().unwrap();
        let s = l.snapshot();
        assert_eq!(s.failed_queries, 20_000);
        assert_eq!(
            s.injected_timeouts + s.dropped_connections + s.throttled_queries,
            15_000
        );
    }

    #[test]
    fn scanned_ratio_handles_zero_total() {
        let s = LedgerSnapshot { columns_scanned: 5, ..Default::default() };
        assert_eq!(s.scanned_ratio(0), 0.0);
        assert!((s.scanned_ratio(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let l = Arc::new(Ledger::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_scan(1, 2, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = l.snapshot();
        assert_eq!(s.columns_scanned, 8000);
        assert_eq!(s.rows_read, 16000);
        assert_eq!(s.bytes_read, 24000);
    }
}
