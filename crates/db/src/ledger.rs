//! The intrusiveness ledger: what the detection service did *to* the user
//! database.
//!
//! The paper's third headline metric — the **ratio of scanned columns**
//! (Fig. 5) — measures intrusiveness into user data sources. The ledger
//! tracks every observable interaction with atomic counters so concurrent
//! pipeline stages can record without locking.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe interaction counters for one database.
#[derive(Debug, Default)]
pub struct Ledger {
    connections_opened: AtomicU64,
    metadata_queries: AtomicU64,
    scan_queries: AtomicU64,
    columns_scanned: AtomicU64,
    rows_read: AtomicU64,
    bytes_read: AtomicU64,
}

/// A point-in-time copy of the ledger counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LedgerSnapshot {
    /// Connections opened against the database.
    pub connections_opened: u64,
    /// information_schema-style metadata queries issued.
    pub metadata_queries: u64,
    /// Content scan queries issued.
    pub scan_queries: u64,
    /// Distinct column scans performed (a column scanned in two queries
    /// counts twice — it was read twice).
    pub columns_scanned: u64,
    /// Rows materialized by scans.
    pub rows_read: u64,
    /// Cell bytes transferred by scans.
    pub bytes_read: u64,
}

impl LedgerSnapshot {
    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            connections_opened: self.connections_opened - earlier.connections_opened,
            metadata_queries: self.metadata_queries - earlier.metadata_queries,
            scan_queries: self.scan_queries - earlier.scan_queries,
            columns_scanned: self.columns_scanned - earlier.columns_scanned,
            rows_read: self.rows_read - earlier.rows_read,
            bytes_read: self.bytes_read - earlier.bytes_read,
        }
    }

    /// The paper's intrusiveness ratio: scanned columns over `total`.
    pub fn scanned_ratio(&self, total_columns: u64) -> f64 {
        if total_columns == 0 {
            0.0
        } else {
            self.columns_scanned as f64 / total_columns as f64
        }
    }
}

impl Ledger {
    /// Fresh ledger with all counters at zero.
    pub fn new() -> Ledger {
        Ledger::default()
    }

    pub(crate) fn record_connection(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_metadata_query(&self) {
        self.metadata_queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_scan(&self, columns: u64, rows: u64, bytes: u64) {
        self.scan_queries.fetch_add(1, Ordering::Relaxed);
        self.columns_scanned.fetch_add(columns, Ordering::Relaxed);
        self.rows_read.fetch_add(rows, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copies the current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            metadata_queries: self.metadata_queries.load(Ordering::Relaxed),
            scan_queries: self.scan_queries.load(Ordering::Relaxed),
            columns_scanned: self.columns_scanned.load(Ordering::Relaxed),
            rows_read: self.rows_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero (between experiment runs).
    pub fn reset(&self) {
        self.connections_opened.store(0, Ordering::Relaxed);
        self.metadata_queries.store(0, Ordering::Relaxed);
        self.scan_queries.store(0, Ordering::Relaxed);
        self.columns_scanned.store(0, Ordering::Relaxed);
        self.rows_read.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let l = Ledger::new();
        l.record_connection();
        l.record_metadata_query();
        l.record_scan(3, 50, 1024);
        l.record_scan(2, 10, 64);
        let s = l.snapshot();
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.metadata_queries, 1);
        assert_eq!(s.scan_queries, 2);
        assert_eq!(s.columns_scanned, 5);
        assert_eq!(s.rows_read, 60);
        assert_eq!(s.bytes_read, 1088);
    }

    #[test]
    fn reset_zeroes_everything() {
        let l = Ledger::new();
        l.record_scan(1, 1, 1);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn since_computes_deltas() {
        let l = Ledger::new();
        l.record_scan(2, 5, 10);
        let before = l.snapshot();
        l.record_scan(3, 5, 10);
        let delta = l.snapshot().since(&before);
        assert_eq!(delta.columns_scanned, 3);
        assert_eq!(delta.scan_queries, 1);
    }

    #[test]
    fn scanned_ratio_handles_zero_total() {
        let s = LedgerSnapshot { columns_scanned: 5, ..Default::default() };
        assert_eq!(s.scanned_ratio(0), 0.0);
        assert!((s.scanned_ratio(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let l = Arc::new(Ledger::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    l.record_scan(1, 2, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = l.snapshot();
        assert_eq!(s.columns_scanned, 8000);
        assert_eq!(s.rows_read, 16000);
        assert_eq!(s.bytes_read, 24000);
    }
}
