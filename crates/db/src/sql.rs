//! A miniature SQL surface over the simulated database.
//!
//! The paper's Phase 1 retrieves metadata with plain SQL (`SELECT * FROM
//! information_schema.columns`, §3.2), and real detection services speak
//! SQL to user databases. This module implements the small dialect the
//! detection workload needs, end to end through the [`Connection`] (so
//! latency and the intrusiveness ledger apply):
//!
//! ```sql
//! SELECT * FROM information_schema.tables
//! SELECT * FROM information_schema.columns WHERE table_name = 'orders'
//! SELECT a, b FROM orders LIMIT 50
//! SELECT * FROM orders ORDER BY RAND(7) LIMIT 20
//! ANALYZE TABLE orders UPDATE HISTOGRAM WITH 8 BUCKETS
//! ```
//!
//! Identifiers are case-insensitive; string literals use single quotes.
//! The result is a [`ResultSet`]: column names plus rows of rendered
//! values, like a textual MySQL client would show.

use crate::connection::Connection;
use crate::engine::ScanMethod;
use taste_core::{HistogramKind, Result, TableId, TasteError};

/// A tabular query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSet {
    /// Output column headers.
    pub columns: Vec<String>,
    /// Rows of rendered values.
    pub rows: Vec<Vec<String>>,
}

impl ResultSet {
    /// Renders the result like a SQL client, for examples and debugging.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(widths.get(i).copied().unwrap_or(0).saturating_sub(cell.len()) + 1));
            }
            out.push_str("|\n");
        };
        fmt_row(&self.columns, &mut out);
        out.push_str(&format!("|{}|\n", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")));
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Tokenizes a statement into words, punctuation, and quoted strings.
fn lex(input: &str) -> Result<Vec<String>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '\'' {
            chars.next();
            let mut s = String::from("'");
            loop {
                match chars.next() {
                    Some('\'') => break,
                    Some(c) => s.push(c),
                    None => return Err(TasteError::Database("unterminated string literal".into())),
                }
            }
            tokens.push(s);
        } else if c == ',' || c == '(' || c == ')' || c == '=' || c == '*' {
            tokens.push(c.to_string());
            chars.next();
        } else if c.is_alphanumeric() || c == '_' || c == '.' {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' || c == '.' {
                    s.push(c.to_ascii_lowercase());
                    chars.next();
                } else {
                    break;
                }
            }
            tokens.push(s);
        } else {
            return Err(TasteError::Database(format!("unexpected character '{c}'")));
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kw: &str) -> Result<()> {
        match self.next() {
            Some(t) if t == kw => Ok(()),
            other => Err(TasteError::Database(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<u64> {
        match self.next() {
            Some(t) => t
                .parse()
                .map_err(|_| TasteError::Database(format!("expected a number, found '{t}'"))),
            None => Err(TasteError::Database("expected a number".into())),
        }
    }
}

fn table_id_by_name(conn: &Connection, name: &str) -> Result<TableId> {
    let tables = conn.fetch_tables()?;
    tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(name))
        .map(|t| t.id)
        .ok_or_else(|| TasteError::not_found(format!("table '{name}'")))
}

/// Executes one statement through the connection.
pub fn execute(conn: &Connection, statement: &str) -> Result<ResultSet> {
    let tokens = lex(statement)?;
    let mut p = Parser { tokens, pos: 0 };
    match p.peek() {
        Some("select") => execute_select(conn, &mut p),
        Some("analyze") => execute_analyze(conn, &mut p),
        other => Err(TasteError::Database(format!("unsupported statement start: {other:?}"))),
    }
}

fn execute_select(conn: &Connection, p: &mut Parser) -> Result<ResultSet> {
    p.expect("select")?;
    // Projection list.
    let mut projection: Vec<String> = Vec::new();
    let mut star = false;
    loop {
        match p.next() {
            Some("*") => {
                star = true;
            }
            Some(name) => projection.push(name.to_owned()),
            None => return Err(TasteError::Database("unexpected end of SELECT".into())),
        }
        if p.peek() == Some(",") {
            p.next();
        } else {
            break;
        }
    }
    p.expect("from")?;
    let target = p
        .next()
        .ok_or_else(|| TasteError::Database("expected a table name".into()))?
        .to_owned();

    match target.as_str() {
        "information_schema.tables" => {
            if p.peek().is_some() {
                return Err(TasteError::Database("information_schema.tables takes no clauses".into()));
            }
            let rows = conn.database().tables_view();
            Ok(ResultSet {
                columns: vec!["table_name".into(), "table_comment".into(), "table_rows".into(), "column_count".into()],
                rows: rows
                    .into_iter()
                    .map(|r| vec![r.table_name, r.table_comment, r.table_rows.to_string(), r.column_count.to_string()])
                    .collect(),
            })
        }
        "information_schema.columns" => {
            // Optional: WHERE table_name = 'x'.
            let mut filter: Option<String> = None;
            if p.peek() == Some("where") {
                p.next();
                p.expect("table_name")?;
                p.expect("=")?;
                match p.next() {
                    Some(lit) if lit.starts_with('\'') => filter = Some(lit[1..].to_owned()),
                    other => return Err(TasteError::Database(format!("expected a string literal, found {other:?}"))),
                }
            }
            let tids: Vec<TableId> = match &filter {
                Some(name) => vec![table_id_by_name(conn, name)?],
                None => conn.database().table_ids(),
            };
            let mut rows = Vec::new();
            for tid in tids {
                // Through the connection: pays metadata latency + ledger.
                let _ = conn.fetch_columns_meta(tid)?;
                for r in conn.database().columns_view(tid)? {
                    rows.push(vec![
                        r.table_name,
                        r.column_name,
                        r.ordinal_position.to_string(),
                        r.data_type,
                        r.is_nullable,
                        r.column_comment,
                        r.ndv.map(|v| v.to_string()).unwrap_or_default(),
                        r.has_histogram.to_string(),
                    ]);
                }
            }
            Ok(ResultSet {
                columns: vec![
                    "table_name".into(),
                    "column_name".into(),
                    "ordinal_position".into(),
                    "data_type".into(),
                    "is_nullable".into(),
                    "column_comment".into(),
                    "ndv".into(),
                    "has_histogram".into(),
                ],
                rows,
            })
        }
        user_table => {
            // Content scan: [ORDER BY RAND(seed)] LIMIT m.
            let tid = table_id_by_name(conn, user_table)?;
            let mut seed: Option<u64> = None;
            if p.peek() == Some("order") {
                p.next();
                p.expect("by")?;
                p.expect("rand")?;
                p.expect("(")?;
                seed = Some(p.expect_number()?);
                p.expect(")")?;
            }
            p.expect("limit")?;
            let m = p.expect_number()? as usize;
            if p.peek().is_some() {
                return Err(TasteError::Database("trailing tokens after LIMIT".into()));
            }
            let meta = conn.database().columns_view(tid)?;
            let ordinals: Vec<u16> = if star {
                (0..meta.len() as u16).collect()
            } else {
                projection
                    .iter()
                    .map(|name| {
                        meta.iter()
                            .position(|c| c.column_name.eq_ignore_ascii_case(name))
                            .map(|i| i as u16)
                            .ok_or_else(|| TasteError::not_found(format!("column '{name}'")))
                    })
                    .collect::<Result<_>>()?
            };
            let mut sorted = ordinals.clone();
            sorted.sort_unstable();
            let method = match seed {
                Some(seed) => ScanMethod::SampleM { m, seed },
                None => ScanMethod::FirstM { m },
            };
            let rows = conn.scan_columns(tid, &sorted, method)?;
            let headers: Vec<String> = sorted.iter().map(|&o| meta[o as usize].column_name.clone()).collect();
            Ok(ResultSet {
                columns: headers,
                rows: rows
                    .into_iter()
                    .map(|r| r.into_iter().map(|c| c.render()).collect())
                    .collect(),
            })
        }
    }
}

fn execute_analyze(conn: &Connection, p: &mut Parser) -> Result<ResultSet> {
    p.expect("analyze")?;
    p.expect("table")?;
    let name = p
        .next()
        .ok_or_else(|| TasteError::Database("expected a table name".into()))?
        .to_owned();
    let tid = table_id_by_name(conn, &name)?;
    let mut histogram = None;
    if p.peek() == Some("update") {
        p.next();
        p.expect("histogram")?;
        p.expect("with")?;
        let buckets = p.expect_number()? as usize;
        p.expect("buckets")?;
        histogram = Some((HistogramKind::EqualDepth, buckets));
    }
    if p.peek().is_some() {
        return Err(TasteError::Database("trailing tokens after ANALYZE".into()));
    }
    conn.database().analyze_table(tid, histogram)?;
    Ok(ResultSet {
        columns: vec!["table".into(), "op".into(), "status".into()],
        rows: vec![vec![name, "analyze".into(), "OK".into()]],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::latency::LatencyProfile;
    use std::sync::Arc;
    use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, Table, TableMeta};

    fn db() -> Arc<Database> {
        let db = Database::new("tenant", LatencyProfile::zero());
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "orders".into(), comment: Some("sales".into()), row_count: 6 },
            columns: vec![
                ColumnMeta {
                    id: ColumnId::new(tid, 0),
                    name: "id".into(),
                    comment: None,
                    raw_type: RawType::Integer,
                    nullable: false,
                    stats: Default::default(),
                    histogram: None,
                },
                ColumnMeta {
                    id: ColumnId::new(tid, 1),
                    name: "city".into(),
                    comment: Some("ship-to".into()),
                    raw_type: RawType::Text,
                    nullable: true,
                    stats: Default::default(),
                    histogram: None,
                },
            ],
            rows: (0..6).map(|i| vec![Cell::Int(i), Cell::Text(format!("c{i}"))]).collect(),
            labels: vec![LabelSet::empty(), LabelSet::empty()],
        };
        db.create_table(&table).unwrap();
        db
    }

    #[test]
    fn select_information_schema_tables() {
        let db = db();
        let conn = db.connect();
        let rs = execute(&conn, "SELECT * FROM information_schema.tables").unwrap();
        assert_eq!(rs.columns[0], "table_name");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], "orders");
        assert_eq!(rs.rows[0][3], "2");
    }

    #[test]
    fn select_information_schema_columns_with_filter() {
        let db = db();
        let conn = db.connect();
        let rs = execute(
            &conn,
            "SELECT * FROM information_schema.columns WHERE table_name = 'orders'",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[1][1], "city");
        assert_eq!(rs.rows[1][4], "YES");
        // The metadata query hit the ledger.
        assert!(db.ledger().snapshot().metadata_queries >= 1);
    }

    #[test]
    fn select_with_limit_scans_head_rows() {
        let db = db();
        let conn = db.connect();
        let rs = execute(&conn, "SELECT id, city FROM orders LIMIT 3").unwrap();
        assert_eq!(rs.columns, vec!["id", "city"]);
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0], vec!["0", "c0"]);
        assert_eq!(db.ledger().snapshot().columns_scanned, 2);
    }

    #[test]
    fn select_star_and_sampling() {
        let db = db();
        let conn = db.connect();
        let a = execute(&conn, "SELECT * FROM orders ORDER BY RAND(5) LIMIT 2").unwrap();
        let b = execute(&conn, "SELECT * FROM orders ORDER BY RAND(5) LIMIT 2").unwrap();
        assert_eq!(a, b, "seeded sampling is deterministic");
        assert_eq!(a.rows.len(), 2);
        assert_eq!(a.columns, vec!["id", "city"]);
    }

    #[test]
    fn analyze_builds_histogram_visible_in_catalog() {
        let db = db();
        let conn = db.connect();
        execute(&conn, "ANALYZE TABLE orders UPDATE HISTOGRAM WITH 4 BUCKETS").unwrap();
        let rs = execute(&conn, "SELECT * FROM information_schema.columns WHERE table_name = 'orders'").unwrap();
        assert_eq!(rs.rows[0][7], "true");
        assert_ne!(rs.rows[0][6], "", "NDV populated by ANALYZE");
    }

    #[test]
    fn errors_are_database_errors_not_panics() {
        let db = db();
        let conn = db.connect();
        for bad in [
            "SELECT * FROM missing LIMIT 1",
            "SELECT nope FROM orders LIMIT 1",
            "DROP TABLE orders",
            "SELECT * FROM orders",       // missing LIMIT
            "SELECT * FROM orders LIMIT", // missing number
            "SELECT * FROM orders LIMIT 2 trailing",
            "SELECT * FROM information_schema.columns WHERE table_name = orders", // unquoted
        ] {
            assert!(execute(&conn, bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn render_produces_aligned_table() {
        let db = db();
        let conn = db.connect();
        let rs = execute(&conn, "SELECT id FROM orders LIMIT 2").unwrap();
        let text = rs.render();
        assert!(text.contains("| id"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn lexer_handles_quotes_and_case() {
        let toks = lex("SELECT City FROM T WHERE table_name = 'Mixed Case'").unwrap();
        assert!(toks.contains(&"city".to_string()));
        assert!(toks.contains(&"'Mixed Case".to_string()));
        assert!(lex("SELECT 'unterminated").is_err());
        assert!(lex("SELECT #").is_err());
    }
}
