//! `information_schema`-style read-only catalog views.
//!
//! SQL-92 mandates the `information_schema` database; the paper's Phase 1
//! fetches all of its metadata through it (`SELECT * FROM
//! information_schema.columns`). This module renders the engine's catalog
//! into flat view rows, which is also what the examples print.

use crate::engine::Database;
use serde::{Deserialize, Serialize};
use taste_core::{Result, TableId};

/// One row of the `information_schema.columns` view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnsViewRow {
    /// Table name.
    pub table_name: String,
    /// Column name.
    pub column_name: String,
    /// Ordinal position (1-based, as in SQL).
    pub ordinal_position: u32,
    /// Raw data type token.
    pub data_type: String,
    /// `YES` / `NO` nullability, as `information_schema` spells it.
    pub is_nullable: String,
    /// Column comment, empty when absent.
    pub column_comment: String,
    /// Number of distinct values, when analyzed.
    pub ndv: Option<u64>,
    /// Whether a histogram is available.
    pub has_histogram: bool,
}

/// One row of the `information_schema.tables` view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TablesViewRow {
    /// Table name.
    pub table_name: String,
    /// Table comment, empty when absent.
    pub table_comment: String,
    /// Row count.
    pub table_rows: u64,
    /// Column count.
    pub column_count: u64,
}

impl Database {
    /// Renders `information_schema.tables`. Administrative/no-cost view
    /// used by examples and tests; the detection service goes through
    /// [`crate::Connection::fetch_tables`] instead.
    pub fn tables_view(&self) -> Vec<TablesViewRow> {
        self.tables
            .read()
            .iter()
            .map(|t| TablesViewRow {
                table_name: t.meta.name.clone(),
                table_comment: t.meta.comment.clone().unwrap_or_default(),
                table_rows: t.meta.row_count,
                column_count: t.columns.len() as u64,
            })
            .collect()
    }

    /// Renders `information_schema.columns` for one table.
    pub fn columns_view(&self, tid: TableId) -> Result<Vec<ColumnsViewRow>> {
        self.with_table(tid, |t| {
            t.columns
                .iter()
                .enumerate()
                .map(|(i, c)| ColumnsViewRow {
                    table_name: t.meta.name.clone(),
                    column_name: c.name.clone(),
                    ordinal_position: i as u32 + 1,
                    data_type: c.raw_type.token().to_owned(),
                    is_nullable: if c.nullable { "YES".into() } else { "NO".into() },
                    column_comment: c.comment.clone().unwrap_or_default(),
                    ndv: c.stats.ndv,
                    has_histogram: c.histogram.is_some(),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyProfile;
    use taste_core::{Cell, ColumnId, ColumnMeta, HistogramKind, LabelSet, RawType, Table, TableMeta};

    fn db_with_table() -> (std::sync::Arc<Database>, TableId) {
        let db = Database::new("d", LatencyProfile::zero());
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta {
                id: tid,
                name: "payments".into(),
                comment: Some("payment records".into()),
                row_count: 3,
            },
            columns: vec![
                ColumnMeta {
                    id: ColumnId::new(tid, 0),
                    name: "amount".into(),
                    comment: None,
                    raw_type: RawType::Float,
                    nullable: false,
                    stats: Default::default(),
                    histogram: None,
                },
                ColumnMeta {
                    id: ColumnId::new(tid, 1),
                    name: "card_no".into(),
                    comment: Some("masked".into()),
                    raw_type: RawType::Text,
                    nullable: true,
                    stats: Default::default(),
                    histogram: None,
                },
            ],
            rows: vec![
                vec![Cell::Float(1.5), Cell::Text("4111".into())],
                vec![Cell::Float(2.0), Cell::Null],
                vec![Cell::Float(9.9), Cell::Text("4242".into())],
            ],
            labels: vec![LabelSet::empty(), LabelSet::empty()],
        };
        let tid = db.create_table(&table).unwrap();
        (db, tid)
    }

    #[test]
    fn tables_view_reports_shape() {
        let (db, _) = db_with_table();
        let rows = db.tables_view();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].table_name, "payments");
        assert_eq!(rows[0].table_comment, "payment records");
        assert_eq!(rows[0].table_rows, 3);
        assert_eq!(rows[0].column_count, 2);
    }

    #[test]
    fn columns_view_spells_sql_conventions() {
        let (db, tid) = db_with_table();
        let rows = db.columns_view(tid).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].ordinal_position, 1);
        assert_eq!(rows[0].data_type, "float");
        assert_eq!(rows[0].is_nullable, "NO");
        assert_eq!(rows[1].is_nullable, "YES");
        assert_eq!(rows[1].column_comment, "masked");
        assert_eq!(rows[0].ndv, None, "not analyzed yet");
    }

    #[test]
    fn columns_view_reflects_analyze() {
        let (db, tid) = db_with_table();
        db.analyze_table(tid, Some((HistogramKind::EqualWidth, 4))).unwrap();
        let rows = db.columns_view(tid).unwrap();
        assert_eq!(rows[0].ndv, Some(3));
        assert!(rows[0].has_histogram);
    }

    #[test]
    fn columns_view_unknown_table_errors() {
        let (db, _) = db_with_table();
        assert!(db.columns_view(TableId(5)).is_err());
    }
}
