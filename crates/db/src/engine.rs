//! The in-memory storage engine behind the simulated cloud database.

use crate::faults::{FaultInjector, FaultProfile};
use crate::latency::LatencyProfile;
use crate::ledger::Ledger;
use crate::rowcodec;
use bytes::Bytes;
use parking_lot::RwLock;
use rand::seq::index::sample;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use taste_core::{
    Cell, ColumnMeta, Histogram, HistogramKind, Result, Table, TableId, TableMeta, TasteError,
};

/// How a content scan selects its rows (§6.1.2: "first m rows" is the
/// default; "random sampling of m rows" mitigates uneven distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanMethod {
    /// `SELECT ... LIMIT m` — sequential head scan.
    FirstM {
        /// Number of rows to fetch.
        m: usize,
    },
    /// `SELECT ... ORDER BY RAND(seed) LIMIT m` — seeded random sample.
    SampleM {
        /// Number of rows to fetch.
        m: usize,
        /// RNG seed (the paper fixes MySQL `RAND(0)`).
        seed: u64,
    },
}

impl ScanMethod {
    /// The row budget `m`.
    pub fn m(&self) -> usize {
        match *self {
            ScanMethod::FirstM { m } | ScanMethod::SampleM { m, .. } => m,
        }
    }

    /// Whether this is a sampling scan (slower per row).
    pub fn is_sampled(&self) -> bool {
        matches!(self, ScanMethod::SampleM { .. })
    }
}

pub(crate) struct StoredTable {
    pub(crate) meta: TableMeta,
    pub(crate) columns: Vec<ColumnMeta>,
    pub(crate) rows: Vec<Bytes>,
}

/// A simulated remote user database.
///
/// All access flows through [`crate::Connection`] objects obtained from
/// [`Database::connect`], which charge the [`LatencyProfile`] and record
/// into the [`Ledger`]. Direct (free) access exists only for loading
/// fixtures ([`Database::create_table`]) and administrative `ANALYZE`.
pub struct Database {
    name: String,
    latency: LatencyProfile,
    ledger: Arc<Ledger>,
    faults: FaultInjector,
    pub(crate) tables: RwLock<Vec<StoredTable>>,
}

impl Database {
    /// Creates an empty database with the given latency profile.
    pub fn new(name: impl Into<String>, latency: LatencyProfile) -> Arc<Database> {
        Arc::new(Database {
            name: name.into(),
            latency,
            ledger: Arc::new(Ledger::new()),
            faults: FaultInjector::new(),
            tables: RwLock::new(Vec::new()),
        })
    }

    /// Creates an empty database with fault injection already active.
    pub fn with_faults(
        name: impl Into<String>,
        latency: LatencyProfile,
        profile: FaultProfile,
    ) -> Arc<Database> {
        let db = Database::new(name, latency);
        db.set_fault_profile(profile);
        db
    }

    /// The fault injector (disabled unless a profile was installed).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Installs a fault profile, resetting the injector's fault sequence.
    /// Pass [`FaultProfile::none()`] to disable injection entirely.
    pub fn set_fault_profile(&self, profile: FaultProfile) {
        self.faults.set_profile(profile);
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The latency profile in effect.
    pub fn latency(&self) -> &LatencyProfile {
        &self.latency
    }

    /// The intrusiveness ledger.
    pub fn ledger(&self) -> &Arc<Ledger> {
        &self.ledger
    }

    /// Loads a table (validating it first) and returns its assigned id.
    /// Ground-truth labels on the input are *not* stored — a user
    /// database has no labels; corpora keep them on the side.
    pub fn create_table(&self, table: &Table) -> Result<TableId> {
        table.validate()?;
        let mut tables = self.tables.write();
        let id = TableId(tables.len() as u32);
        let mut meta = table.meta.clone();
        meta.id = id;
        meta.row_count = table.rows.len() as u64;
        let columns: Vec<ColumnMeta> = table
            .columns
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.id.table = id;
                c
            })
            .collect();
        let rows: Vec<Bytes> = table.rows.iter().map(|r| rowcodec::encode_row(r)).collect();
        tables.push(StoredTable { meta, columns, rows });
        Ok(id)
    }

    /// Number of stored tables.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    /// Total number of columns across all tables (the denominator of the
    /// scanned-columns ratio).
    pub fn total_columns(&self) -> u64 {
        self.tables.read().iter().map(|t| t.columns.len() as u64).sum()
    }

    /// All table ids, in creation order.
    pub fn table_ids(&self) -> Vec<TableId> {
        (0..self.tables.read().len() as u32).map(TableId).collect()
    }

    /// Runs `ANALYZE TABLE`, computing column statistics and (optionally)
    /// histograms with `nbuckets` buckets. This is an *administrative*
    /// action the data owner runs; the paper's *with histogram* variant
    /// models users who have done so. No ledger charge.
    pub fn analyze_table(&self, tid: TableId, histogram: Option<(HistogramKind, usize)>) -> Result<()> {
        let mut tables = self.tables.write();
        let table = tables
            .get_mut(tid.0 as usize)
            .ok_or_else(|| TasteError::not_found(format!("table {}", tid.0)))?;
        let width = table.columns.len();
        // Decode all rows once.
        let decoded: Vec<Vec<Cell>> = table
            .rows
            .iter()
            .map(|b| rowcodec::decode_row(b, width))
            .collect::<Result<_>>()?;
        for (ordinal, col) in table.columns.iter_mut().enumerate() {
            let cells: Vec<&Cell> = decoded.iter().map(|r| &r[ordinal]).collect();
            let nrows = cells.len();
            let nulls = cells.iter().filter(|c| c.is_empty()).count();
            let non_null: Vec<&&Cell> = cells.iter().filter(|c| !c.is_empty()).collect();
            let mut distinct: std::collections::HashSet<String> = std::collections::HashSet::new();
            let mut len_sum = 0usize;
            for c in &non_null {
                let rendered = c.render();
                len_sum += rendered.len();
                distinct.insert(rendered);
            }
            let numeric: Vec<f64> = non_null.iter().filter_map(|c| c.as_f64()).collect();
            col.stats.ndv = Some(distinct.len() as u64);
            col.stats.null_frac = if nrows == 0 { None } else { Some(nulls as f64 / nrows as f64) };
            col.stats.min = numeric.iter().cloned().reduce(f64::min);
            col.stats.max = numeric.iter().cloned().reduce(f64::max);
            col.stats.avg_len = if non_null.is_empty() {
                None
            } else {
                Some(len_sum as f64 / non_null.len() as f64)
            };
            if let Some((kind, nbuckets)) = histogram {
                // Numeric columns histogram their values; text columns
                // histogram rendered lengths (a strong type signal).
                let values: Vec<f64> = if numeric.len() == non_null.len() && !numeric.is_empty() {
                    numeric
                } else {
                    non_null.iter().map(|c| c.render().len() as f64).collect()
                };
                col.histogram = match kind {
                    HistogramKind::EqualWidth => Histogram::equal_width(&values, nbuckets),
                    HistogramKind::EqualDepth => Histogram::equal_depth(&values, nbuckets),
                };
            } else {
                col.histogram = None;
            }
        }
        Ok(())
    }

    /// Runs `ANALYZE` on every table.
    pub fn analyze_all(&self, histogram: Option<(HistogramKind, usize)>) -> Result<()> {
        for tid in self.table_ids() {
            self.analyze_table(tid, histogram)?;
        }
        Ok(())
    }

    pub(crate) fn with_table<R>(&self, tid: TableId, f: impl FnOnce(&StoredTable) -> R) -> Result<R> {
        let tables = self.tables.read();
        let table = tables
            .get(tid.0 as usize)
            .ok_or_else(|| TasteError::not_found(format!("table {}", tid.0)))?;
        Ok(f(table))
    }

    /// Internal scan used by [`crate::Connection::scan_columns`]:
    /// projects `ordinals` out of the selected rows, returning row-major
    /// cells plus the byte volume touched.
    pub(crate) fn scan_raw(
        &self,
        tid: TableId,
        ordinals: &[u16],
        method: ScanMethod,
    ) -> Result<(Vec<Vec<Cell>>, usize)> {
        let mut sorted = ordinals.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.with_table(tid, |table| {
            let width = table.columns.len();
            if let Some(&bad) = sorted.iter().find(|&&o| o as usize >= width) {
                return Err(TasteError::Database(format!(
                    "scan ordinal {bad} out of range for table {} (width {width})",
                    table.meta.name
                )));
            }
            let nrows = table.rows.len();
            let row_indices: Vec<usize> = match method {
                ScanMethod::FirstM { m } => (0..nrows.min(m)).collect(),
                ScanMethod::SampleM { m, seed } => {
                    if m >= nrows {
                        (0..nrows).collect()
                    } else {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                        let mut idx = sample(&mut rng, nrows, m).into_vec();
                        idx.sort_unstable();
                        idx
                    }
                }
            };
            let mut out = Vec::with_capacity(row_indices.len());
            let mut bytes_touched = 0usize;
            for &ri in &row_indices {
                let (cells, touched) = rowcodec::decode_projection(&table.rows[ri], width, &sorted)?;
                bytes_touched += touched;
                out.push(cells);
            }
            Ok((out, bytes_touched))
        })?
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taste_core::{Cell, ColumnId, ColumnMeta, LabelSet, RawType, TableMeta};

    pub(crate) fn fixture_table(name: &str, nrows: usize) -> Table {
        let tid = TableId(0);
        let columns = vec![
            ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "id".into(),
                comment: None,
                raw_type: RawType::Integer,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            },
            ColumnMeta {
                id: ColumnId::new(tid, 1),
                name: "city".into(),
                comment: Some("ship-to city".into()),
                raw_type: RawType::Text,
                nullable: true,
                stats: Default::default(),
                histogram: None,
            },
        ];
        let rows: Vec<Vec<Cell>> = (0..nrows)
            .map(|i| {
                vec![
                    Cell::Int(i as i64),
                    if i % 5 == 0 { Cell::Null } else { Cell::Text(format!("city{}", i % 7)) },
                ]
            })
            .collect();
        Table {
            meta: TableMeta { id: tid, name: name.into(), comment: None, row_count: nrows as u64 },
            columns,
            rows,
            labels: vec![LabelSet::empty(), LabelSet::empty()],
        }
    }

    #[test]
    fn create_table_assigns_sequential_ids() {
        let db = Database::new("test", LatencyProfile::zero());
        let t1 = db.create_table(&fixture_table("a", 3)).unwrap();
        let t2 = db.create_table(&fixture_table("b", 3)).unwrap();
        assert_eq!(t1, TableId(0));
        assert_eq!(t2, TableId(1));
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.total_columns(), 4);
        assert_eq!(db.table_ids(), vec![TableId(0), TableId(1)]);
    }

    #[test]
    fn create_table_rejects_invalid() {
        let db = Database::new("test", LatencyProfile::zero());
        let mut bad = fixture_table("bad", 2);
        bad.rows[0].pop();
        assert!(db.create_table(&bad).is_err());
    }

    #[test]
    fn scan_first_m_returns_head_rows() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 10)).unwrap();
        let (rows, bytes) = db.scan_raw(tid, &[0], ScanMethod::FirstM { m: 3 }).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Cell::Int(0)]);
        assert_eq!(rows[2], vec![Cell::Int(2)]);
        assert!(bytes > 0);
    }

    #[test]
    fn scan_sample_is_deterministic_per_seed() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 100)).unwrap();
        let (a, _) = db.scan_raw(tid, &[0], ScanMethod::SampleM { m: 10, seed: 0 }).unwrap();
        let (b, _) = db.scan_raw(tid, &[0], ScanMethod::SampleM { m: 10, seed: 0 }).unwrap();
        let (c, _) = db.scan_raw(tid, &[0], ScanMethod::SampleM { m: 10, seed: 1 }).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn scan_sample_with_m_over_nrows_returns_all() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 5)).unwrap();
        let (rows, _) = db.scan_raw(tid, &[0, 1], ScanMethod::SampleM { m: 50, seed: 0 }).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn scan_rejects_bad_ordinal_and_table() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 5)).unwrap();
        assert!(db.scan_raw(tid, &[9], ScanMethod::FirstM { m: 1 }).is_err());
        assert!(db.scan_raw(TableId(42), &[0], ScanMethod::FirstM { m: 1 }).is_err());
    }

    #[test]
    fn scan_dedups_and_sorts_ordinals() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 3)).unwrap();
        let (rows, _) = db.scan_raw(tid, &[1, 0, 1], ScanMethod::FirstM { m: 1 }).unwrap();
        assert_eq!(rows[0].len(), 2);
        assert_eq!(rows[0][0], Cell::Int(0));
    }

    #[test]
    fn analyze_populates_stats() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 20)).unwrap();
        db.analyze_table(tid, None).unwrap();
        db.with_table(tid, |t| {
            let id_col = &t.columns[0];
            assert_eq!(id_col.stats.ndv, Some(20));
            assert_eq!(id_col.stats.null_frac, Some(0.0));
            assert_eq!(id_col.stats.min, Some(0.0));
            assert_eq!(id_col.stats.max, Some(19.0));
            let city = &t.columns[1];
            assert_eq!(city.stats.ndv, Some(7));
            assert!(city.stats.null_frac.unwrap() > 0.0);
            assert!(city.histogram.is_none());
        })
        .unwrap();
    }

    #[test]
    fn analyze_builds_requested_histograms() {
        let db = Database::new("test", LatencyProfile::zero());
        let tid = db.create_table(&fixture_table("t", 50)).unwrap();
        db.analyze_table(tid, Some((HistogramKind::EqualDepth, 8))).unwrap();
        db.with_table(tid, |t| {
            let h = t.columns[0].histogram.as_ref().unwrap();
            assert_eq!(h.kind, HistogramKind::EqualDepth);
            assert_eq!(h.total, 50);
            // Text column histograms over rendered length.
            let h2 = t.columns[1].histogram.as_ref().unwrap();
            assert_eq!(h2.total, 40); // 10 nulls skipped
        })
        .unwrap();
        // Re-analyzing without histograms clears them.
        db.analyze_table(tid, None).unwrap();
        db.with_table(tid, |t| assert!(t.columns[0].histogram.is_none())).unwrap();
    }

    #[test]
    fn scan_method_accessors() {
        assert_eq!(ScanMethod::FirstM { m: 7 }.m(), 7);
        assert_eq!(ScanMethod::SampleM { m: 3, seed: 0 }.m(), 3);
        assert!(!ScanMethod::FirstM { m: 1 }.is_sampled());
        assert!(ScanMethod::SampleM { m: 1, seed: 0 }.is_sampled());
    }
}
