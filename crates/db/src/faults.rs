//! Deterministic fault injection for the simulated cloud database.
//!
//! TASTE's deployment target is a remote RDS reached over a VPC, where
//! connects drop, queries time out, and the service gets throttled. The
//! [`FaultProfile`] makes the simulation reproduce those failure modes
//! *deterministically*: every injected fault is a pure function of the
//! profile seed, the operation kind, the target table, and a per-key
//! attempt counter, so an experiment replays bit-for-bit and a retry of
//! the same logical operation sees an independent (but reproducible)
//! roll.
//!
//! Fault decisions use a single uniform roll compared against cumulative
//! rate thresholds, so raising a rate fails a strict *superset* of the
//! operations that failed at a lower rate — this is what makes the
//! fault-sweep benchmark monotone by construction.
//!
//! With [`FaultProfile::none()`] the injector is a strict no-op: a single
//! relaxed atomic load per operation, no counters, no sleeps.

use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;
use taste_core::rng::splitmix64;
use taste_core::TableId;

/// A periodic throttling window: of every `every` consecutive operations,
/// the last `window` are rejected with a throttled (transient) error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Throttle {
    /// Cycle length in operations (must be > 0 to have any effect).
    pub every: u64,
    /// Number of throttled operations at the end of each cycle.
    pub window: u64,
}

/// Seeded fault-injection rates for one database.
///
/// All rates are probabilities in `[0, 1]`. Scan faults can be restricted
/// to a single table with [`scan_target`](FaultProfile::scan_target),
/// which the integration tests use to degrade one table deterministically
/// while the rest of the batch proceeds cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Root seed for every fault roll.
    pub seed: u64,
    /// Probability that a connect attempt fails transiently.
    pub connect_fail: f64,
    /// Probability that a metadata query fails transiently.
    pub meta_transient: f64,
    /// Probability that a metadata query times out.
    pub meta_timeout: f64,
    /// Probability that a content scan fails transiently.
    pub scan_transient: f64,
    /// Probability that a content scan times out.
    pub scan_timeout: f64,
    /// Probability that a content scan drops (and poisons) the connection.
    pub scan_drop: f64,
    /// Simulated deadline paid (as wall-clock sleep) by timed-out queries.
    pub deadline: Duration,
    /// Optional periodic throttling window over metadata + scan operations.
    pub throttle: Option<Throttle>,
    /// When set, scan faults apply only to this table.
    pub scan_target: Option<TableId>,
}

impl FaultProfile {
    /// The disabled profile: every operation proceeds, nothing is rolled.
    pub fn none() -> FaultProfile {
        FaultProfile {
            seed: 0,
            connect_fail: 0.0,
            meta_transient: 0.0,
            meta_timeout: 0.0,
            scan_transient: 0.0,
            scan_timeout: 0.0,
            scan_drop: 0.0,
            deadline: Duration::from_millis(50),
            throttle: None,
            scan_target: None,
        }
    }

    /// A flaky-network profile: content scans fail transiently at `rate`
    /// and drop the connection at a quarter of `rate`. Metadata queries
    /// and connects stay clean, mirroring the common cloud failure mode
    /// where cheap catalog queries survive but bulk reads get reset.
    pub fn flaky(seed: u64, rate: f64) -> FaultProfile {
        FaultProfile {
            seed,
            scan_transient: rate,
            scan_drop: rate * 0.25,
            ..FaultProfile::none()
        }
    }

    /// Whether this profile injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.connect_fail == 0.0
            && self.meta_transient == 0.0
            && self.meta_timeout == 0.0
            && self.scan_transient == 0.0
            && self.scan_timeout == 0.0
            && self.scan_drop == 0.0
            && self.throttle.is_none()
    }
}

/// Outcome of a fault roll for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// No fault — execute the operation normally.
    Proceed,
    /// Fail with a retryable transient error.
    Transient,
    /// Fail with a timeout after sleeping the profile deadline.
    Timeout,
    /// Fail and poison the connection (reconnect required).
    Drop,
    /// Rejected by a throttling window (retryable transient).
    Throttled,
}

/// Operation kinds, used as the first component of the roll key.
const KIND_CONNECT: u8 = 0;
const KIND_METADATA: u8 = 1;
const KIND_SCAN: u8 = 2;

/// Key used for catalog-wide metadata queries (`fetch_tables`), which
/// have no single target table.
const CATALOG_KEY: u32 = u32::MAX;

/// Per-database fault state: the active profile plus the attempt counters
/// that make repeated operations roll independently but reproducibly.
#[derive(Debug)]
pub struct FaultInjector {
    /// Fast-path gate; false whenever the profile is `none()`.
    enabled: AtomicBool,
    profile: Mutex<FaultProfile>,
    /// Global operation counter driving throttle windows.
    ops: AtomicU64,
    /// Connect attempts against this database.
    connects: AtomicU64,
    /// Per-(kind, table) attempt counters.
    attempts: Mutex<FxHashMap<(u8, u32), u64>>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

impl FaultInjector {
    /// A disabled injector (profile `none()`).
    pub fn new() -> FaultInjector {
        FaultInjector {
            enabled: AtomicBool::new(false),
            profile: Mutex::new(FaultProfile::none()),
            ops: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            attempts: Mutex::new(FxHashMap::default()),
        }
    }

    /// Installs a new profile and resets every attempt counter, so the
    /// fault sequence replays identically each time the profile is set.
    pub fn set_profile(&self, profile: FaultProfile) {
        let mut p = self.profile.lock();
        *p = profile;
        self.ops.store(0, Ordering::Relaxed);
        self.connects.store(0, Ordering::Relaxed);
        self.attempts.lock().clear();
        self.enabled.store(!profile.is_none(), Ordering::Release);
    }

    /// The active profile.
    pub fn profile(&self) -> FaultProfile {
        *self.profile.lock()
    }

    /// Whether any fault injection is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Rolls a connect attempt.
    pub fn on_connect(&self) -> FaultDecision {
        if !self.is_enabled() {
            return FaultDecision::Proceed;
        }
        let p = self.profile();
        let attempt = self.connects.fetch_add(1, Ordering::Relaxed);
        let u = roll(p.seed, KIND_CONNECT, CATALOG_KEY, attempt);
        if u < p.connect_fail {
            FaultDecision::Transient
        } else {
            FaultDecision::Proceed
        }
    }

    /// Rolls a metadata query (`None` target = whole-catalog query).
    pub fn on_metadata(&self, tid: Option<TableId>) -> FaultDecision {
        if !self.is_enabled() {
            return FaultDecision::Proceed;
        }
        let p = self.profile();
        if self.throttled(&p) {
            return FaultDecision::Throttled;
        }
        let key = tid.map_or(CATALOG_KEY, |t| t.0);
        let attempt = self.next_attempt(KIND_METADATA, key);
        let u = roll(p.seed, KIND_METADATA, key, attempt);
        if u < p.meta_timeout {
            FaultDecision::Timeout
        } else if u < p.meta_timeout + p.meta_transient {
            FaultDecision::Transient
        } else {
            FaultDecision::Proceed
        }
    }

    /// Rolls a content scan of `tid`.
    pub fn on_scan(&self, tid: TableId) -> FaultDecision {
        if !self.is_enabled() {
            return FaultDecision::Proceed;
        }
        let p = self.profile();
        if self.throttled(&p) {
            return FaultDecision::Throttled;
        }
        if let Some(target) = p.scan_target {
            if target != tid {
                return FaultDecision::Proceed;
            }
        }
        let attempt = self.next_attempt(KIND_SCAN, tid.0);
        let u = roll(p.seed, KIND_SCAN, tid.0, attempt);
        if u < p.scan_drop {
            FaultDecision::Drop
        } else if u < p.scan_drop + p.scan_timeout {
            FaultDecision::Timeout
        } else if u < p.scan_drop + p.scan_timeout + p.scan_transient {
            FaultDecision::Transient
        } else {
            FaultDecision::Proceed
        }
    }

    fn throttled(&self, p: &FaultProfile) -> bool {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        match p.throttle {
            Some(t) if t.every > 0 => n % t.every >= t.every.saturating_sub(t.window),
            _ => false,
        }
    }

    fn next_attempt(&self, kind: u8, key: u32) -> u64 {
        let mut map = self.attempts.lock();
        let c = map.entry((kind, key)).or_insert(0);
        let attempt = *c;
        *c += 1;
        attempt
    }
}

/// Uniform roll in `[0, 1)` from (seed, kind, key, attempt) via SplitMix64.
fn roll(seed: u64, kind: u8, key: u32, attempt: u64) -> f64 {
    let mixed = splitmix64(
        seed ^ splitmix64(((kind as u64) << 32) | key as u64) ^ splitmix64(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    // Top 53 bits → an exactly representable double in [0, 1).
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: FaultProfile) -> FaultInjector {
        let inj = FaultInjector::new();
        inj.set_profile(p);
        inj
    }

    #[test]
    fn none_profile_always_proceeds() {
        let inj = injector(FaultProfile::none());
        assert!(!inj.is_enabled());
        for _ in 0..100 {
            assert_eq!(inj.on_connect(), FaultDecision::Proceed);
            assert_eq!(inj.on_metadata(Some(TableId(3))), FaultDecision::Proceed);
            assert_eq!(inj.on_scan(TableId(3)), FaultDecision::Proceed);
        }
    }

    #[test]
    fn decisions_replay_after_profile_reset() {
        let p = FaultProfile::flaky(42, 0.5);
        let inj = injector(p);
        let first: Vec<_> = (0..64).map(|_| inj.on_scan(TableId(1))).collect();
        inj.set_profile(p);
        let second: Vec<_> = (0..64).map(|_| inj.on_scan(TableId(1))).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|d| *d != FaultDecision::Proceed));
        assert!(first.contains(&FaultDecision::Proceed));
    }

    #[test]
    fn higher_rate_fails_a_superset() {
        let lo = injector(FaultProfile::flaky(7, 0.1));
        let hi = injector(FaultProfile::flaky(7, 0.6));
        for _ in 0..256 {
            let a = lo.on_scan(TableId(0));
            let b = hi.on_scan(TableId(0));
            if a != FaultDecision::Proceed {
                assert_ne!(b, FaultDecision::Proceed, "fault at 0.1 must also fault at 0.6");
            }
        }
    }

    #[test]
    fn scan_target_restricts_faults() {
        let p = FaultProfile {
            scan_transient: 1.0,
            scan_target: Some(TableId(5)),
            ..FaultProfile::none()
        };
        let inj = injector(p);
        assert_eq!(inj.on_scan(TableId(4)), FaultDecision::Proceed);
        assert_eq!(inj.on_scan(TableId(5)), FaultDecision::Transient);
    }

    #[test]
    fn throttle_window_rejects_tail_of_each_cycle() {
        let p = FaultProfile {
            throttle: Some(Throttle { every: 4, window: 2 }),
            ..FaultProfile::none()
        };
        // A pure-throttle profile is still "some" faults.
        assert!(!p.is_none());
        let inj = injector(p);
        let decisions: Vec<_> = (0..8).map(|_| inj.on_scan(TableId(0))).collect();
        use FaultDecision::{Proceed, Throttled};
        assert_eq!(decisions, vec![Proceed, Proceed, Throttled, Throttled, Proceed, Proceed, Throttled, Throttled]);
    }

    #[test]
    fn tables_roll_independently() {
        // With a mid rate, two tables should not share their exact fault
        // pattern (they mix different keys into the roll).
        let inj = injector(FaultProfile::flaky(3, 0.5));
        let a: Vec<_> = (0..64).map(|_| inj.on_scan(TableId(0))).collect();
        let b: Vec<_> = (0..64).map(|_| inj.on_scan(TableId(1))).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn flaky_profile_shape() {
        let p = FaultProfile::flaky(9, 0.2);
        assert_eq!(p.seed, 9);
        assert!((p.scan_transient - 0.2).abs() < 1e-12);
        assert!((p.scan_drop - 0.05).abs() < 1e-12);
        assert_eq!(p.connect_fail, 0.0);
        assert!(!p.is_none());
        assert!(FaultProfile::none().is_none());
    }

    #[test]
    fn rolls_are_uniform_in_unit_interval() {
        for attempt in 0..1000 {
            let u = roll(123, KIND_SCAN, 7, attempt);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
