//! The latency model of the simulated cloud database.
//!
//! The paper's testbed separates the detection service (ECS) from the user
//! database (RDS MySQL) across a VPC with ~5 ms average network delay;
//! end-to-end execution time therefore includes connection management,
//! metadata queries, and content scans. This module makes those costs an
//! explicit, configurable profile realized as *real* `thread::sleep`s:
//! the pipelined scheduler then genuinely overlaps database waits with
//! model inference, and wall-clock measurements have the same structure
//! as the paper's.
//!
//! Profiles are scaled down (default ~1/10 of the paper's cloud numbers)
//! so the full experiment suite completes in minutes; the *ratios* between
//! metadata and content costs — which drive every execution-time result —
//! follow the MySQL cost structure.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Cost profile for database operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyProfile {
    /// Cost of establishing a connection (TCP + auth handshake).
    pub connect: Duration,
    /// Round-trip added to every query.
    pub query_rtt: Duration,
    /// Per-column cost of a metadata (information_schema) query.
    pub meta_per_column: Duration,
    /// Per-row cost of a sequential content scan.
    pub scan_per_row: Duration,
    /// Per-KiB transfer cost of scanned cell bytes.
    pub transfer_per_kib: Duration,
    /// Multiplier (in percent) applied to per-row cost for random
    /// sampling scans — `ORDER BY RAND()` style access is slower than a
    /// sequential head scan (§6.3 observes exactly this).
    pub sample_overhead_pct: u32,
}

impl LatencyProfile {
    /// Everything free — for unit tests and pure-accuracy experiments.
    pub fn zero() -> LatencyProfile {
        LatencyProfile {
            connect: Duration::ZERO,
            query_rtt: Duration::ZERO,
            meta_per_column: Duration::ZERO,
            scan_per_row: Duration::ZERO,
            transfer_per_kib: Duration::ZERO,
            sample_overhead_pct: 25,
        }
    }

    /// The default cloud profile, modeled on the paper's testbed (5 ms
    /// VPC RTT between the detection ECS and the RDS MySQL instance,
    /// managed-MySQL connection handshakes, per-row fetch and transfer
    /// costs). Values are scaled to keep full experiment suites fast
    /// while preserving the metadata-vs-scan cost ratio that drives the
    /// end-to-end-time results.
    pub fn cloud() -> LatencyProfile {
        LatencyProfile {
            connect: Duration::from_micros(8_000),
            query_rtt: Duration::from_micros(2_000),
            meta_per_column: Duration::from_micros(60),
            scan_per_row: Duration::from_micros(150),
            transfer_per_kib: Duration::from_micros(150),
            sample_overhead_pct: 25,
        }
    }

    /// Cost of a metadata query covering `ncols` columns.
    pub fn metadata_query(&self, ncols: usize) -> Duration {
        self.query_rtt + self.meta_per_column * ncols as u32
    }

    /// Cost of a content scan touching `rows` rows and `bytes` cell bytes.
    pub fn scan(&self, rows: usize, bytes: usize, sampled: bool) -> Duration {
        let mut per_row = self.scan_per_row * rows as u32;
        if sampled {
            per_row = per_row * (100 + self.sample_overhead_pct) / 100;
        }
        let transfer = self.transfer_per_kib * bytes.div_ceil(1024) as u32;
        self.query_rtt + per_row + transfer
    }

    /// Sleeps for `d` (no-op for zero durations).
    pub fn pay(d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_profile_costs_nothing() {
        let p = LatencyProfile::zero();
        assert_eq!(p.metadata_query(100), Duration::ZERO);
        assert_eq!(p.scan(1000, 1 << 20, true), Duration::ZERO);
    }

    #[test]
    fn metadata_cost_scales_with_columns() {
        let p = LatencyProfile::cloud();
        let small = p.metadata_query(1);
        let big = p.metadata_query(100);
        assert!(big > small);
        assert_eq!(big - p.query_rtt, p.meta_per_column * 100);
    }

    #[test]
    fn scan_cost_scales_with_rows_and_bytes() {
        let p = LatencyProfile::cloud();
        let base = p.scan(10, 0, false);
        assert!(p.scan(100, 0, false) > base);
        assert!(p.scan(10, 10 * 1024, false) > base);
    }

    #[test]
    fn sampling_is_more_expensive_than_sequential() {
        let p = LatencyProfile::cloud();
        assert!(p.scan(100, 0, true) > p.scan(100, 0, false));
    }

    #[test]
    fn metadata_is_much_cheaper_than_content_scan() {
        // The core premise of the paper's Phase 1: for a realistic table,
        // fetching metadata costs far less than scanning content.
        let p = LatencyProfile::cloud();
        let meta = p.metadata_query(20);
        let scan = p.scan(50, 20 * 50 * 16, false);
        assert!(scan > meta * 3, "scan {scan:?} vs meta {meta:?}");
    }

    #[test]
    fn pay_zero_returns_immediately() {
        let t0 = std::time::Instant::now();
        LatencyProfile::pay(Duration::ZERO);
        assert!(t0.elapsed() < Duration::from_millis(5));
    }
}
