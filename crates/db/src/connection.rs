//! Database connections — the only sanctioned access path for the
//! detection service.
//!
//! Opening a connection pays the handshake cost; every query pays its
//! modeled latency and records into the ledger. The paper recommends
//! batching tables of one database so the (costly) connection can be
//! reused — the framework's scheduler does exactly that with one
//! connection per preparation worker.
//!
//! When a [`crate::FaultProfile`] is active, every operation first rolls
//! the database's [`crate::faults::FaultInjector`]. Injected failures
//! surface as retryable [`TasteError::Transient`] / [`TasteError::Timeout`]
//! errors; a dropped connection is *poisoned* and rejects every further
//! query until [`Connection::reconnect`] succeeds.

use crate::engine::{Database, ScanMethod};
use crate::faults::FaultDecision;
use crate::latency::LatencyProfile;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use taste_core::{Cell, ColumnMeta, Result, TableId, TableMeta, TasteError};

/// An open connection to a [`Database`].
pub struct Connection {
    db: Arc<Database>,
    /// Set when an injected fault dropped the connection mid-query.
    poisoned: AtomicBool,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("poisoned", &self.is_poisoned())
            .finish_non_exhaustive()
    }
}

impl Database {
    /// Opens a connection, paying the connect cost.
    ///
    /// Infallible without fault injection; under an active profile with
    /// `connect_fail > 0` this panics on an injected failure — callers
    /// that expect faults should use [`Database::try_connect`].
    pub fn connect(self: &Arc<Self>) -> Connection {
        self.try_connect()
            .expect("connect failed under fault injection; use try_connect")
    }

    /// Opens a connection, paying the connect cost; an injected connect
    /// fault still pays the (wasted) handshake latency and returns a
    /// retryable [`TasteError::Transient`].
    pub fn try_connect(self: &Arc<Self>) -> Result<Connection> {
        let decision = self.faults().on_connect();
        LatencyProfile::pay(self.latency().connect);
        if decision != FaultDecision::Proceed {
            self.ledger().record_failed_query();
            return Err(TasteError::transient(format!(
                "connect to {}: handshake reset",
                self.name()
            )));
        }
        self.ledger().record_connection();
        Ok(Connection { db: Arc::clone(self), poisoned: AtomicBool::new(false) })
    }
}

impl Connection {
    /// The database this connection talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Whether an injected fault dropped this connection. A poisoned
    /// connection rejects every query until [`Connection::reconnect`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Re-establishes a dropped connection in place, paying the connect
    /// cost again. Subject to the same injected connect faults as
    /// [`Database::try_connect`]. A no-op on a healthy connection.
    pub fn reconnect(&self) -> Result<()> {
        if !self.is_poisoned() {
            return Ok(());
        }
        let decision = self.db.faults().on_connect();
        LatencyProfile::pay(self.db.latency().connect);
        if decision != FaultDecision::Proceed {
            self.db.ledger().record_failed_query();
            return Err(TasteError::transient(format!(
                "reconnect to {}: handshake reset",
                self.db.name()
            )));
        }
        self.db.ledger().record_connection();
        self.db.ledger().record_reconnect();
        self.poisoned.store(false, Ordering::Release);
        Ok(())
    }

    /// Rejects queries on a poisoned connection.
    fn guard(&self) -> Result<()> {
        if self.is_poisoned() {
            Err(TasteError::transient(format!(
                "connection to {} is dropped; reconnect required",
                self.db.name()
            )))
        } else {
            Ok(())
        }
    }

    /// Realizes an injected fault on a query: pays the appropriate
    /// latency, records it in the ledger, and produces the error.
    /// `Proceed` is a no-op `Ok(())`.
    fn inject(&self, decision: FaultDecision, what: &str) -> Result<()> {
        match decision {
            FaultDecision::Proceed => Ok(()),
            FaultDecision::Transient => {
                LatencyProfile::pay(self.db.latency().query_rtt);
                self.db.ledger().record_failed_query();
                Err(TasteError::transient(format!("{what}: connection reset by peer")))
            }
            FaultDecision::Timeout => {
                LatencyProfile::pay(self.db.faults().profile().deadline);
                self.db.ledger().record_injected_timeout();
                Err(TasteError::timeout(format!("{what}: deadline exceeded")))
            }
            FaultDecision::Throttled => {
                LatencyProfile::pay(self.db.latency().query_rtt);
                self.db.ledger().record_throttled_query();
                Err(TasteError::transient(format!("{what}: throttled by provider")))
            }
            FaultDecision::Drop => {
                self.poisoned.store(true, Ordering::Release);
                LatencyProfile::pay(self.db.latency().query_rtt);
                self.db.ledger().record_dropped_connection();
                Err(TasteError::transient(format!("{what}: connection dropped")))
            }
        }
    }

    /// `SELECT * FROM information_schema.tables` — all table metadata.
    pub fn fetch_tables(&self) -> Result<Vec<TableMeta>> {
        self.guard()?;
        self.inject(self.db.faults().on_metadata(None), "fetch_tables")?;
        let lat = self.db.latency();
        let tables = self.db.tables.read();
        LatencyProfile::pay(lat.metadata_query(tables.len()));
        self.db.ledger().record_metadata_query();
        Ok(tables.iter().map(|t| t.meta.clone()).collect())
    }

    /// Table-level metadata for one table.
    pub fn fetch_table_meta(&self, tid: TableId) -> Result<TableMeta> {
        self.guard()?;
        self.inject(self.db.faults().on_metadata(Some(tid)), "fetch_table_meta")?;
        let lat = self.db.latency();
        LatencyProfile::pay(lat.metadata_query(1));
        self.db.ledger().record_metadata_query();
        self.db.with_table(tid, |t| t.meta.clone())
    }

    /// `SELECT * FROM information_schema.columns WHERE table_id = ?` —
    /// the Phase 1 data-preparation query. Cost scales with the table's
    /// column count; columns carrying histograms cost 3× their metadata
    /// rate (histogram JSON is bulky — this is what makes the paper's
    /// *with histogram* variant slightly slower end-to-end, §6.3).
    pub fn fetch_columns_meta(&self, tid: TableId) -> Result<Vec<ColumnMeta>> {
        self.guard()?;
        let (ncols, hist_cols) = self
            .db
            .with_table(tid, |t| {
                (t.columns.len(), t.columns.iter().filter(|c| c.histogram.is_some()).count())
            })?;
        self.inject(self.db.faults().on_metadata(Some(tid)), "fetch_columns_meta")?;
        let lat = self.db.latency();
        LatencyProfile::pay(lat.metadata_query(ncols) + lat.meta_per_column * (2 * hist_cols) as u32);
        self.db.ledger().record_metadata_query();
        self.db.with_table(tid, |t| t.columns.clone())
    }

    /// Content scan of the selected columns — the Phase 2 data-preparation
    /// query. Returns row-major projected cells (in ascending-ordinal
    /// order). Pays per-row and per-byte costs and records the scan as
    /// `ordinals.len()` column scans in the ledger.
    ///
    /// Injected scan faults fire *after* the engine has located the rows
    /// (logical errors like an unknown table stay non-retryable and
    /// deterministic), so the ledger can attribute the wasted bytes: a
    /// timed-out scan wastes the full transfer, a dropped connection
    /// roughly half of it.
    pub fn scan_columns(
        &self,
        tid: TableId,
        ordinals: &[u16],
        method: ScanMethod,
    ) -> Result<Vec<Vec<Cell>>> {
        if ordinals.is_empty() {
            return Ok(Vec::new());
        }
        self.guard()?;
        let (rows, bytes) = self.db.scan_raw(tid, ordinals, method)?;
        let decision = self.db.faults().on_scan(tid);
        match decision {
            FaultDecision::Timeout => self.db.ledger().record_wasted_bytes(bytes as u64),
            FaultDecision::Drop => self.db.ledger().record_wasted_bytes(bytes as u64 / 2),
            _ => {}
        }
        self.inject(decision, "scan_columns")?;
        LatencyProfile::pay(self.db.latency().scan(rows.len(), bytes, method.is_sampled()));
        self.db
            .ledger()
            .record_scan(ordinals.len() as u64, rows.len() as u64, bytes as u64);
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultProfile;
    use std::time::Duration;
    use taste_core::{ColumnId, LabelSet, RawType, Table};

    fn mk_db(latency: LatencyProfile) -> (Arc<Database>, TableId) {
        let db = Database::new("udb", latency);
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "users".into(), comment: None, row_count: 4 },
            columns: vec![ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "email".into(),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            }],
            rows: (0..4).map(|i| vec![Cell::Text(format!("u{i}@example.com"))]).collect(),
            labels: vec![LabelSet::empty()],
        };
        let tid = db.create_table(&table).unwrap();
        (db, tid)
    }

    #[test]
    fn connection_and_queries_hit_the_ledger() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        let tables = conn.fetch_tables().unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "users");
        let cols = conn.fetch_columns_meta(tid).unwrap();
        assert_eq!(cols.len(), 1);
        let rows = conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 2 }).unwrap();
        assert_eq!(rows.len(), 2);

        let s = db.ledger().snapshot();
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.metadata_queries, 2);
        assert_eq!(s.scan_queries, 1);
        assert_eq!(s.columns_scanned, 1);
        assert_eq!(s.rows_read, 2);
        assert!(s.bytes_read > 0);
        assert_eq!(s.failed_queries, 0);
    }

    #[test]
    fn empty_scan_is_free() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        let rows = conn.scan_columns(tid, &[], ScanMethod::FirstM { m: 10 }).unwrap();
        assert!(rows.is_empty());
        assert_eq!(db.ledger().snapshot().scan_queries, 0);
    }

    #[test]
    fn latency_is_actually_paid() {
        let profile = LatencyProfile {
            connect: Duration::from_millis(20),
            ..LatencyProfile::zero()
        };
        let (db, _) = mk_db(profile);
        let t0 = std::time::Instant::now();
        let _conn = db.connect();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fetch_table_meta_for_missing_table_errors() {
        let (db, _) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        assert!(conn.fetch_table_meta(TableId(9)).is_err());
    }

    #[test]
    fn scan_latency_scales_with_rows() {
        let profile = LatencyProfile {
            scan_per_row: Duration::from_millis(2),
            ..LatencyProfile::zero()
        };
        let (db, tid) = mk_db(profile);
        let conn = db.connect();
        let t0 = std::time::Instant::now();
        conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 4 }).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(8));
    }

    #[test]
    fn certain_scan_fault_is_transient_and_recorded() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile {
            scan_transient: 1.0,
            ..FaultProfile::none()
        });
        let conn = db.connect();
        let err = conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 2 }).unwrap_err();
        assert!(err.is_retryable(), "injected scan fault must be retryable: {err}");
        let s = db.ledger().snapshot();
        assert_eq!(s.failed_queries, 1);
        assert_eq!(s.scan_queries, 0, "failed scan must not count as a completed scan");
    }

    #[test]
    fn certain_timeout_pays_deadline_and_wastes_bytes() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile {
            scan_timeout: 1.0,
            deadline: Duration::from_millis(15),
            ..FaultProfile::none()
        });
        let conn = db.connect();
        let t0 = std::time::Instant::now();
        let err = conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 4 }).unwrap_err();
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(matches!(err, TasteError::Timeout(_)));
        let s = db.ledger().snapshot();
        assert_eq!(s.injected_timeouts, 1);
        assert!(s.wasted_bytes > 0);
    }

    #[test]
    fn dropped_connection_poisons_until_reconnect() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile {
            scan_drop: 1.0,
            ..FaultProfile::none()
        });
        let conn = db.connect();
        assert!(!conn.is_poisoned());
        let err = conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 2 }).unwrap_err();
        assert!(err.is_retryable());
        assert!(conn.is_poisoned());
        // Every query now fails without touching the engine.
        assert!(conn.fetch_tables().is_err());
        assert!(conn.fetch_columns_meta(tid).is_err());
        // Reconnect restores service (connect_fail is 0 here).
        conn.reconnect().unwrap();
        assert!(!conn.is_poisoned());
        assert!(conn.fetch_tables().is_ok());
        let s = db.ledger().snapshot();
        assert_eq!(s.dropped_connections, 1);
        assert_eq!(s.reconnects, 1);
        assert_eq!(s.connections_opened, 2);
    }

    #[test]
    fn certain_connect_fault_fails_try_connect() {
        let (db, _) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile {
            connect_fail: 1.0,
            ..FaultProfile::none()
        });
        let err = db.try_connect().unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(db.ledger().snapshot().connections_opened, 0);
    }

    #[test]
    fn logical_errors_beat_fault_injection() {
        // An unknown table is a deterministic NotFound even at 100% fault
        // rate — retrying it would never help.
        let (db, _) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile {
            scan_transient: 1.0,
            ..FaultProfile::none()
        });
        let conn = db.connect();
        let err = conn.scan_columns(TableId(42), &[0], ScanMethod::FirstM { m: 1 }).unwrap_err();
        assert!(!err.is_retryable());
    }

    #[test]
    fn disabled_profile_changes_nothing() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        db.set_fault_profile(FaultProfile::none());
        let conn = db.connect();
        for _ in 0..20 {
            conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 2 }).unwrap();
        }
        let s = db.ledger().snapshot();
        assert_eq!(s.failed_queries, 0);
        assert_eq!(s.scan_queries, 20);
    }
}
