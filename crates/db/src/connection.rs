//! Database connections — the only sanctioned access path for the
//! detection service.
//!
//! Opening a connection pays the handshake cost; every query pays its
//! modeled latency and records into the ledger. The paper recommends
//! batching tables of one database so the (costly) connection can be
//! reused — the framework's scheduler does exactly that with one
//! connection per preparation worker.

use crate::engine::{Database, ScanMethod};
use crate::latency::LatencyProfile;
use std::sync::Arc;
use taste_core::{Cell, ColumnMeta, Result, TableId, TableMeta};

/// An open connection to a [`Database`].
pub struct Connection {
    db: Arc<Database>,
}

impl Database {
    /// Opens a connection, paying the connect cost.
    pub fn connect(self: &Arc<Self>) -> Connection {
        LatencyProfile::pay(self.latency().connect);
        self.ledger().record_connection();
        Connection { db: Arc::clone(self) }
    }
}

impl Connection {
    /// The database this connection talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// `SELECT * FROM information_schema.tables` — all table metadata.
    pub fn fetch_tables(&self) -> Vec<TableMeta> {
        let lat = self.db.latency();
        let tables = self.db.tables.read();
        LatencyProfile::pay(lat.metadata_query(tables.len()));
        self.db.ledger().record_metadata_query();
        tables.iter().map(|t| t.meta.clone()).collect()
    }

    /// Table-level metadata for one table.
    pub fn fetch_table_meta(&self, tid: TableId) -> Result<TableMeta> {
        let lat = self.db.latency();
        LatencyProfile::pay(lat.metadata_query(1));
        self.db.ledger().record_metadata_query();
        self.db.with_table(tid, |t| t.meta.clone())
    }

    /// `SELECT * FROM information_schema.columns WHERE table_id = ?` —
    /// the Phase 1 data-preparation query. Cost scales with the table's
    /// column count; columns carrying histograms cost 3× their metadata
    /// rate (histogram JSON is bulky — this is what makes the paper's
    /// *with histogram* variant slightly slower end-to-end, §6.3).
    pub fn fetch_columns_meta(&self, tid: TableId) -> Result<Vec<ColumnMeta>> {
        let (ncols, hist_cols) = self
            .db
            .with_table(tid, |t| {
                (t.columns.len(), t.columns.iter().filter(|c| c.histogram.is_some()).count())
            })?;
        let lat = self.db.latency();
        LatencyProfile::pay(lat.metadata_query(ncols) + lat.meta_per_column * (2 * hist_cols) as u32);
        self.db.ledger().record_metadata_query();
        self.db.with_table(tid, |t| t.columns.clone())
    }

    /// Content scan of the selected columns — the Phase 2 data-preparation
    /// query. Returns row-major projected cells (in ascending-ordinal
    /// order). Pays per-row and per-byte costs and records the scan as
    /// `ordinals.len()` column scans in the ledger.
    pub fn scan_columns(
        &self,
        tid: TableId,
        ordinals: &[u16],
        method: ScanMethod,
    ) -> Result<Vec<Vec<Cell>>> {
        if ordinals.is_empty() {
            return Ok(Vec::new());
        }
        let (rows, bytes) = self.db.scan_raw(tid, ordinals, method)?;
        LatencyProfile::pay(self.db.latency().scan(rows.len(), bytes, method.is_sampled()));
        self.db
            .ledger()
            .record_scan(ordinals.len() as u64, rows.len() as u64, bytes as u64);
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use taste_core::{ColumnId, LabelSet, RawType, Table};

    fn mk_db(latency: LatencyProfile) -> (Arc<Database>, TableId) {
        let db = Database::new("udb", latency);
        let tid = TableId(0);
        let table = Table {
            meta: TableMeta { id: tid, name: "users".into(), comment: None, row_count: 4 },
            columns: vec![ColumnMeta {
                id: ColumnId::new(tid, 0),
                name: "email".into(),
                comment: None,
                raw_type: RawType::Text,
                nullable: false,
                stats: Default::default(),
                histogram: None,
            }],
            rows: (0..4).map(|i| vec![Cell::Text(format!("u{i}@example.com"))]).collect(),
            labels: vec![LabelSet::empty()],
        };
        let tid = db.create_table(&table).unwrap();
        (db, tid)
    }

    #[test]
    fn connection_and_queries_hit_the_ledger() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        let tables = conn.fetch_tables();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "users");
        let cols = conn.fetch_columns_meta(tid).unwrap();
        assert_eq!(cols.len(), 1);
        let rows = conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 2 }).unwrap();
        assert_eq!(rows.len(), 2);

        let s = db.ledger().snapshot();
        assert_eq!(s.connections_opened, 1);
        assert_eq!(s.metadata_queries, 2);
        assert_eq!(s.scan_queries, 1);
        assert_eq!(s.columns_scanned, 1);
        assert_eq!(s.rows_read, 2);
        assert!(s.bytes_read > 0);
    }

    #[test]
    fn empty_scan_is_free() {
        let (db, tid) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        let rows = conn.scan_columns(tid, &[], ScanMethod::FirstM { m: 10 }).unwrap();
        assert!(rows.is_empty());
        assert_eq!(db.ledger().snapshot().scan_queries, 0);
    }

    #[test]
    fn latency_is_actually_paid() {
        let profile = LatencyProfile {
            connect: Duration::from_millis(20),
            ..LatencyProfile::zero()
        };
        let (db, _) = mk_db(profile);
        let t0 = std::time::Instant::now();
        let _conn = db.connect();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn fetch_table_meta_for_missing_table_errors() {
        let (db, _) = mk_db(LatencyProfile::zero());
        let conn = db.connect();
        assert!(conn.fetch_table_meta(TableId(9)).is_err());
    }

    #[test]
    fn scan_latency_scales_with_rows() {
        let profile = LatencyProfile {
            scan_per_row: Duration::from_millis(2),
            ..LatencyProfile::zero()
        };
        let (db, tid) = mk_db(profile);
        let conn = db.connect();
        let t0 = std::time::Instant::now();
        conn.scan_columns(tid, &[0], ScanMethod::FirstM { m: 4 }).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(8));
    }
}
