//! Property-based tests for the row codec and scan semantics.

use proptest::prelude::*;
use taste_core::Cell;
use taste_db::rowcodec::{decode_projection, decode_row, encode_row};

fn cell_strategy() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<i64>().prop_map(Cell::Int),
        (-1e12f64..1e12).prop_map(Cell::Float),
        "[\\x20-\\x7E]{0,40}".prop_map(Cell::Text),
        any::<bool>().prop_map(Cell::Bool),
    ]
}

proptest! {
    #[test]
    fn roundtrip_any_row(cells in prop::collection::vec(cell_strategy(), 0..12)) {
        let bytes = encode_row(&cells);
        let back = decode_row(&bytes, cells.len()).unwrap();
        prop_assert_eq!(back, cells);
    }

    #[test]
    fn projection_equals_filtered_full_decode(
        cells in prop::collection::vec(cell_strategy(), 1..12),
        mask in prop::collection::vec(any::<bool>(), 1..12),
    ) {
        let width = cells.len();
        let ordinals: Vec<u16> = (0..width as u16)
            .filter(|&o| mask.get(o as usize).copied().unwrap_or(false))
            .collect();
        let bytes = encode_row(&cells);
        let (projected, touched) = decode_projection(&bytes, width, &ordinals).unwrap();
        let expected: Vec<Cell> = ordinals.iter().map(|&o| cells[o as usize].clone()).collect();
        prop_assert_eq!(projected, expected);
        prop_assert!(touched <= bytes.len());
        if ordinals.is_empty() {
            prop_assert_eq!(touched, 0);
        }
    }

    #[test]
    fn truncated_rows_error_not_panic(cells in prop::collection::vec(cell_strategy(), 1..6), cut in 1usize..10) {
        let bytes = encode_row(&cells);
        if bytes.len() >= cut {
            let truncated = &bytes[..bytes.len() - cut];
            // Either decodes to an error or (when the cut removed an
            // exact-cell suffix and width is overstated) still errors on
            // trailing/missing bytes — never panics.
            let _ = decode_row(truncated, cells.len());
        }
    }

    #[test]
    fn byte_cost_is_monotone_in_projection(cells in prop::collection::vec(cell_strategy(), 2..10)) {
        let width = cells.len();
        let bytes = encode_row(&cells);
        let all: Vec<u16> = (0..width as u16).collect();
        let (_, full_touch) = decode_projection(&bytes, width, &all).unwrap();
        let (_, one_touch) = decode_projection(&bytes, width, &[0]).unwrap();
        prop_assert!(one_touch <= full_touch);
        prop_assert_eq!(full_touch, bytes.len());
    }
}
