//! Backend parity: random op sequences evaluated on the recording `Tape`
//! and on the tape-free `InferExec` must agree within 1e-5 on every
//! intermediate and final value.
//!
//! Because both backends share the same numeric kernels
//! (`Matrix::matmul_into`, the in-place softmax/layer-norm routines, the
//! activation scalars), agreement is bit-exact in practice; the 1e-5
//! tolerance is deliberate slack so the contract survives future kernel
//! changes that are merely value-preserving.

use proptest::prelude::*;
use taste_nn::{Forward, InferExec, Matrix, NodeId, ParamStore, Tape};

/// One step of a random forward program. Operands are drawn by index
/// from the nodes produced so far, so every program is well-formed by
/// construction.
#[derive(Debug, Clone)]
enum OpStep {
    MatmulT, // a @ b^T via transpose + matmul (keeps shapes square)
    Add,
    Mul,
    Scale(f32),
    Relu,
    Gelu,
    Sigmoid,
    Tanh,
    SoftmaxRows,
    LayerNormRows,
    Vcat,
    Hcat,
    SliceRows,
    SliceCols,
    Transpose,
    MeanRowsThenBroadcast, // mean_rows + add_row / mul_row coverage
    GatherRows,
    Param,
    GatherParamRows,
}

fn op_step() -> impl Strategy<Value = OpStep> {
    prop_oneof![
        Just(OpStep::MatmulT),
        Just(OpStep::Add),
        Just(OpStep::Mul),
        (-2.0f32..2.0).prop_map(OpStep::Scale),
        Just(OpStep::Relu),
        Just(OpStep::Gelu),
        Just(OpStep::Sigmoid),
        Just(OpStep::Tanh),
        Just(OpStep::SoftmaxRows),
        Just(OpStep::LayerNormRows),
        Just(OpStep::Vcat),
        Just(OpStep::Hcat),
        Just(OpStep::SliceRows),
        Just(OpStep::SliceCols),
        Just(OpStep::Transpose),
        Just(OpStep::MeanRowsThenBroadcast),
        Just(OpStep::GatherRows),
        Just(OpStep::Param),
        Just(OpStep::GatherParamRows),
    ]
}

/// Replays `steps` on any backend. All nodes are kept `n x n` so every
/// binary op is shape-compatible with every operand choice; `pick`
/// values select operands deterministically across both backends.
fn run_program<E: Forward + ?Sized>(
    ex: &mut E,
    store: &ParamStore,
    pid: taste_nn::ParamId,
    n: usize,
    seed: &Matrix,
    steps: &[(OpStep, usize, usize)],
) -> Vec<Matrix> {
    let mut nodes: Vec<NodeId> = vec![ex.leaf_copy(seed)];
    for (step, pa, pb) in steps {
        let (pa, pb) = (*pa, *pb);
        let a = nodes[pa % nodes.len()];
        let b = nodes[pb % nodes.len()];
        let id = match step {
            OpStep::MatmulT => {
                let bt = ex.transpose(b);
                ex.matmul(a, bt)
            }
            OpStep::Add => ex.add(a, b),
            OpStep::Mul => ex.mul(a, b),
            OpStep::Scale(s) => ex.scale(a, *s),
            OpStep::Relu => ex.relu(a),
            OpStep::Gelu => ex.gelu(a),
            OpStep::Sigmoid => ex.sigmoid(a),
            OpStep::Tanh => ex.tanh(a),
            OpStep::SoftmaxRows => ex.softmax_rows(a),
            OpStep::LayerNormRows => ex.layer_norm_rows(a, 1e-5),
            OpStep::Vcat => {
                let tall = ex.vcat(a, b);
                ex.slice_rows(tall, pa % (n + 1), n)
            }
            OpStep::Hcat => {
                let wide = ex.hcat(a, b);
                ex.slice_cols(wide, pb % (n + 1), n)
            }
            OpStep::SliceRows => {
                // Slice one row off, then re-stack it to stay n x n.
                let row = ex.slice_rows(a, pa % n, 1);
                let mut acc = row;
                for _ in 1..n {
                    acc = ex.vcat(acc, row);
                }
                acc
            }
            OpStep::SliceCols => {
                let col = ex.slice_cols(a, pb % n, 1);
                let mut acc = col;
                for _ in 1..n {
                    acc = ex.hcat(acc, col);
                }
                acc
            }
            OpStep::Transpose => ex.transpose(a),
            OpStep::MeanRowsThenBroadcast => {
                let mean = ex.mean_rows(a);
                let shifted = ex.add_row(b, mean);
                ex.mul_row(shifted, mean)
            }
            OpStep::GatherRows => {
                let idx: Vec<usize> = (0..n).map(|i| (i + pa) % n).collect();
                ex.gather_rows(a, &idx)
            }
            OpStep::Param => {
                let p = ex.param(store, pid);
                ex.matmul(a, p)
            }
            OpStep::GatherParamRows => {
                let idx: Vec<usize> = (0..n).map(|i| (i * 3 + pb) % n).collect();
                let rows = ex.gather_param_rows(store, pid, &idx);
                ex.add(a, rows)
            }
        };
        nodes.push(id);
    }
    nodes.iter().map(|&id| ex.value(id).clone()).collect()
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f32 {
    assert_eq!(a.shape(), b.shape());
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_op_sequences_agree_across_backends(
        n in 2usize..5,
        seed_data in prop::collection::vec(-1.2f32..1.2, 16),
        steps in prop::collection::vec((op_step(), 0usize..64, 0usize..64), 1..14),
    ) {
        let seed = Matrix::from_vec(n, n, seed_data[..n * n].to_vec());
        let mut store = ParamStore::new(11);
        let pid = store.normal("w", n, n, 0.4);

        let mut tape = Tape::new();
        let taped = run_program(&mut tape, &store, pid, n, &seed, &steps);

        let mut exec = InferExec::new();
        let mut sess = exec.session(&store);
        let eager = run_program(&mut sess, &store, pid, n, &seed, &steps);

        prop_assert_eq!(taped.len(), eager.len());
        for (i, (t, e)) in taped.iter().zip(&eager).enumerate() {
            let d = max_abs_diff(t, e);
            prop_assert!(d <= 1e-5, "node {i} diverged by {d}");
        }
    }

    #[test]
    fn executor_arena_is_stable_across_repeated_programs(
        n in 2usize..4,
        seed_data in prop::collection::vec(-1.0f32..1.0, 9),
        steps in prop::collection::vec((op_step(), 0usize..64, 0usize..64), 1..10),
    ) {
        // Rerunning the same program on one executor must not grow the
        // buffer arena after the first pass (amortized zero allocation).
        let seed = Matrix::from_vec(n, n, seed_data[..n * n].to_vec());
        let mut store = ParamStore::new(7);
        let pid = store.normal("w", n, n, 0.4);
        let mut exec = InferExec::new();
        {
            let mut sess = exec.session(&store);
            run_program(&mut sess, &store, pid, n, &seed, &steps);
        }
        let warm = exec.buffer_count();
        for _ in 0..3 {
            let mut sess = exec.session(&store);
            run_program(&mut sess, &store, pid, n, &seed, &steps);
        }
        prop_assert_eq!(exec.buffer_count(), warm, "arena grew on a repeated program");
    }
}
