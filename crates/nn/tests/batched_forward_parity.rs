//! Batched-forward parity: row-stacking B sequences through
//! `Embedding::forward_batched` / `TransformerLayer::forward_batched`
//! must be **bit-identical** to running each sequence through the
//! unbatched forwards alone, for any random batch and at every kernel
//! thread width. This is the contract the serving-side micro-batcher
//! leans on — fused passes may change throughput, never verdicts.
//!
//! Comparisons are exact (`==` on the f32 payload), not tolerance-based:
//! batching only reorders *rows*, never the reduction order inside a
//! row, and threaded kernels partition by row too.

use proptest::prelude::*;
use taste_nn::modules::{Embedding, MultiHeadAttention, TransformerLayer};
use taste_nn::{Forward, InferExec, Matrix, ParamStore};

const DIM: usize = 8;
const HEADS: usize = 2;
const VOCAB: usize = 32;
const MAX_LEN: usize = 12;

/// A random batch: per-sequence token ids, 1..=8 sequences of 1..=6 tokens.
fn batch_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..VOCAB, 1..=6), 1..=8)
}

fn rows_of(m: &Matrix, offset: usize, len: usize) -> &[f32] {
    &m.as_slice()[offset * m.cols()..(offset + len) * m.cols()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn embedding_and_layer_batched_match_per_sequence(seqs in batch_strategy()) {
        let mut store = ParamStore::new(17);
        let emb = Embedding::new(&mut store, "emb", VOCAB, DIM, MAX_LEN);
        let layer = TransformerLayer::new(&mut store, "layer", DIM, HEADS, DIM * 2);
        let lens: Vec<usize> = seqs.iter().map(Vec::len).collect();

        for threads in [1usize, 4] {
            // Batched: one fused pass over the row-stacked batch.
            let mut exec = InferExec::with_kernel_threads(threads);
            let mut sess = exec.session(&store);
            let refs: Vec<&[usize]> = seqs.iter().map(Vec::as_slice).collect();
            let stacked = emb.forward_batched(&mut sess, &store, &refs);
            let enc = layer.forward_batched(&mut sess, &store, stacked, stacked, &lens, &lens);
            let (emb_all, enc_all) = (sess.value(stacked).clone(), sess.value(enc).clone());
            prop_assert_eq!(emb_all.rows(), lens.iter().sum::<usize>());

            // Per-sequence: each alone on a fresh executor.
            let mut offset = 0;
            for seq in &seqs {
                let mut solo_exec = InferExec::with_kernel_threads(threads);
                let mut solo = solo_exec.session(&store);
                let e = emb.forward(&mut solo, &store, seq);
                let x = layer.forward(&mut solo, &store, e, e);
                prop_assert_eq!(
                    rows_of(&emb_all, offset, seq.len()),
                    solo.value(e).as_slice(),
                    "embedding rows diverged (threads={})", threads
                );
                prop_assert_eq!(
                    rows_of(&enc_all, offset, seq.len()),
                    solo.value(x).as_slice(),
                    "encoder rows diverged (threads={})", threads
                );
                offset += seq.len();
            }
        }
    }

    #[test]
    fn cross_attention_batched_matches_per_pair(
        pairs in prop::collection::vec(
            (prop::collection::vec(0usize..VOCAB, 1..=4), prop::collection::vec(0usize..VOCAB, 1..=6)),
            1..=6,
        ),
    ) {
        // The asymmetric content-tower case: Q comes from one stream,
        // K/V from another, with per-pair lengths that disagree.
        let mut store = ParamStore::new(23);
        let emb = Embedding::new(&mut store, "emb", VOCAB, DIM, MAX_LEN);
        let attn = MultiHeadAttention::new(&mut store, "xattn", DIM, HEADS);
        let q_lens: Vec<usize> = pairs.iter().map(|(q, _)| q.len()).collect();
        let kv_lens: Vec<usize> = pairs.iter().map(|(_, kv)| kv.len()).collect();

        for threads in [1usize, 4] {
            let mut exec = InferExec::with_kernel_threads(threads);
            let mut sess = exec.session(&store);
            let q_refs: Vec<&[usize]> = pairs.iter().map(|(q, _)| q.as_slice()).collect();
            let kv_refs: Vec<&[usize]> = pairs.iter().map(|(_, kv)| kv.as_slice()).collect();
            let q = emb.forward_batched(&mut sess, &store, &q_refs);
            let kv = emb.forward_batched(&mut sess, &store, &kv_refs);
            let out = attn.forward_batched(&mut sess, &store, q, kv, &q_lens, &kv_lens);
            let out_all = sess.value(out).clone();
            prop_assert_eq!(out_all.rows(), q_lens.iter().sum::<usize>());

            let mut offset = 0;
            for (qs, kvs) in &pairs {
                let mut solo_exec = InferExec::with_kernel_threads(threads);
                let mut solo = solo_exec.session(&store);
                let q1 = emb.forward(&mut solo, &store, qs);
                let kv1 = emb.forward(&mut solo, &store, kvs);
                let o1 = attn.forward(&mut solo, &store, q1, kv1);
                prop_assert_eq!(
                    rows_of(&out_all, offset, qs.len()),
                    solo.value(o1).as_slice(),
                    "cross-attention rows diverged (threads={})", threads
                );
                offset += qs.len();
            }
        }
    }
}
