//! Property-based gradient checks: random small matrices pushed through
//! composite graphs must match central finite differences.

use proptest::prelude::*;
use taste_nn::{Matrix, Tape};

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.5f32..1.5, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn check_gradient(build: impl Fn(&mut Tape, taste_nn::NodeId) -> taste_nn::NodeId, input: &Matrix) -> Result<(), TestCaseError> {
    let mut tape = Tape::new();
    let x = tape.leaf(input.clone());
    let loss = build(&mut tape, x);
    tape.backward(loss);
    let analytic = tape.grad(x);

    let eps = 1e-2f32;
    for idx in 0..input.len() {
        let eval = |delta: f32| {
            let mut m = input.clone();
            m.as_mut_slice()[idx] += delta;
            let mut t = Tape::new();
            let x = t.leaf(m);
            let l = build(&mut t, x);
            t.value(l).item()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let a = analytic.as_slice()[idx];
        prop_assert!(
            (a - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
            "idx {idx}: analytic {a} vs numeric {numeric}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn attentionlike_graph_gradients(input in small_matrix(3, 4)) {
        let w = Matrix::from_vec(4, 4, (0..16).map(|i| ((i * 7 % 11) as f32 - 5.0) / 10.0).collect());
        check_gradient(
            move |t, x| {
                let wn = t.leaf(w.clone());
                let q = t.matmul(x, wn);
                let kt = t.transpose(q);
                let scores = t.matmul(q, kt);
                let scaled = t.scale(scores, 0.5);
                let attn = t.softmax_rows(scaled);
                let out = t.matmul(attn, q);
                let sq = t.square(out);
                t.sum(sq)
            },
            &input,
        )?;
    }

    #[test]
    fn residual_norm_graph_gradients(input in small_matrix(2, 6)) {
        check_gradient(
            |t, x| {
                let g = t.gelu(x);
                let res = t.add(x, g);
                let normed = t.layer_norm_rows(res, 1e-5);
                let s = t.sigmoid(normed);
                let sq = t.square(s);
                t.sum(sq)
            },
            &input,
        )?;
    }

    #[test]
    fn concat_split_graph_gradients(input in small_matrix(4, 3)) {
        check_gradient(
            |t, x| {
                let top = t.slice_rows(x, 0, 2);
                let bottom = t.slice_rows(x, 2, 2);
                let merged = t.vcat(bottom, top);
                let wide = t.hcat(merged, merged);
                let m = t.mean_rows(wide);
                let sq = t.square(m);
                t.sum(sq)
            },
            &input,
        )?;
    }

    #[test]
    fn loss_graph_gradients(input in small_matrix(2, 5)) {
        let targets = Matrix::from_vec(2, 5, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0]);
        check_gradient(
            move |t, x| t.bce_with_logits_weighted_sum(x, targets.clone(), 3.0),
            &input,
        )?;
    }

    #[test]
    fn tanh_mulrow_graph_gradients(input in small_matrix(3, 4)) {
        let row = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.25]);
        check_gradient(
            move |t, x| {
                let th = t.tanh(x);
                let rn = t.leaf(row.clone());
                let scaled = t.mul_row(th, rn);
                let r = t.sigmoid(scaled);
                let sq = t.square(r);
                t.sum(sq)
            },
            &input,
        )?;
    }
}
