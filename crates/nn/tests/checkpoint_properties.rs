//! Property-based checks of the checkpoint wire format: round-trips
//! preserve exact bytes, and *any* truncation or single-bit flip is
//! detected as [`TasteError::Corrupt`] — never a panic, never a
//! silently wrong restore.

use proptest::prelude::*;
use std::fs;
use taste_core::TasteError;
use taste_nn::checkpoint::{CheckpointPolicy, CheckpointStore, TrainCheckpoint, TrainProgress};
use taste_nn::{Adam, AdamConfig, LrSchedule, Matrix, ParamStore};

/// A small but non-trivial training state: two parameters, real Adam
/// moments from `steps` genuine updates, and a moving cursor. The seed
/// perturbs every float so different cases exercise different bits.
fn toy_state(seed: u64, steps: usize) -> (ParamStore, Adam, TrainProgress) {
    let mut store = ParamStore::new(seed);
    store.normal("enc.w", 3, 5, 0.2);
    store.normal("head.b", 1, 4, 0.05);
    let mut opt = Adam::new(
        AdamConfig { lr: 0.02, ..Default::default() },
        LrSchedule::LinearWarmupDecay { warmup: 3, total: 64 },
    );
    for s in 0..steps.max(1) {
        for id in store.ids().collect::<Vec<_>>() {
            let (rows, cols) = store.value(id).shape();
            let fill = 0.1 + (seed % 7) as f32 * 0.03 + s as f32 * 0.01;
            store.grad_mut(id).axpy(1.0, &Matrix::full(rows, cols, fill));
        }
        opt.step(&mut store);
    }
    let mut progress = TrainProgress::fresh(9, seed);
    for s in 0..steps {
        progress.record_loss(0.9 / (s + 1) as f32);
        progress.advance(3);
    }
    (store, opt, progress)
}

fn encoded(seed: u64, steps: usize) -> Vec<u8> {
    let (store, opt, progress) = toy_state(seed, steps);
    TrainCheckpoint::capture(&store, &opt, &progress).encode()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_preserves_exact_bytes(seed in any::<u64>(), steps in 1..5usize) {
        let bytes = encoded(seed, steps);
        let decoded = TrainCheckpoint::decode(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode: {e}")))?;
        // Bit-exactness of the whole state is equivalent to the
        // re-encoded byte stream matching: the blob carries raw f32
        // bits and the manifest is deterministic.
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn any_truncation_is_detected(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let bytes = encoded(seed, 2);
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        match TrainCheckpoint::decode(&bytes[..cut]) {
            Err(TasteError::Corrupt(_)) => {}
            other => prop_assert!(false, "truncation at {cut}/{} gave {other:?}", bytes.len()),
        }
    }

    #[test]
    fn any_single_bitflip_is_detected(seed in any::<u64>(), at in any::<u64>(), bit in 0..8usize) {
        let mut bytes = encoded(seed, 2);
        let pos = (at % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        match TrainCheckpoint::decode(&bytes) {
            Err(TasteError::Corrupt(_)) => {}
            other => prop_assert!(false, "bitflip at byte {pos} bit {bit} gave {other:?}"),
        }
    }
}

/// Disk-level version of the properties above: a truncated newest file
/// is quarantined and the store falls back to the older good one.
#[test]
fn truncated_newest_checkpoint_falls_back_on_disk() {
    let dir = std::env::temp_dir().join(format!(
        "taste-ckpt-prop-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    let cs = CheckpointStore::new(&dir, CheckpointPolicy::default()).unwrap();
    let (store, opt, mut progress) = toy_state(11, 3);
    for step in [7, 14] {
        progress.step = step;
        cs.save(&TrainCheckpoint::capture(&store, &opt, &progress)).unwrap();
    }
    let newest = cs.path_for(14);
    let bytes = fs::read(&newest).unwrap();
    fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();

    let outcome = cs.load_latest().unwrap();
    let (ck, _) = outcome.loaded.expect("older checkpoint survives");
    assert_eq!(ck.progress.step, 7);
    assert_eq!(outcome.quarantined, 1);
    assert!(!newest.exists(), "torn file quarantined away from the live set");
    let _ = fs::remove_dir_all(&dir);
}
