//! Property-based parity checks for the vectorized kernel layer: every
//! kernel variant (lane-vectorized, packed, fused, threaded) must be
//! **bitwise** identical to the composed single-threaded reference —
//! `assert_eq!` on `f32`s, no tolerance.

use proptest::prelude::*;
use taste_nn::kernels::{self, Act, PackedB};
use taste_nn::Matrix;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Shape strategy spanning sub-lane, exact-lane, and lane+remainder
/// widths so every code path (full panels, tail panel, tiny matrices)
/// is exercised.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..12, 1usize..20)
}

/// The composed reference for a fused `act(x @ w + bias)`: plain matmul,
/// then a row-broadcast bias add, then the scalar activation — the exact
/// op sequence `modules.rs` used before fusion.
fn composed_linear_act(x: &Matrix, w: &Matrix, bias: &Matrix, act: Act) -> Matrix {
    let mut out = x.matmul(w);
    let b = bias.as_slice();
    for r in 0..out.rows() {
        for (v, &bv) in out.row_slice_mut(r).iter_mut().zip(b) {
            let a = *v + bv;
            *v = act.apply(a);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn threaded_kernels_are_bit_identical_across_thread_counts(
        (m, k, n) in dims(),
        seed in any::<u64>(),
    ) {
        let gen = |salt: u64, len: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let h = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add(salt)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    ((h >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
                })
                .collect()
        };
        let a = Matrix::from_vec(m, k, gen(1, m * k));
        let b = Matrix::from_vec(k, n, gen(2, k * n));

        let mut reference = Matrix::zeros(m, n);
        kernels::matmul_into_mt(&a, &b, 1, &mut reference);
        for threads in [2usize, 4] {
            let mut out = Matrix::zeros(m, n);
            kernels::matmul_into_mt(&a, &b, threads, &mut out);
            prop_assert_eq!(&out, &reference, "matmul threads={}", threads);
        }

        let bt = Matrix::from_vec(n, k, gen(3, n * k));
        let mut bt_ref = Matrix::zeros(m, n);
        kernels::matmul_bt_into_mt(&a, &bt, 1, &mut bt_ref);
        for threads in [2usize, 4] {
            let mut out = Matrix::zeros(m, n);
            kernels::matmul_bt_into_mt(&a, &bt, threads, &mut out);
            prop_assert_eq!(&out, &bt_ref, "matmul_bt threads={}", threads);
        }
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_unpacked(
        (m, k, n) in dims(),
        a in prop::collection::vec(-2.0f32..2.0, 128),
        b in prop::collection::vec(-2.0f32..2.0, 256),
    ) {
        prop_assume!(a.len() >= m * k && b.len() >= k * n);
        let a = Matrix::from_vec(m, k, a[..m * k].to_vec());
        let b = Matrix::from_vec(k, n, b[..k * n].to_vec());
        let reference = a.matmul(&b);
        let packed = PackedB::pack(&b);
        for threads in [1usize, 2, 4] {
            let mut out = Matrix::zeros(m, n);
            kernels::matmul_packed_into(&a, &packed, None, Act::Ident, threads, &mut out);
            prop_assert_eq!(&out, &reference, "packed threads={}", threads);
        }
    }

    #[test]
    fn fused_bias_activation_is_bit_identical_to_composed(
        (m, k, n) in dims(),
        x in prop::collection::vec(-2.0f32..2.0, 128),
        w in prop::collection::vec(-2.0f32..2.0, 256),
        bias_salt in -2.0f32..2.0,
        act_pick in 0usize..5,
    ) {
        prop_assume!(x.len() >= m * k && w.len() >= k * n);
        let x = Matrix::from_vec(m, k, x[..m * k].to_vec());
        let w = Matrix::from_vec(k, n, w[..k * n].to_vec());
        let bias = Matrix::from_vec(1, n, (0..n).map(|j| bias_salt + j as f32 * 0.125).collect());
        let act = [Act::Ident, Act::Relu, Act::Gelu, Act::Sigmoid, Act::Tanh][act_pick];

        let reference = composed_linear_act(&x, &w, &bias, act);
        let packed = PackedB::pack(&w);
        for threads in [1usize, 2, 4] {
            let mut out = Matrix::zeros(m, n);
            kernels::matmul_packed_into(&x, &packed, Some(&bias), act, threads, &mut out);
            prop_assert_eq!(&out, &reference, "fused act={:?} threads={}", act, threads);
        }
    }

    #[test]
    fn fused_row_kernels_are_bit_identical_to_composed(
        x in matrix(4, 11),
        alpha in 0.05f32..2.0,
        eps in prop::sample::select(vec![1e-5f32, 1e-6]),
    ) {
        // Fused scaled-softmax vs scale-then-softmax.
        let mut composed = x.clone();
        for v in composed.as_mut_slice() {
            *v *= alpha;
        }
        composed.softmax_rows_inplace();
        let mut fused = Matrix::zeros(x.rows(), x.cols());
        kernels::softmax_rows_scaled_into(&x, alpha, &mut fused);
        prop_assert_eq!(&fused, &composed);

        // Fused affine layer-norm vs normalize-then-scale-then-shift.
        let n = x.cols();
        let gain = Matrix::from_vec(1, n, (0..n).map(|j| 0.5 + j as f32 * 0.1).collect());
        let bias = Matrix::from_vec(1, n, (0..n).map(|j| -0.3 + j as f32 * 0.05).collect());
        let mut composed = x.clone();
        composed.layer_norm_rows_inplace(eps);
        for r in 0..composed.rows() {
            for ((v, &g), &b) in composed
                .row_slice_mut(r)
                .iter_mut()
                .zip(gain.as_slice())
                .zip(bias.as_slice())
            {
                let scaled = *v * g;
                *v = scaled + b;
            }
        }
        let mut fused = Matrix::zeros(x.rows(), x.cols());
        kernels::layer_norm_affine_into(&x, &gain, &bias, eps, &mut fused);
        prop_assert_eq!(&fused, &composed);
    }

    #[test]
    fn transpose_free_variants_match_explicit_transposes(
        (m, k, n) in dims(),
        a in prop::collection::vec(-2.0f32..2.0, 128),
        b in prop::collection::vec(-2.0f32..2.0, 256),
    ) {
        prop_assume!(a.len() >= m * k && b.len() >= k * n && b.len() >= m * n);
        let a = Matrix::from_vec(m, k, a[..m * k].to_vec());
        let raw = b;
        let b = Matrix::from_vec(k, n, raw[..k * n].to_vec());

        // a @ b^T via matmul_bt == a @ transpose(b) elementwise (the
        // accumulation order is ascending-k in both, so bitwise).
        let bt = Matrix::from_vec(n, k, b.transpose().as_slice().to_vec());
        prop_assert_eq!(a.matmul_bt(&bt), a.matmul(&b));

        // a^T @ b via matmul_at (both operands share their row count):
        // same values as transpose(a) @ b — matmul_at accumulates in the
        // same ascending-k order, so it is bitwise equal here too.
        let c = Matrix::from_vec(m, n, raw[..m * n].to_vec());
        let at = a.transpose();
        prop_assert_eq!(a.matmul_at(&c), at.matmul(&c));
    }
}
