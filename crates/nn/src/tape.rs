//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Tape`] records the forward computation as a DAG of nodes; calling
//! [`Tape::backward`] on a scalar node walks the DAG in reverse topological
//! order (which is simply reverse insertion order) and accumulates
//! gradients into every node. Leaf nodes created from trainable parameters
//! remember their [`ParamId`]; [`Tape::accumulate_param_grads`] then routes
//! their gradients into the owning [`ParamStore`].
//!
//! Typical training step:
//!
//! ```
//! use taste_nn::{Matrix, ParamStore, Tape};
//!
//! let mut store = ParamStore::new(42);
//! let w = store.normal("w", 2, 1, 0.1);
//! let mut tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
//! let wn = tape.param(&store, w);
//! let y = tape.matmul(x, wn);
//! let sq = tape.square(y);
//! let loss = tape.sum(sq);
//! tape.backward(loss);
//! tape.accumulate_param_grads(&mut store);
//! assert!(store.grad(w).sq_norm() > 0.0);
//! ```

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};

/// Handle to a node in an execution backend (a [`Tape`] or a
/// [`crate::exec::InferExec`] session — the two never share handles, so a
/// `NodeId` is only meaningful with the backend that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

impl NodeId {
    pub(crate) fn from_index(i: usize) -> NodeId {
        NodeId(i)
    }

    pub(crate) fn index(self) -> usize {
        self.0
    }
}

/// Recorded operation, with the inputs needed to compute gradients.
#[derive(Debug, Clone)]
enum Op {
    Leaf { param: Option<ParamId> },
    Matmul(NodeId, NodeId),
    Add(NodeId, NodeId),
    AddRow(NodeId, NodeId),
    Mul(NodeId, NodeId),
    MulRow(NodeId, NodeId),
    Scale(NodeId, f32),
    Relu(NodeId),
    Gelu(NodeId),
    Sigmoid(NodeId),
    Tanh(NodeId),
    SoftmaxRows(NodeId),
    LayerNormRows { x: NodeId, eps: f32 },
    VCat(NodeId, NodeId),
    HCat(NodeId, NodeId),
    SliceRows { x: NodeId, start: usize, len: usize },
    SliceCols { x: NodeId, start: usize, len: usize },
    Transpose(NodeId),
    MeanRows(NodeId),
    Sum(NodeId),
    GatherParamRows { param: ParamId, indices: Vec<usize> },
    MulConstMask(NodeId, Matrix),
    Square(NodeId),
    Recip(NodeId),
    Ln1p(NodeId),
    BceWithLogitsSum { logits: NodeId, targets: Matrix, pos_weight: f32 },
    SoftmaxXentSum { logits: NodeId, targets: Vec<usize> },
}

struct Node {
    value: Matrix,
    grad: Option<Matrix>,
    op: Op,
}

/// A forward-computation recorder supporting reverse-mode differentiation.
///
/// The tape owns copies of every intermediate value. For inference-only
/// passes the overhead is the values themselves (which the caller needs
/// anyway); simply never call [`Tape::backward`].
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Scratch buffers for the matmul backward rules, recycled across
    /// every `Op::Matmul` visited by [`Tape::backward`] so the hot
    /// gradient path performs no per-step allocation once warmed.
    scratch_bt: Matrix,
    scratch_at: Matrix,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    fn push(&mut self, value: Matrix, op: Op) -> NodeId {
        debug_assert!(value.all_finite(), "non-finite forward value from {op:?}");
        self.nodes.push(Node { value, grad: None, op });
        NodeId(self.nodes.len() - 1)
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of a node after [`Tape::backward`]; zeros if the node
    /// did not participate in the loss.
    pub fn grad(&self, id: NodeId) -> Matrix {
        let node = &self.nodes[id.0];
        node.grad
            .clone()
            .unwrap_or_else(|| Matrix::zeros(node.value.rows(), node.value.cols()))
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- node constructors -------------------------------------------------

    /// A constant / input leaf.
    pub fn leaf(&mut self, value: Matrix) -> NodeId {
        self.push(value, Op::Leaf { param: None })
    }

    /// A leaf backed by a trainable parameter; its gradient is routed to
    /// the parameter by [`Tape::accumulate_param_grads`].
    pub fn param(&mut self, store: &ParamStore, pid: ParamId) -> NodeId {
        let value = store.value(pid).clone();
        self.push(value, Op::Leaf { param: Some(pid) })
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::Matmul(a, b))
    }

    /// Elementwise sum of two same-shape nodes.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    /// Broadcast add of a `[1, n]` row vector to every row of `[m, n]`.
    pub fn add_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let xv = &self.nodes[x.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "add_row: rhs must be a row vector");
        assert_eq!(xv.cols(), rv.cols(), "add_row: column mismatch");
        let mut v = xv.clone();
        for r in 0..v.rows() {
            let row_slice = v.row_slice_mut(r);
            for (o, &b) in row_slice.iter_mut().zip(rv.as_slice()) {
                *o += b;
            }
        }
        self.push(v, Op::AddRow(x, row))
    }

    /// Elementwise product of two same-shape nodes.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    /// Broadcast multiply of every row of `[m, n]` by a `[1, n]` row.
    pub fn mul_row(&mut self, x: NodeId, row: NodeId) -> NodeId {
        let xv = &self.nodes[x.0].value;
        let rv = &self.nodes[row.0].value;
        assert_eq!(rv.rows(), 1, "mul_row: rhs must be a row vector");
        assert_eq!(xv.cols(), rv.cols(), "mul_row: column mismatch");
        let mut v = xv.clone();
        for r in 0..v.rows() {
            let row_slice = v.row_slice_mut(r);
            for (o, &b) in row_slice.iter_mut().zip(rv.as_slice()) {
                *o *= b;
            }
        }
        self.push(v, Op::MulRow(x, row))
    }

    /// Scalar scaling.
    pub fn scale(&mut self, x: NodeId, alpha: f32) -> NodeId {
        let v = self.nodes[x.0].value.map(|v| v * alpha);
        self.push(v, Op::Scale(x, alpha))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(|v| v.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// GELU activation (tanh approximation, as BERT uses).
    pub fn gelu(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(gelu_f);
        self.push(v, Op::Gelu(x))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(sigmoid_f);
        self.push(v, Op::Sigmoid(x))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(f32::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.softmax_rows();
        self.push(v, Op::SoftmaxRows(x))
    }

    /// Row-wise layer normalization *without* the affine transform; apply
    /// gain/bias with [`Tape::mul_row`] / [`Tape::add_row`].
    pub fn layer_norm_rows(&mut self, x: NodeId, eps: f32) -> NodeId {
        let mut v = self.nodes[x.0].value.clone();
        v.layer_norm_rows_inplace(eps);
        self.push(v, Op::LayerNormRows { x, eps })
    }

    /// Vertical concatenation (stacks sequences; the paper's `⊕` on
    /// latent representations along the token axis).
    pub fn vcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.vcat(&self.nodes[b.0].value);
        self.push(v, Op::VCat(a, b))
    }

    /// Horizontal concatenation (feature-axis `⊕`, e.g. classifier input).
    pub fn hcat(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.hcat(&self.nodes[b.0].value);
        self.push(v, Op::HCat(a, b))
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.nodes[x.0].value.slice_rows(start, len);
        self.push(v, Op::SliceRows { x, start, len })
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.nodes[x.0].value.slice_cols(start, len);
        self.push(v, Op::SliceCols { x, start, len })
    }

    /// Transpose.
    pub fn transpose(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.transpose();
        self.push(v, Op::Transpose(x))
    }

    /// Column means: `[m, n] -> [1, n]`.
    pub fn mean_rows(&mut self, x: NodeId) -> NodeId {
        let xv = &self.nodes[x.0].value;
        let m = xv.rows() as f32;
        let mut v = Matrix::zeros(1, xv.cols());
        for r in 0..xv.rows() {
            for (o, &val) in v.as_mut_slice().iter_mut().zip(xv.row_slice(r)) {
                *o += val;
            }
        }
        for o in v.as_mut_slice() {
            *o /= m;
        }
        self.push(v, Op::MeanRows(x))
    }

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&mut self, x: NodeId) -> NodeId {
        let v = Matrix::scalar(self.nodes[x.0].value.sum());
        self.push(v, Op::Sum(x))
    }

    /// Embedding lookup: gathers `indices` rows of the parameter matrix
    /// without cloning the full table into the tape. Gradients are
    /// scatter-added back into the parameter.
    pub fn gather_param_rows(&mut self, store: &ParamStore, pid: ParamId, indices: &[usize]) -> NodeId {
        let v = store.value(pid).gather_rows(indices);
        self.push(v, Op::GatherParamRows { param: pid, indices: indices.to_vec() })
    }

    /// Elementwise multiply by a constant mask (inverted-dropout masks,
    /// attention masks). The mask receives no gradient.
    pub fn mul_const_mask(&mut self, x: NodeId, mask: Matrix) -> NodeId {
        let v = self.nodes[x.0].value.zip(&mask, |a, b| a * b);
        self.push(v, Op::MulConstMask(x, mask))
    }

    /// Elementwise square.
    pub fn square(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(|v| v * v);
        self.push(v, Op::Square(x))
    }

    /// Elementwise reciprocal.
    pub fn recip(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(|v| 1.0 / v);
        self.push(v, Op::Recip(x))
    }

    /// Elementwise `ln(1 + x)`.
    pub fn ln1p(&mut self, x: NodeId) -> NodeId {
        let v = self.nodes[x.0].value.map(f32::ln_1p);
        self.push(v, Op::Ln1p(x))
    }

    /// Numerically-stable multi-label binary cross-entropy with logits,
    /// summed over all `(row, col)` decisions, as a `1×1` node.
    ///
    /// Uses `max(z,0) - z*y + ln(1+e^{-|z|})`, the standard stable form.
    pub fn bce_with_logits_sum(&mut self, logits: NodeId, targets: Matrix) -> NodeId {
        self.bce_with_logits_weighted_sum(logits, targets, 1.0)
    }

    /// [`Tape::bce_with_logits_sum`] with the positive decisions weighted
    /// by `pos_weight` — `pw·y·softplus(-z) + (1-y)·softplus(z)`. With
    /// many types and one or two positives per column, the positive
    /// gradient signal is otherwise drowned by the negatives.
    pub fn bce_with_logits_weighted_sum(&mut self, logits: NodeId, targets: Matrix, pos_weight: f32) -> NodeId {
        assert!(pos_weight > 0.0, "pos_weight must be positive");
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.shape(), targets.shape(), "bce target shape mismatch");
        let mut total = 0.0f64;
        for (&zv, &yv) in z.as_slice().iter().zip(targets.as_slice()) {
            let softplus_pos = zv.max(0.0) + (-zv.abs()).exp().ln_1p(); // softplus(z)
            let softplus_neg = softplus_pos - zv; // softplus(-z)
            let l = pos_weight * yv * softplus_neg + (1.0 - yv) * softplus_pos;
            total += f64::from(l);
        }
        self.push(
            Matrix::scalar(total as f32),
            Op::BceWithLogitsSum { logits, targets, pos_weight },
        )
    }

    /// Softmax cross-entropy against integer class targets (one per row),
    /// summed over rows, as a `1×1` node. Used by MLM pre-training.
    pub fn softmax_xent_sum(&mut self, logits: NodeId, targets: Vec<usize>) -> NodeId {
        let z = &self.nodes[logits.0].value;
        assert_eq!(z.rows(), targets.len(), "xent target count mismatch");
        let probs = z.softmax_rows();
        let mut total = 0.0f64;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < z.cols(), "xent target {t} out of {} classes", z.cols());
            let p = probs.get(r, t).max(1e-12);
            total -= f64::from(p.ln());
        }
        self.push(Matrix::scalar(total as f32), Op::SoftmaxXentSum { logits, targets })
    }

    // ---- backward ----------------------------------------------------------

    fn add_grad(&mut self, id: NodeId, delta: &Matrix) {
        let node = &mut self.nodes[id.0];
        match &mut node.grad {
            Some(g) => g.axpy(1.0, delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    /// Runs reverse-mode differentiation from a `1×1` loss node.
    ///
    /// # Panics
    /// Panics when `loss` is not scalar-shaped.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward() requires a scalar loss node"
        );
        self.nodes[loss.0].grad = Some(Matrix::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            let Some(grad) = self.nodes[i].grad.clone() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            match op {
                Op::Leaf { .. } => {}
                Op::Matmul(a, b) => {
                    // dA = grad @ B^T and dB = A^T @ grad, via the
                    // allocation-free `_into` kernels writing recycled
                    // scratch buffers.
                    let mut da = std::mem::take(&mut self.scratch_bt);
                    da.reset_shape(grad.rows(), self.nodes[b.0].value.rows());
                    grad.matmul_bt_into(&self.nodes[b.0].value, &mut da);
                    self.add_grad(a, &da);
                    self.scratch_bt = da;

                    let mut db = std::mem::take(&mut self.scratch_at);
                    db.reset_shape(self.nodes[a.0].value.cols(), grad.cols());
                    self.nodes[a.0].value.matmul_at_into(&grad, &mut db);
                    self.add_grad(b, &db);
                    self.scratch_at = db;
                }
                Op::Add(a, b) => {
                    self.add_grad(a, &grad);
                    self.add_grad(b, &grad);
                }
                Op::AddRow(x, row) => {
                    self.add_grad(x, &grad);
                    let mut drow = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        for (o, &g) in drow.as_mut_slice().iter_mut().zip(grad.row_slice(r)) {
                            *o += g;
                        }
                    }
                    self.add_grad(row, &drow);
                }
                Op::Mul(a, b) => {
                    let da = grad.zip(&self.nodes[b.0].value, |g, bv| g * bv);
                    let db = grad.zip(&self.nodes[a.0].value, |g, av| g * av);
                    self.add_grad(a, &da);
                    self.add_grad(b, &db);
                }
                Op::MulRow(x, row) => {
                    let rv = self.nodes[row.0].value.clone();
                    let xv = self.nodes[x.0].value.clone();
                    let mut dx = grad.clone();
                    for r in 0..dx.rows() {
                        for (o, &b) in dx.row_slice_mut(r).iter_mut().zip(rv.as_slice()) {
                            *o *= b;
                        }
                    }
                    self.add_grad(x, &dx);
                    let mut drow = Matrix::zeros(1, grad.cols());
                    for r in 0..grad.rows() {
                        let grow = grad.row_slice(r);
                        let xrow = xv.row_slice(r);
                        for ((o, &g), &xval) in drow.as_mut_slice().iter_mut().zip(grow).zip(xrow) {
                            *o += g * xval;
                        }
                    }
                    self.add_grad(row, &drow);
                }
                Op::Scale(x, alpha) => {
                    let dx = grad.map(|g| g * alpha);
                    self.add_grad(x, &dx);
                }
                Op::Relu(x) => {
                    let dx = grad.zip(&self.nodes[x.0].value, |g, xv| if xv > 0.0 { g } else { 0.0 });
                    self.add_grad(x, &dx);
                }
                Op::Gelu(x) => {
                    let dx = grad.zip(&self.nodes[x.0].value, |g, xv| g * gelu_grad_f(xv));
                    self.add_grad(x, &dx);
                }
                Op::Sigmoid(x) => {
                    let dx = grad.zip(&self.nodes[i].value, |g, s| g * s * (1.0 - s));
                    self.add_grad(x, &dx);
                }
                Op::Tanh(x) => {
                    let dx = grad.zip(&self.nodes[i].value, |g, t| g * (1.0 - t * t));
                    self.add_grad(x, &dx);
                }
                Op::SoftmaxRows(x) => {
                    let s = &self.nodes[i].value;
                    let mut dx = Matrix::zeros(s.rows(), s.cols());
                    for r in 0..s.rows() {
                        let srow = s.row_slice(r);
                        let grow = grad.row_slice(r);
                        let dot: f32 = srow.iter().zip(grow).map(|(&sv, &gv)| sv * gv).sum();
                        for ((o, &sv), &gv) in dx.row_slice_mut(r).iter_mut().zip(srow).zip(grow) {
                            *o = sv * (gv - dot);
                        }
                    }
                    self.add_grad(x, &dx);
                }
                Op::LayerNormRows { x, eps } => {
                    let xv = self.nodes[x.0].value.clone();
                    let y = &self.nodes[i].value;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    let n = xv.cols() as f32;
                    for r in 0..xv.rows() {
                        let xrow = xv.row_slice(r);
                        let yrow = y.row_slice(r);
                        let grow = grad.row_slice(r);
                        let mean: f32 = xrow.iter().sum::<f32>() / n;
                        let var: f32 = xrow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
                        let inv = 1.0 / (var + eps).sqrt();
                        let g_mean: f32 = grow.iter().sum::<f32>() / n;
                        let gy_mean: f32 = grow.iter().zip(yrow).map(|(&g, &yv)| g * yv).sum::<f32>() / n;
                        for ((o, (&g, &yv)), _) in dx
                            .row_slice_mut(r)
                            .iter_mut()
                            .zip(grow.iter().zip(yrow))
                            .zip(xrow)
                        {
                            *o = inv * (g - g_mean - yv * gy_mean);
                        }
                    }
                    self.add_grad(x, &dx);
                }
                Op::VCat(a, b) => {
                    let arows = self.nodes[a.0].value.rows();
                    let da = grad.slice_rows(0, arows);
                    let db = grad.slice_rows(arows, grad.rows() - arows);
                    self.add_grad(a, &da);
                    self.add_grad(b, &db);
                }
                Op::HCat(a, b) => {
                    let acols = self.nodes[a.0].value.cols();
                    let da = grad.slice_cols(0, acols);
                    let db = grad.slice_cols(acols, grad.cols() - acols);
                    self.add_grad(a, &da);
                    self.add_grad(b, &db);
                }
                Op::SliceRows { x, start, len } => {
                    let xv = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..len {
                        let src = grad.row_slice(r);
                        dx.row_slice_mut(start + r).copy_from_slice(src);
                    }
                    self.add_grad(x, &dx);
                }
                Op::SliceCols { x, start, len } => {
                    let xv = &self.nodes[x.0].value;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        let src = grad.row_slice(r);
                        dx.row_slice_mut(r)[start..start + len].copy_from_slice(src);
                    }
                    self.add_grad(x, &dx);
                }
                Op::Transpose(x) => {
                    let dx = grad.transpose();
                    self.add_grad(x, &dx);
                }
                Op::MeanRows(x) => {
                    let xv = &self.nodes[x.0].value;
                    let m = xv.rows() as f32;
                    let mut dx = Matrix::zeros(xv.rows(), xv.cols());
                    for r in 0..xv.rows() {
                        for (o, &g) in dx.row_slice_mut(r).iter_mut().zip(grad.as_slice()) {
                            *o = g / m;
                        }
                    }
                    self.add_grad(x, &dx);
                }
                Op::Sum(x) => {
                    let xv = &self.nodes[x.0].value;
                    let g = grad.item();
                    let dx = Matrix::full(xv.rows(), xv.cols(), g);
                    self.add_grad(x, &dx);
                }
                Op::GatherParamRows { .. } => {
                    // Routed to the parameter store by accumulate_param_grads.
                }
                Op::MulConstMask(x, mask) => {
                    let dx = grad.zip(&mask, |g, m| g * m);
                    self.add_grad(x, &dx);
                }
                Op::Square(x) => {
                    let dx = grad.zip(&self.nodes[x.0].value, |g, xv| g * 2.0 * xv);
                    self.add_grad(x, &dx);
                }
                Op::Recip(x) => {
                    let dx = grad.zip(&self.nodes[x.0].value, |g, xv| -g / (xv * xv));
                    self.add_grad(x, &dx);
                }
                Op::Ln1p(x) => {
                    let dx = grad.zip(&self.nodes[x.0].value, |g, xv| g / (1.0 + xv));
                    self.add_grad(x, &dx);
                }
                Op::BceWithLogitsSum { logits, targets, pos_weight } => {
                    let g = grad.item();
                    // d/dz [pw·y·softplus(-z) + (1-y)·softplus(z)]
                    //   = (1-y)·σ(z) - pw·y·(1-σ(z)).
                    let dz = self.nodes[logits.0].value.zip(&targets, |z, y| {
                        let s = sigmoid_f(z);
                        g * ((1.0 - y) * s - pos_weight * y * (1.0 - s))
                    });
                    self.add_grad(logits, &dz);
                }
                Op::SoftmaxXentSum { logits, targets } => {
                    let g = grad.item();
                    let mut dz = self.nodes[logits.0].value.softmax_rows();
                    for (r, &t) in targets.iter().enumerate() {
                        let v = dz.get(r, t);
                        dz.set(r, t, v - 1.0);
                    }
                    let dz = dz.map(|v| v * g);
                    self.add_grad(logits, &dz);
                }
            }
        }
    }

    /// Adds every parameter-leaf gradient (and gathered-row gradient) into
    /// the parameter store. Call once after [`Tape::backward`].
    pub fn accumulate_param_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            match (&node.op, &node.grad) {
                (Op::Leaf { param: Some(pid) }, Some(g)) => {
                    store.grad_mut(*pid).axpy(1.0, g);
                }
                (Op::GatherParamRows { param, indices }, Some(g)) => {
                    let pg = store.grad_mut(*param);
                    for (r, &idx) in indices.iter().enumerate() {
                        let src = g.row_slice(r);
                        let dst = pg.row_slice_mut(idx);
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

#[inline]
pub(crate) fn sigmoid_f(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

#[inline]
pub(crate) fn gelu_f(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_f(x: f32) -> f32 {
    let inner = GELU_C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let dinner = GELU_C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of `d loss / d input` for a scalar-valued
    /// function built on the tape.
    fn grad_check(
        build: impl Fn(&mut Tape, NodeId) -> NodeId,
        input: Matrix,
        tol: f32,
    ) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x);

        // Numeric gradient.
        let eps = 1e-3f32;
        for idx in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let x = t.leaf(m);
                let l = build(&mut t, x);
                t.value(l).item()
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "grad mismatch at {idx}: analytic {a}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_check_matmul_chain() {
        let w = Matrix::from_vec(3, 2, vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.7]);
        grad_check(
            move |t, x| {
                let wn = t.leaf(w.clone());
                let y = t.matmul(x, wn);
                let s = t.square(y);
                t.sum(s)
            },
            Matrix::from_vec(2, 3, vec![1.0, -1.0, 0.5, 0.2, 0.8, -0.3]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_activations() {
        let input = Matrix::from_vec(1, 5, vec![-1.2, -0.1, 0.0, 0.4, 2.0]);
        for act in ["relu", "gelu", "sigmoid", "tanh"] {
            grad_check(
                move |t, x| {
                    let y = match act {
                        "relu" => t.relu(x),
                        "gelu" => t.gelu(x),
                        "sigmoid" => t.sigmoid(x),
                        _ => t.tanh(x),
                    };
                    let s = t.square(y);
                    t.sum(s)
                },
                input.clone(),
                2e-2,
            );
        }
    }

    #[test]
    fn grad_check_softmax_rows() {
        grad_check(
            |t, x| {
                let s = t.softmax_rows(x);
                let sq = t.square(s);
                t.sum(sq)
            },
            Matrix::from_vec(2, 3, vec![0.1, 0.5, -0.2, 1.0, -1.0, 0.0]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_layer_norm() {
        grad_check(
            |t, x| {
                let y = t.layer_norm_rows(x, 1e-5);
                let w = t.leaf(Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.3]));
                let z = t.mul_row(y, w);
                let s = t.square(z);
                t.sum(s)
            },
            Matrix::from_vec(2, 4, vec![0.3, -0.8, 1.5, 0.1, 2.0, 2.1, 1.9, 2.2]),
            2e-2,
        );
    }

    #[test]
    fn grad_check_concat_slice_transpose() {
        grad_check(
            |t, x| {
                let a = t.slice_rows(x, 0, 1);
                let b = t.slice_rows(x, 1, 1);
                let v = t.vcat(a, b);
                let h = t.hcat(v, v);
                let tr = t.transpose(h);
                let s = t.square(tr);
                t.sum(s)
            },
            Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.4, 0.5, -0.6]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_bce_with_logits() {
        let targets = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        grad_check(
            move |t, x| t.bce_with_logits_sum(x, targets.clone()),
            Matrix::from_vec(1, 4, vec![0.5, -0.3, 2.0, -1.5]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_weighted_bce_with_logits() {
        let targets = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        grad_check(
            move |t, x| t.bce_with_logits_weighted_sum(x, targets.clone(), 7.5),
            Matrix::from_vec(1, 4, vec![0.5, -0.3, 2.0, -1.5]),
            1e-2,
        );
    }

    #[test]
    fn weighted_bce_scales_only_positive_terms() {
        let mut tape = Tape::new();
        let z = tape.leaf(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
        // One positive, one negative, logits 0: base loss ln2 each.
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let plain = tape.bce_with_logits_sum(z, y.clone());
        let weighted = tape.bce_with_logits_weighted_sum(z, y, 3.0);
        let ln2 = std::f32::consts::LN_2;
        assert!((tape.value(plain).item() - 2.0 * ln2).abs() < 1e-5);
        assert!((tape.value(weighted).item() - (3.0 + 1.0) * ln2).abs() < 1e-5);
    }

    #[test]
    fn grad_check_softmax_xent() {
        grad_check(
            |t, x| t.softmax_xent_sum(x, vec![2, 0]),
            Matrix::from_vec(2, 3, vec![0.2, -0.1, 0.4, 1.0, 0.3, -0.7]),
            1e-2,
        );
    }

    #[test]
    fn grad_check_awl_scalar_ops() {
        // loss = L/(2w^2) + ln(1+w^2) with L fixed: check grad wrt w.
        grad_check(
            |t, w| {
                let l = t.leaf(Matrix::scalar(3.0));
                let w2 = t.square(w);
                let inv = t.recip(w2);
                let half = t.scale(inv, 0.5);
                let weighted = t.mul(l, half);
                let reg = t.ln1p(w2);
                let total = t.add(weighted, reg);
                t.sum(total)
            },
            Matrix::scalar(0.8),
            1e-2,
        );
    }

    #[test]
    fn grad_check_mean_rows_and_add_row() {
        grad_check(
            |t, x| {
                let m = t.mean_rows(x);
                let y = t.add_row(x, m);
                let s = t.square(y);
                t.sum(s)
            },
            Matrix::from_vec(3, 2, vec![0.1, 0.9, -0.4, 0.2, 0.7, -0.1]),
            1e-2,
        );
    }

    #[test]
    fn param_grads_route_to_store() {
        let mut store = ParamStore::new(0);
        let w = store.normal("w", 2, 2, 0.5);
        let e = store.normal("emb", 4, 2, 0.5);
        let mut tape = Tape::new();
        let x = tape.gather_param_rows(&store, e, &[1, 3, 1]);
        let wn = tape.param(&store, w);
        let y = tape.matmul(x, wn);
        let sq = tape.square(y);
        let loss = tape.sum(sq);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        assert!(store.grad(w).sq_norm() > 0.0);
        let eg = store.grad(e);
        // Row 1 gathered twice, row 3 once, rows 0/2 never.
        assert!(eg.row_slice(1).iter().any(|&v| v != 0.0));
        assert!(eg.row_slice(3).iter().any(|&v| v != 0.0));
        assert!(eg.row_slice(0).iter().all(|&v| v == 0.0));
        assert!(eg.row_slice(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shared_param_accumulates_both_uses() {
        // Same param used twice in the graph (the ADTD towers share
        // transformer parameters); grads must sum across uses.
        let mut store = ParamStore::new(1);
        let w = store.normal("w", 1, 1, 1.0);
        let mut tape = Tape::new();
        let w1 = tape.param(&store, w);
        let w2 = tape.param(&store, w);
        let prod = tape.mul(w1, w2); // w^2: d/dw = 2w
        let loss = tape.sum(prod);
        tape.backward(loss);
        tape.accumulate_param_grads(&mut store);
        let expected = 2.0 * store.value(w).item();
        assert!((store.grad(w).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn unused_nodes_get_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::scalar(1.0));
        let y = tape.leaf(Matrix::scalar(2.0));
        let loss = tape.sum(x);
        tape.backward(loss);
        assert_eq!(tape.grad(y).item(), 0.0);
        assert_eq!(tape.grad(x).item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_nonscalar() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(2, 2));
        tape.backward(x);
    }

    #[test]
    fn dropout_mask_blocks_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        let mask = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let y = tape.mul_const_mask(x, mask);
        let loss = tape.sum(y);
        tape.backward(loss);
        let g = tape.grad(x);
        assert_eq!(g.as_slice(), &[0.0, 2.0]);
    }
}
