//! Dense row-major `f32` matrices and the raw numeric kernels.
//!
//! Everything in the DL stack is expressed over 2-D matrices; sequence
//! batches are processed sample-at-a-time (each sample is `[seq, hidden]`),
//! which avoids padding/masking entirely — every sample carries its own
//! sequence length. That invariant holds for *both* execution backends
//! (see [`crate::exec`]): the recording [`crate::Tape`] used for training
//! and the tape-free `InferExec` used for serving evaluate the same
//! sample-at-a-time op sequence.
//!
//! The matmul kernels here are shared by both backends so that training
//! and serving produce bit-identical forward values: [`Matrix::matmul`]
//! and friends delegate to the lane-vectorized kernels in
//! [`crate::kernels`], which compute 8 output columns at a time with
//! independent accumulators while keeping each element's ascending-`k`
//! summation order, and the `_into` variants write into caller-provided
//! buffers so the inference arena and the tape backward pass can reuse
//! allocations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0×0` matrix (used as a placeholder by the inference
    /// arena when temporarily moving buffers out of their slots).
    fn default() -> Matrix {
        Matrix { rows: 0, cols: 0, data: Vec::new() }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix[{}x{}]", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Constant-filled matrix.
    pub fn full(rows: usize, cols: usize, v: f32) -> Matrix {
        Matrix { rows, cols, data: vec![v; rows * cols] }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "data length {} != {rows}x{cols}", data.len());
        Matrix { rows, cols, data }
    }

    /// A 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Matrix {
        Matrix { rows: 1, cols: 1, data: vec![v] }
    }

    /// A 1×n row vector.
    pub fn row(data: Vec<f32>) -> Matrix {
        Matrix { rows: 1, cols: data.len(), data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a 1×1 matrix.
    ///
    /// # Panics
    /// Panics when the matrix is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() on non-scalar {:?}", self.shape());
        self.data[0]
    }

    /// Matrix product `self @ rhs`.
    ///
    /// Delegates to [`Matrix::matmul_into`] so every caller (tape or
    /// tape-free) runs the identical kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// `self @ rhs` written into `out`, which is fully overwritten.
    ///
    /// Runs the branch-free lane kernel
    /// ([`crate::kernels::matmul_into_mt`]) single-threaded: 8 output
    /// columns are computed at a time, each with its own accumulator
    /// summing in ascending-`k` order — bit-identical to a naive i-j-k
    /// loop and to the threaded/packed variants the serving executor
    /// uses.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or when `out` is not
    /// `[self.rows, rhs.cols]`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_into_mt(self, rhs, 1, out);
    }

    /// `self @ rhs^T` without materializing the transpose.
    pub fn matmul_bt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_bt_into(rhs, &mut out);
        out
    }

    /// `self @ rhs^T` written into `out` (fully overwritten) — the
    /// allocation-free form used by the tape backward pass.
    ///
    /// # Panics
    /// Panics on shared-dimension mismatch or when `out` is not
    /// `[self.rows, rhs.rows]`.
    pub fn matmul_bt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_bt_into_mt(self, rhs, 1, out);
    }

    /// `self^T @ rhs` without materializing the transpose.
    pub fn matmul_at(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_at_into(rhs, &mut out);
        out
    }

    /// `self^T @ rhs` written into `out` (fully overwritten) — the
    /// allocation-free form used by the tape backward pass.
    ///
    /// # Panics
    /// Panics on shared-dimension mismatch or when `out` is not
    /// `[self.cols, rhs.cols]`.
    pub fn matmul_at_into(&self, rhs: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_at_into(self, rhs, out);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise binary zip into a new matrix.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn axpy(&mut self, alpha: f32, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Fills with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Vertical concatenation `[self; rhs]` (column counts must match).
    pub fn vcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "vcat column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + rhs.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&rhs.data);
        Matrix { rows: self.rows + rhs.rows, cols: self.cols, data }
    }

    /// Horizontal concatenation `[self rhs]` (row counts must match).
    pub fn hcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hcat row mismatch");
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row_slice(r));
            data.extend_from_slice(rhs.row_slice(r));
        }
        Matrix { rows: self.rows, cols, data }
    }

    /// Copy of rows `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.rows, "slice_rows out of range");
        Matrix {
            rows: len,
            cols: self.cols,
            data: self.data[start * self.cols..(start + len) * self.cols].to_vec(),
        }
    }

    /// Copy of columns `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Matrix {
        assert!(start + len <= self.cols, "slice_cols out of range");
        let mut data = Vec::with_capacity(self.rows * len);
        for r in 0..self.rows {
            let row = self.row_slice(r);
            data.extend_from_slice(&row[start..start + len]);
        }
        Matrix { rows: self.rows, cols: len, data }
    }

    /// Row-wise softmax (numerically stabilized by the row max).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// Reshapes in place to `rows × cols`, reusing the existing
    /// allocation when its capacity suffices. The contents afterwards are
    /// unspecified; every element must be overwritten before use. This is
    /// the buffer-recycling primitive behind the inference arena.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with a copy of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.reset_shape(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Row-wise softmax in place (numerically stabilized by the row max).
    ///
    /// Shares its per-row kernel with the fused scaled-softmax in
    /// [`crate::kernels`], so composed and fused paths are bit-identical.
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            crate::kernels::softmax_row(self.row_slice_mut(r));
        }
    }

    /// Row-wise layer normalization in place (no affine transform).
    ///
    /// Shares its per-row kernel with the fused affine layer-norm in
    /// [`crate::kernels`], so composed and fused paths are bit-identical.
    pub fn layer_norm_rows_inplace(&mut self, eps: f32) {
        for r in 0..self.rows {
            crate::kernels::layer_norm_row(self.row_slice_mut(r), eps);
        }
    }

    /// Gathers rows by index into a new `[indices.len(), cols]` matrix.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(i < self.rows, "gather index {i} out of {} rows", self.rows);
            data.extend_from_slice(self.row_slice(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., -2., 3., 0.5, 5., -6.]);
        let b = m(4, 3, &[1., 0., 2., -1., 3., 1., 0., 0., 1., 2., 2., 2.]);
        assert_eq!(a.matmul_bt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = m(3, 2, &[1., -2., 3., 0.5, 5., -6.]);
        let b = m(3, 4, &[1., 0., 2., -1., 3., 1., 0., 0., 1., 2., 2., 2.]);
        assert_eq!(a.matmul_at(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = m(2, 3, &[1., 2., 3., -1000., 0., 1000.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(1, 2) > 0.99); // extreme logit saturates without NaN
        assert!(s.all_finite());
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(1, 2, &[5., 6.]);
        let v = a.vcat(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.slice_rows(0, 2), a);
        assert_eq!(v.slice_rows(2, 1), b);

        let c = m(2, 1, &[9., 10.]);
        let h = a.hcat(&c);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.slice_cols(0, 2), a);
        assert_eq!(h.slice_cols(2, 1), c);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let b = m(1, 3, &[1., 2., 3.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dim_mismatch_panics() {
        let a = m(2, 3, &[0.; 6]);
        let b = m(2, 3, &[0.; 6]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_buffers_and_matches_blocked_boundaries() {
        // Awkward inner dimension plus a column count that is neither a
        // multiple of the 8-wide lane nor smaller than it, so the kernel
        // exercises both full and remainder lanes.
        let k = 100;
        let n = 13;
        let a = Matrix::from_vec(3, k, (0..3 * k).map(|i| (i as f32 * 0.37).sin()).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i as f32 * 0.11).cos()).collect());
        let expect = a.matmul(&b);
        // A recycled buffer of the wrong shape must be reshaped and
        // fully overwritten, old contents notwithstanding.
        let mut out = Matrix::full(7, 2, 123.0);
        out.reset_shape(3, n);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn transpose_free_into_variants_fully_overwrite_dirty_buffers() {
        let a = m(3, 4, &[1., -2., 3., 0.5, 5., -6., 0., 2., 1., 1., -1., 4.]);
        let b = m(3, 4, &[2., 0., 1., -1., 3., 1., 0., 0., 1., 2., 2., 2.]);
        let mut bt = Matrix::full(9, 9, 77.0);
        bt.reset_shape(3, 3);
        a.matmul_bt_into(&b, &mut bt);
        assert_eq!(bt, a.matmul(&b.transpose()));

        let c = m(3, 5, &[0.; 15]).map(|_| 1.25);
        let mut at = Matrix::full(1, 1, -3.0);
        at.reset_shape(4, 5);
        a.matmul_at_into(&c, &mut at);
        assert_eq!(at, a.transpose().matmul(&c));
    }

    #[test]
    fn reset_shape_and_copy_from_recycle_allocations() {
        let mut buf = Matrix::full(4, 4, 9.0);
        buf.reset_shape(2, 3);
        assert_eq!(buf.shape(), (2, 3));
        let src = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        buf.copy_from(&src);
        assert_eq!(buf, src);
        // Growing past the old capacity still works.
        buf.reset_shape(8, 8);
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn inplace_rowwise_kernels_match_allocating_versions() {
        let x = m(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let mut s = x.clone();
        s.softmax_rows_inplace();
        assert_eq!(s, x.softmax_rows());
        let mut l = x.clone();
        l.layer_norm_rows_inplace(1e-5);
        for r in 0..2 {
            let sum: f32 = l.row_slice(r).iter().sum();
            assert!(sum.abs() < 1e-4);
        }
    }

    #[test]
    fn scalar_item_and_norms() {
        let s = Matrix::scalar(2.5);
        assert_eq!(s.item(), 2.5);
        let a = m(1, 2, &[3., 4.]);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.sum(), 7.0);
    }
}
