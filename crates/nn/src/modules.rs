//! Neural network modules: Linear, LayerNorm, Embedding, multi-head
//! (cross-)attention, feed-forward, and post-LN transformer encoder layers.
//!
//! A module owns [`ParamId`]s registered in a [`ParamStore`] at build time
//! and replays its computation onto any [`Forward`] backend at call time —
//! the recording [`crate::tape::Tape`] when training, the tape-free
//! [`crate::exec::InferExec`] when serving. Two modules constructed over
//! the *same* parameter ids share weights — exactly how the ADTD metadata
//! and content towers share their transformer blocks.

use crate::exec::Forward;
use crate::kernels::Act;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamStore};
use crate::tape::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Affine map `x @ W + b` with `W: [in, out]`, `b: [1, out]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix id.
    pub w: ParamId,
    /// Bias row id.
    pub b: ParamId,
}

impl Linear {
    /// Registers a Xavier-initialized linear layer.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Linear {
        Linear {
            w: store.xavier(&format!("{name}.w"), in_dim, out_dim),
            b: store.constant(&format!("{name}.b"), 1, out_dim, 0.0),
        }
    }

    /// Applies the layer to a `[m, in]` node, producing `[m, out]`.
    ///
    /// Goes through [`Forward::linear`], so the serving backend runs its
    /// fused packed matmul+bias kernel while the tape records the usual
    /// `param/matmul/add_row` sequence.
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, x: NodeId) -> NodeId {
        ex.linear(store, x, self.w, self.b)
    }

    /// `act(x @ W + b)` — fused on backends that support it.
    pub fn forward_act<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        x: NodeId,
        act: Act,
    ) -> NodeId {
        ex.linear_act(store, x, self.w, self.b, act)
    }
}

/// Row-wise layer normalization with learned gain and bias.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Gain row id (initialized to 1).
    pub gain: ParamId,
    /// Bias row id (initialized to 0).
    pub bias: ParamId,
    /// Numerical stabilizer added to the variance.
    pub eps: f32,
}

impl LayerNorm {
    /// Registers a layer-norm over `dim` features.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> LayerNorm {
        LayerNorm {
            gain: store.constant(&format!("{name}.gain"), 1, dim, 1.0),
            bias: store.constant(&format!("{name}.bias"), 1, dim, 0.0),
            eps: 1e-5,
        }
    }

    /// Applies normalization + affine to a `[m, dim]` node via
    /// [`Forward::layer_norm_affine`] (single fused pass when serving).
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, x: NodeId) -> NodeId {
        ex.layer_norm_affine(store, x, self.gain, self.bias, self.eps)
    }
}

/// Token embedding table with additive learned position embeddings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Embedding {
    /// `[vocab, dim]` token table id.
    pub table: ParamId,
    /// `[max_len, dim]` position table id.
    pub positions: ParamId,
    /// Maximum supported sequence length.
    pub max_len: usize,
}

impl Embedding {
    /// Registers token + position embeddings.
    pub fn new(store: &mut ParamStore, name: &str, vocab: usize, dim: usize, max_len: usize) -> Embedding {
        Embedding {
            table: store.normal(&format!("{name}.tok"), vocab, dim, 0.02),
            positions: store.normal(&format!("{name}.pos"), max_len, dim, 0.02),
            max_len,
        }
    }

    /// Embeds a token id sequence into `[len, dim]`, adding positions.
    ///
    /// # Panics
    /// Panics when the sequence exceeds `max_len`.
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, tokens: &[usize]) -> NodeId {
        assert!(
            tokens.len() <= self.max_len,
            "sequence length {} exceeds max_len {}",
            tokens.len(),
            self.max_len
        );
        let tok = ex.gather_param_rows(store, self.table, tokens);
        let pos_idx: Vec<usize> = (0..tokens.len()).collect();
        let pos = ex.gather_param_rows(store, self.positions, &pos_idx);
        ex.add(tok, pos)
    }

    /// Embeds a batch of token sequences row-stacked into one
    /// `[Σ len_i, dim]` node. Position indices restart at 0 for every
    /// sequence, so each row is bit-identical to the row the unbatched
    /// [`Embedding::forward`] would produce for that sequence alone.
    ///
    /// # Panics
    /// Panics when the batch is empty or any sequence exceeds `max_len`.
    pub fn forward_batched<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        seqs: &[&[usize]],
    ) -> NodeId {
        assert!(!seqs.is_empty(), "cannot embed an empty batch");
        let total: usize = seqs.iter().map(|s| s.len()).sum();
        let mut tok_idx = Vec::with_capacity(total);
        let mut pos_idx = Vec::with_capacity(total);
        for seq in seqs {
            assert!(
                seq.len() <= self.max_len,
                "sequence length {} exceeds max_len {}",
                seq.len(),
                self.max_len
            );
            tok_idx.extend_from_slice(seq);
            pos_idx.extend(0..seq.len());
        }
        let tok = ex.gather_param_rows(store, self.table, &tok_idx);
        let pos = ex.gather_param_rows(store, self.positions, &pos_idx);
        ex.add(tok, pos)
    }
}

/// Multi-head scaled-dot-product attention supporting distinct query and
/// key/value inputs — the primitive behind both self-attention (metadata
/// tower) and the paper's asymmetric cross-attention (content tower, where
/// `Q = content` and `K = V = meta ⊕ content`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of attention heads; must divide the hidden size.
    pub heads: usize,
    /// Hidden size.
    pub dim: usize,
}

impl MultiHeadAttention {
    /// Registers the four projections.
    ///
    /// # Panics
    /// Panics when `heads` does not divide `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, heads: usize) -> MultiHeadAttention {
        assert_eq!(dim % heads, 0, "heads {heads} must divide dim {dim}");
        MultiHeadAttention {
            wq: Linear::new(store, &format!("{name}.q"), dim, dim),
            wk: Linear::new(store, &format!("{name}.k"), dim, dim),
            wv: Linear::new(store, &format!("{name}.v"), dim, dim),
            wo: Linear::new(store, &format!("{name}.o"), dim, dim),
            heads,
            dim,
        }
    }

    /// Attention with queries from `q_in` (`[Lq, dim]`) and keys/values
    /// from `kv_in` (`[Lkv, dim]`); output is `[Lq, dim]`.
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, q_in: NodeId, kv_in: NodeId) -> NodeId {
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(ex, store, q_in);
        let k = self.wk.forward(ex, store, kv_in);
        let v = self.wv.forward(ex, store, kv_in);
        let mut merged: Option<NodeId> = None;
        for h in 0..self.heads {
            let qh = ex.slice_cols(q, h * dh, dh);
            let kh = ex.slice_cols(k, h * dh, dh);
            let vh = ex.slice_cols(v, h * dh, dh);
            // Transpose-free scores + fused scale/softmax: the serving
            // backend runs both as single kernels; the tape records the
            // composed transpose/matmul/scale/softmax ops.
            let scores = ex.matmul_bt(qh, kh);
            let attn = ex.softmax_rows_scaled(scores, scale);
            let out = ex.matmul(attn, vh);
            merged = Some(match merged {
                Some(prev) => ex.hcat(prev, out),
                None => out,
            });
        }
        self.wo.forward(ex, store, merged.expect("at least one head"))
    }

    /// Self-attention convenience: `forward(x, x)`.
    pub fn self_attention<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, x: NodeId) -> NodeId {
        self.forward(ex, store, x, x)
    }

    /// Block-diagonal batched attention over B row-stacked sequences.
    ///
    /// `q_in` is `[Σ q_lens, dim]`, `kv_in` is `[Σ kv_lens, dim]`;
    /// sequence `b`'s queries attend only to sequence `b`'s keys/values.
    /// The Q/K/V/output projections are row-wise, so they run as single
    /// fused matmuls over the whole stack — that is where batching earns
    /// its throughput. Only the score/softmax/value products are taken
    /// per sequence (attention is the one op that mixes rows), via the
    /// backend's [`Forward::attn_blocks`] — a single fused kernel on the
    /// serving executor — which makes every output row bit-identical to
    /// what the unbatched [`MultiHeadAttention::forward`] produces for
    /// that sequence alone.
    ///
    /// # Panics
    /// Panics when the batch is empty or the length vectors disagree.
    pub fn forward_batched<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        q_in: NodeId,
        kv_in: NodeId,
        q_lens: &[usize],
        kv_lens: &[usize],
    ) -> NodeId {
        let dh = self.dim / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(ex, store, q_in);
        let k = self.wk.forward(ex, store, kv_in);
        let v = self.wv.forward(ex, store, kv_in);
        let ctx = ex.attn_blocks(q, k, v, q_lens, kv_lens, self.heads, scale);
        self.wo.forward(ex, store, ctx)
    }
}

/// Position-wise feed-forward network: `GELU(x W1 + b1) W2 + b2`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeedForward {
    /// Expansion layer (`dim -> intermediate`).
    pub lin1: Linear,
    /// Contraction layer (`intermediate -> dim`).
    pub lin2: Linear,
}

impl FeedForward {
    /// Registers a two-layer FFN with intermediate size `inter`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, inter: usize) -> FeedForward {
        FeedForward {
            lin1: Linear::new(store, &format!("{name}.ff1"), dim, inter),
            lin2: Linear::new(store, &format!("{name}.ff2"), inter, dim),
        }
    }

    /// Applies the FFN to `[m, dim]`. The expansion layer and its GELU go
    /// through the fused [`Forward::linear_act`].
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, x: NodeId) -> NodeId {
        let a = self.lin1.forward_act(ex, store, x, Act::Gelu);
        self.lin2.forward(ex, store, a)
    }
}

/// One post-LN transformer encoder block:
/// `x = LN(x + Attn(x)); x = LN(x + FFN(x))` — the `T_i(Q, K, V)` of §4.2.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransformerLayer {
    /// Attention sublayer.
    pub attn: MultiHeadAttention,
    /// Post-attention layer norm.
    pub ln1: LayerNorm,
    /// Feed-forward sublayer.
    pub ffn: FeedForward,
    /// Post-FFN layer norm.
    pub ln2: LayerNorm,
}

impl TransformerLayer {
    /// Registers one encoder block.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, heads: usize, inter: usize) -> TransformerLayer {
        TransformerLayer {
            attn: MultiHeadAttention::new(store, &format!("{name}.attn"), dim, heads),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), dim),
            ffn: FeedForward::new(store, &format!("{name}.ffn"), dim, inter),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), dim),
        }
    }

    /// Generalized block with distinct query and key/value streams; the
    /// residual is taken on the *query* stream, so the output keeps the
    /// query's sequence length. Self-attention is `forward(x, x)`.
    pub fn forward<E: Forward + ?Sized>(&self, ex: &mut E, store: &ParamStore, q_in: NodeId, kv_in: NodeId) -> NodeId {
        let attn_out = self.attn.forward(ex, store, q_in, kv_in);
        let res1 = ex.add(q_in, attn_out);
        let x = self.ln1.forward(ex, store, res1);
        let ffn_out = self.ffn.forward(ex, store, x);
        let res2 = ex.add(x, ffn_out);
        self.ln2.forward(ex, store, res2)
    }

    /// Batched block over B row-stacked sequences: attention is
    /// block-diagonal (per-sequence, via
    /// [`MultiHeadAttention::forward_batched`]) while the residuals,
    /// layer norms, and FFN — all row-wise — run as single fused passes
    /// over the whole `[Σ q_lens, dim]` stack.
    pub fn forward_batched<E: Forward + ?Sized>(
        &self,
        ex: &mut E,
        store: &ParamStore,
        q_in: NodeId,
        kv_in: NodeId,
        q_lens: &[usize],
        kv_lens: &[usize],
    ) -> NodeId {
        let attn_out = self.attn.forward_batched(ex, store, q_in, kv_in, q_lens, kv_lens);
        let res1 = ex.add(q_in, attn_out);
        let x = self.ln1.forward(ex, store, res1);
        let ffn_out = self.ffn.forward(ex, store, x);
        let res2 = ex.add(x, ffn_out);
        self.ln2.forward(ex, store, res2)
    }
}

/// Inverted-dropout mask generator: each element is `0` with probability
/// `p`, otherwise `1/(1-p)`, so the expectation is identity. Returns
/// `None` when `p == 0` (no-op).
pub fn dropout_mask(rng: &mut impl Rng, rows: usize, cols: usize, p: f32) -> Option<Matrix> {
    if p <= 0.0 {
        return None;
    }
    assert!(p < 1.0, "dropout probability must be < 1");
    let keep = 1.0 / (1.0 - p);
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = if rng.gen::<f32>() < p { 0.0 } else { keep };
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::InferExec;
    use crate::tape::Tape;
    use rand::SeedableRng;

    fn store() -> ParamStore {
        ParamStore::new(99)
    }

    #[test]
    fn linear_output_shape_and_bias() {
        let mut s = store();
        let lin = Linear::new(&mut s, "l", 3, 5);
        // Force recognizable weights.
        *s.value_mut(lin.w) = Matrix::zeros(3, 5);
        *s.value_mut(lin.b) = Matrix::full(1, 5, 2.0);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(4, 3));
        let y = lin.forward(&mut t, &s, x);
        assert_eq!(t.value(y).shape(), (4, 5));
        assert!(t.value(y).as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut s = store();
        let ln = LayerNorm::new(&mut s, "ln", 4);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_vec(2, 4, vec![1., 2., 3., 4., 10., 10., 10., 10.]));
        let y = ln.forward(&mut t, &s, x);
        let out = t.value(y);
        // With unit gain / zero bias: each row has ~zero mean, ~unit var.
        let row0: f32 = out.row_slice(0).iter().sum();
        assert!(row0.abs() < 1e-4);
        // Constant row normalizes to zeros (variance ~ 0 guarded by eps).
        assert!(out.row_slice(1).iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn embedding_adds_positions_and_respects_max_len() {
        let mut s = store();
        let emb = Embedding::new(&mut s, "e", 10, 8, 16);
        let mut t = Tape::new();
        let x = emb.forward(&mut t, &s, &[1, 2, 1]);
        assert_eq!(t.value(x).shape(), (3, 8));
        // Token 1 at positions 0 and 2 must differ (position embeddings).
        let v = t.value(x);
        assert_ne!(v.row_slice(0), v.row_slice(2));
    }

    #[test]
    #[should_panic(expected = "exceeds max_len")]
    fn embedding_rejects_overlong_sequences() {
        let mut s = store();
        let emb = Embedding::new(&mut s, "e", 10, 4, 2);
        let mut t = Tape::new();
        let _ = emb.forward(&mut t, &s, &[0, 1, 2]);
    }

    #[test]
    fn mha_self_attention_shape() {
        let mut s = store();
        let mha = MultiHeadAttention::new(&mut s, "a", 8, 2);
        let mut t = Tape::new();
        let x = t.leaf(Matrix::full(5, 8, 0.1));
        let y = mha.self_attention(&mut t, &s, x);
        assert_eq!(t.value(y).shape(), (5, 8));
    }

    #[test]
    fn mha_cross_attention_keeps_query_length() {
        let mut s = store();
        let mha = MultiHeadAttention::new(&mut s, "a", 8, 4);
        let mut t = Tape::new();
        let q = t.leaf(Matrix::full(3, 8, 0.1));
        let kv = t.leaf(Matrix::full(7, 8, -0.2));
        let y = mha.forward(&mut t, &s, q, kv);
        assert_eq!(t.value(y).shape(), (3, 8));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn mha_rejects_indivisible_heads() {
        let mut s = store();
        let _ = MultiHeadAttention::new(&mut s, "a", 10, 3);
    }

    #[test]
    fn transformer_layer_trains_end_to_end() {
        // One gradient step on a toy regression must reduce the loss:
        // exercises attention, layernorm, FFN forward + backward together.
        let mut s = store();
        let layer = TransformerLayer::new(&mut s, "t0", 8, 2, 16);
        let head = Linear::new(&mut s, "head", 8, 1);
        let input = Matrix::full(4, 8, 0.3);
        let target = Matrix::full(4, 1, 1.0);

        let loss_of = |s: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let x = t.leaf(input.clone());
            let enc = layer.forward(&mut t, s, x, x);
            let pred = head.forward(&mut t, s, enc);
            let tgt = t.leaf(target.clone());
            let neg = t.scale(tgt, -1.0);
            let diff = t.add(pred, neg);
            let sq = t.square(diff);
            let l = t.sum(sq);
            t.value(l).item()
        };

        let before = loss_of(&s);
        // Manual SGD step.
        let mut t = Tape::new();
        let x = t.leaf(input.clone());
        let enc = layer.forward(&mut t, &s, x, x);
        let pred = head.forward(&mut t, &s, enc);
        let tgt = t.leaf(target.clone());
        let neg = t.scale(tgt, -1.0);
        let diff = t.add(pred, neg);
        let sq = t.square(diff);
        let l = t.sum(sq);
        t.backward(l);
        t.accumulate_param_grads(&mut s);
        let ids: Vec<_> = s.ids().collect();
        for id in ids {
            let g = s.grad(id);
            s.value_mut(id).axpy(-0.01, &g);
        }
        let after = loss_of(&s);
        assert!(after < before, "loss did not decrease: {before} -> {after}");
    }

    #[test]
    fn shared_layer_between_two_towers_gets_grads_from_both() {
        // Mimics ADTD parameter sharing: the same TransformerLayer runs in
        // a "metadata" pass and a "content" pass of one tape; parameter
        // grads must reflect both passes.
        let mut s = store();
        let layer = TransformerLayer::new(&mut s, "shared", 4, 2, 8);
        let mut t = Tape::new();
        let meta = t.leaf(Matrix::full(2, 4, 0.5));
        let content = t.leaf(Matrix::full(3, 4, -0.5));
        let meta_out = layer.forward(&mut t, &s, meta, meta);
        let kv = t.vcat(meta_out, content);
        let content_out = layer.forward(&mut t, &s, content, kv);
        let s1 = t.square(meta_out);
        let s2 = t.square(content_out);
        let l1 = t.sum(s1);
        let l2 = t.sum(s2);
        let total = t.add(l1, l2);
        let loss = t.sum(total);
        t.backward(loss);
        t.accumulate_param_grads(&mut s);
        let gnorm = s.grad_global_norm();
        assert!(gnorm > 0.0 && gnorm.is_finite());
    }

    #[test]
    fn transformer_layer_agrees_across_backends() {
        // The same block, replayed on the tape and on the tape-free
        // executor, must produce identical outputs (shared kernels).
        let mut s = store();
        let layer = TransformerLayer::new(&mut s, "t0", 8, 2, 16);
        let input = Matrix::from_vec(
            3,
            8,
            (0..24).map(|i| (i as f32 * 0.37).sin()).collect(),
        );

        let mut t = Tape::new();
        let xt = t.leaf(input.clone());
        let yt = layer.forward(&mut t, &s, xt, xt);
        let taped = t.value(yt).clone();

        let mut exec = InferExec::new();
        let mut sess = exec.session(&s);
        let xs = sess.leaf_copy(&input);
        let ys = layer.forward(&mut sess, &s, xs, xs);
        assert_eq!(sess.value(ys), &taped);
    }

    #[test]
    fn batched_embedding_matches_per_sequence_rows() {
        let mut s = store();
        let emb = Embedding::new(&mut s, "e", 12, 8, 16);
        let seqs: [&[usize]; 3] = [&[1, 2, 3], &[4, 5], &[1, 2, 3, 4, 5, 6]];
        let mut t = Tape::new();
        let stacked = emb.forward_batched(&mut t, &s, &seqs);
        let mut off = 0;
        for seq in seqs {
            let mut t2 = Tape::new();
            let solo = emb.forward(&mut t2, &s, seq);
            for r in 0..seq.len() {
                assert_eq!(
                    t.value(stacked).row_slice(off + r),
                    t2.value(solo).row_slice(r),
                    "embedding row diverged"
                );
            }
            off += seq.len();
        }
    }

    #[test]
    fn batched_transformer_layer_is_bit_identical_per_sequence() {
        // Variable-length sequences, distinct q/kv lengths (the content
        // tower's cross-attention shape), both backends, threaded kernels:
        // every output row of the batched stack must equal the row the
        // unbatched forward produces for its sequence — exactly.
        let mut s = store();
        let layer = TransformerLayer::new(&mut s, "t0", 8, 2, 16);
        let q_lens = [3usize, 5, 2];
        let kv_lens = [7usize, 6, 9];
        let mk = |rows: usize, seed: f32| {
            Matrix::from_vec(rows, 8, (0..rows * 8).map(|i| (i as f32 * seed).sin()).collect())
        };
        let qs: Vec<Matrix> = q_lens.iter().enumerate().map(|(i, &l)| mk(l, 0.31 + i as f32 * 0.11)).collect();
        let kvs: Vec<Matrix> = kv_lens.iter().enumerate().map(|(i, &l)| mk(l, 0.17 + i as f32 * 0.07)).collect();

        // Reference: each sequence through the unbatched forward (tape).
        let mut want: Vec<Matrix> = Vec::new();
        for (q, kv) in qs.iter().zip(&kvs) {
            let mut t = Tape::new();
            let qn = t.leaf(q.clone());
            let kvn = t.leaf(kv.clone());
            let y = layer.forward(&mut t, &s, qn, kvn);
            want.push(t.value(y).clone());
        }

        for threads in [1usize, 4] {
            let mut exec = InferExec::with_kernel_threads(threads);
            let mut sess = exec.session(&s);
            let qn: Vec<_> = qs.iter().map(|q| sess.leaf_copy(q)).collect();
            let kvn: Vec<_> = kvs.iter().map(|kv| sess.leaf_copy(kv)).collect();
            let q_stack = sess.vcat_all(&qn);
            let kv_stack = sess.vcat_all(&kvn);
            let y = layer.forward_batched(&mut sess, &s, q_stack, kv_stack, &q_lens, &kv_lens);
            let mut off = 0;
            for (b, w) in want.iter().enumerate() {
                for r in 0..q_lens[b] {
                    assert_eq!(
                        sess.value(y).row_slice(off + r),
                        w.row_slice(r),
                        "batched row diverged (seq {b}, row {r}, threads {threads})"
                    );
                }
                off += q_lens[b];
            }
        }
    }

    #[test]
    fn batched_layer_with_single_sequence_matches_unbatched() {
        let mut s = store();
        let layer = TransformerLayer::new(&mut s, "t0", 8, 4, 16);
        let x = Matrix::from_vec(5, 8, (0..40).map(|i| (i as f32 * 0.23).cos()).collect());
        let mut exec = InferExec::new();
        let mut sess = exec.session(&s);
        let xn = sess.leaf_copy(&x);
        let solo = layer.forward(&mut sess, &s, xn, xn);
        let batched = layer.forward_batched(&mut sess, &s, xn, xn, &[5], &[5]);
        assert_eq!(sess.value(solo), sess.value(batched));
    }

    #[test]
    fn dropout_mask_statistics_and_noop() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(dropout_mask(&mut rng, 10, 10, 0.0).is_none());
        let m = dropout_mask(&mut rng, 100, 100, 0.25).unwrap();
        let zeros = m.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "dropout rate {frac}");
        let keep = 1.0 / 0.75;
        assert!(m.as_slice().iter().all(|&v| v == 0.0 || (v - keep).abs() < 1e-6));
    }
}
